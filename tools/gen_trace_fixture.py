#!/usr/bin/env python3
"""Regenerate the golden trace fixtures used by test_obs_attribution.

Writes ``tests/golden/trace_slice_seed0.jsonl`` (the node-slice event
log at seed 0) and ``trace_summary_seed0.txt`` (the ``repro trace
summarize --top 5`` output for it).  Run from the repo root after a
deliberate change to the node slice or the exporters:

    PYTHONPATH=src python tools/gen_trace_fixture.py
"""

from __future__ import annotations

import pathlib

from repro.obs.attribution import NoiseAttribution
from repro.obs.export import write_jsonl
from repro.obs.runtrace import capture_node_slice
from repro.obs.tracer import tracing

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / "tests" / "golden"


def main() -> None:
    with tracing() as tracer:
        capture_node_slice(seed=0)
    jsonl = GOLDEN / "trace_slice_seed0.jsonl"
    write_jsonl(tracer, str(jsonl))
    summary = NoiseAttribution.from_jsonl(str(jsonl)).report(top_n=5)
    txt = GOLDEN / "trace_summary_seed0.txt"
    txt.write_text(summary + "\n", encoding="utf-8")
    print(f"wrote {jsonl} ({len(tracer)} events)")
    print(f"wrote {txt}")


if __name__ == "__main__":
    main()
