#!/usr/bin/env python
"""Compare two benchmark timing files and fail on regressions.

    python tools/bench_compare.py baseline.json current.json
    python tools/bench_compare.py baseline.json current.json --threshold 0.1

Accepts either timing format the repo produces:

* pytest-benchmark exports (``pytest --benchmark-json=...``):
  ``{"benchmarks": [{"name": ..., "stats": {"mean": ...}}, ...]}``;
* plain mappings (e.g. ``benchmarks/out/BENCH_perfsmoke.json``):
  ``{"name": seconds, ...}``.

Benchmarks present in only one file are reported but never fail the
comparison (suites grow and shrink); a common benchmark whose current
mean exceeds baseline by more than ``--threshold`` (default 20%) does.
Exit status: 0 = no regression, 1 = regression, 2 = usage error.

``--budget budgets.json`` additionally enforces per-benchmark speed
budgets.  Each entry names a benchmark and one rule (or a list of
rules, all of which must hold):

* ``{"max_regression_pct": 50}`` — current must not exceed baseline by
  more than 50% (an absolute-seconds bound against the baseline file;
  use generous margins, absolute timings vary across machines);
* ``{"min_speedup": 2.0}`` — baseline/current must be >= 2.0x;
* ``{"min_speedup": 2.0, "vs": "other_bench"}`` — a *ratio within the
  current file*: ``current[other_bench] / current[name] >= 2.0``.
  Ratio rules compare two measurements from the same machine and run,
  so they are the machine-independent form — CI hard gates should be
  ratio rules;
* ``{"min_speedup": 2.0, "vs_baseline": "other_bench"}`` — compare
  against a *different* baseline entry:
  ``baseline[other_bench] / current[name] >= 2.0``.  This is how a new
  execution mode (with no historical measurement under its own name)
  proves itself against the committed pre-change numbers.

A budget naming a missing benchmark fails (budgets are guarantees, so
silently skipping one would void it).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_means(path: pathlib.Path) -> dict[str, float]:
    """``{benchmark name: mean seconds}`` from either supported format."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if isinstance(payload, dict) and isinstance(
            payload.get("benchmarks"), list):
        return {
            b["name"]: float(b["stats"]["mean"])
            for b in payload["benchmarks"]
        }
    if isinstance(payload, dict) and all(
            isinstance(v, (int, float)) for v in payload.values()):
        return {str(k): float(v) for k, v in payload.items()}
    raise SystemExit(
        f"error: {path} is neither a pytest-benchmark export nor a "
        f"plain {{name: seconds}} mapping"
    )


def compare(baseline: dict[str, float], current: dict[str, float],
            threshold: float) -> tuple[list[dict], bool]:
    """Per-benchmark comparison rows and whether any regression exceeds
    ``threshold`` (relative slowdown, e.g. 0.2 = 20%)."""
    rows = []
    failed = False
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            rows.append({"name": name, "verdict": "removed"})
            continue
        if name not in baseline:
            rows.append({"name": name, "verdict": "new",
                         "current": current[name]})
            continue
        old, new = baseline[name], current[name]
        delta = (new - old) / old if old > 0 else 0.0
        verdict = "ok"
        if delta > threshold:
            verdict = "REGRESSION"
            failed = True
        rows.append({"name": name, "verdict": verdict, "baseline": old,
                     "current": new, "delta": round(delta, 6)})
    return rows, failed


def load_budget(path: pathlib.Path) -> dict[str, list[dict]]:
    """Parse a budgets file: ``{benchmark: rule | [rule, ...]}``."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if not isinstance(payload, dict):
        raise SystemExit(f"error: {path} must map benchmark names to "
                         f"rule objects")
    budget: dict[str, list[dict]] = {}
    for name, rules in payload.items():
        if isinstance(rules, dict):
            rules = [rules]
        if not (isinstance(rules, list)
                and all(isinstance(r, dict) for r in rules) and rules):
            raise SystemExit(f"error: budget {name!r} must be a rule "
                             f"object or a non-empty list of them")
        for rule in rules:
            keys = set(rule) - {"max_regression_pct", "min_speedup",
                                "vs", "vs_baseline"}
            if keys:
                raise SystemExit(f"error: budget {name!r} has unknown "
                                 f"keys {sorted(keys)}")
            if "vs" in rule and "vs_baseline" in rule:
                raise SystemExit(f"error: budget {name!r}: 'vs' and "
                                 f"'vs_baseline' are mutually exclusive")
            if (("vs" in rule or "vs_baseline" in rule)
                    and "min_speedup" not in rule):
                raise SystemExit(f"error: budget {name!r}: 'vs'/"
                                 f"'vs_baseline' require 'min_speedup'")
            if not ({"max_regression_pct", "min_speedup"} & set(rule)):
                raise SystemExit(
                    f"error: budget {name!r} needs 'max_regression_pct' "
                    f"or 'min_speedup'")
        budget[name] = rules
    return budget


def _check_rule(baseline: dict[str, float], current: dict[str, float],
                name: str, rule: dict) -> dict:
    """Evaluate one budget rule into a result row."""
    row = {"name": name, "rule": rule}
    cur = current[name]
    verdicts = []
    if "max_regression_pct" in rule:
        if name not in baseline:
            verdicts.append((False, "no baseline entry"))
        else:
            old = baseline[name]
            pct = 100.0 * (cur - old) / old if old > 0 else 0.0
            row["regression_pct"] = round(pct, 3)
            ok = pct <= float(rule["max_regression_pct"])
            verdicts.append(
                (ok, f"regression {pct:+.1f}% vs "
                     f"max {rule['max_regression_pct']}%"))
    if "min_speedup" in rule:
        if "vs" in rule:
            ref = current.get(rule["vs"])
            against = f"current[{rule['vs']}]"
        elif "vs_baseline" in rule:
            ref = baseline.get(rule["vs_baseline"])
            against = f"baseline[{rule['vs_baseline']}]"
        else:
            ref = baseline.get(name)
            against = "baseline"
        if ref is None:
            verdicts.append((False, f"missing reference {against}"))
        else:
            speedup = ref / cur if cur > 0 else float("inf")
            row["speedup"] = round(speedup, 4)
            ok = speedup >= float(rule["min_speedup"])
            verdicts.append(
                (ok, f"{speedup:.2f}x {against} vs "
                     f"min {rule['min_speedup']}x"))
    row["verdict"] = "ok" if all(ok for ok, _ in verdicts) else "FAIL"
    row["reason"] = "; ".join(msg for _, msg in verdicts)
    return row


def check_budget(baseline: dict[str, float], current: dict[str, float],
                 budget: dict[str, list[dict]]) -> tuple[list[dict], bool]:
    """Evaluate every budget rule; a rule over missing data fails."""
    rows = []
    failed = False
    for name in sorted(budget):
        if name not in current:
            rows.append({"name": name, "rule": budget[name],
                         "verdict": "FAIL",
                         "reason": "benchmark missing from current file"})
            failed = True
            continue
        for rule in budget[name]:
            row = _check_rule(baseline, current, name, rule)
            failed = failed or row["verdict"] == "FAIL"
            rows.append(row)
    return rows, failed


def render_budget_rows(rows: list[dict]) -> list[str]:
    return [f"  {row['name']:<40} {row['verdict']:<6} {row['reason']}"
            for row in rows]


def render_rows(rows: list[dict]) -> list[str]:
    lines = []
    for row in rows:
        name, verdict = row["name"], row["verdict"]
        if verdict == "removed":
            lines.append(f"  {name:<40} removed (baseline only)")
        elif verdict == "new":
            lines.append(f"  {name:<40} new (no baseline)")
        else:
            lines.append(
                f"  {name:<40} {row['baseline']:.6f}s -> "
                f"{row['current']:.6f}s ({row['delta']:+.1%}) {verdict}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two benchmark timing files; non-zero exit on "
                    "regression")
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated relative slowdown "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--json-out", type=pathlib.Path, metavar="FILE",
                        help="also write the comparison as JSON (the "
                             "CI gate uploads this as an artifact)")
    parser.add_argument("--budget", type=pathlib.Path, metavar="FILE",
                        help="per-benchmark speed budgets to enforce "
                             "in addition to the threshold comparison")
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("threshold must be non-negative")

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    rows, failed = compare(baseline, current, args.threshold)
    print(f"benchmark comparison ({args.baseline} -> {args.current}, "
          f"threshold {args.threshold:.0%}):")
    for line in render_rows(rows):
        print(line)
    budget_rows: list[dict] = []
    budget_failed = False
    if args.budget:
        budget_rows, budget_failed = check_budget(
            baseline, current, load_budget(args.budget))
        print(f"speed budgets ({args.budget}):")
        for line in render_budget_rows(budget_rows):
            print(line)
    if args.json_out:
        payload = {
            "baseline": str(args.baseline),
            "current": str(args.current),
            "threshold": args.threshold,
            "failed": failed or budget_failed,
            "results": rows,
        }
        if args.budget:
            payload["budget"] = str(args.budget)
            payload["budget_results"] = budget_rows
        args.json_out.write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n")
    if failed or budget_failed:
        if failed:
            print("FAIL: at least one benchmark regressed past the "
                  "threshold")
        if budget_failed:
            print("FAIL: at least one speed budget was violated")
        return 1
    print("OK: no benchmark regressed past the threshold"
          + ("; all speed budgets met" if args.budget else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
