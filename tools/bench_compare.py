#!/usr/bin/env python
"""Compare two benchmark timing files and fail on regressions.

    python tools/bench_compare.py baseline.json current.json
    python tools/bench_compare.py baseline.json current.json --threshold 0.1

Accepts either timing format the repo produces:

* pytest-benchmark exports (``pytest --benchmark-json=...``):
  ``{"benchmarks": [{"name": ..., "stats": {"mean": ...}}, ...]}``;
* plain mappings (e.g. ``benchmarks/out/BENCH_perfsmoke.json``):
  ``{"name": seconds, ...}``.

Benchmarks present in only one file are reported but never fail the
comparison (suites grow and shrink); a common benchmark whose current
mean exceeds baseline by more than ``--threshold`` (default 20%) does.
Exit status: 0 = no regression, 1 = regression, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_means(path: pathlib.Path) -> dict[str, float]:
    """``{benchmark name: mean seconds}`` from either supported format."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if isinstance(payload, dict) and isinstance(
            payload.get("benchmarks"), list):
        return {
            b["name"]: float(b["stats"]["mean"])
            for b in payload["benchmarks"]
        }
    if isinstance(payload, dict) and all(
            isinstance(v, (int, float)) for v in payload.values()):
        return {str(k): float(v) for k, v in payload.items()}
    raise SystemExit(
        f"error: {path} is neither a pytest-benchmark export nor a "
        f"plain {{name: seconds}} mapping"
    )


def compare(baseline: dict[str, float], current: dict[str, float],
            threshold: float) -> tuple[list[dict], bool]:
    """Per-benchmark comparison rows and whether any regression exceeds
    ``threshold`` (relative slowdown, e.g. 0.2 = 20%)."""
    rows = []
    failed = False
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            rows.append({"name": name, "verdict": "removed"})
            continue
        if name not in baseline:
            rows.append({"name": name, "verdict": "new",
                         "current": current[name]})
            continue
        old, new = baseline[name], current[name]
        delta = (new - old) / old if old > 0 else 0.0
        verdict = "ok"
        if delta > threshold:
            verdict = "REGRESSION"
            failed = True
        rows.append({"name": name, "verdict": verdict, "baseline": old,
                     "current": new, "delta": round(delta, 6)})
    return rows, failed


def render_rows(rows: list[dict]) -> list[str]:
    lines = []
    for row in rows:
        name, verdict = row["name"], row["verdict"]
        if verdict == "removed":
            lines.append(f"  {name:<40} removed (baseline only)")
        elif verdict == "new":
            lines.append(f"  {name:<40} new (no baseline)")
        else:
            lines.append(
                f"  {name:<40} {row['baseline']:.6f}s -> "
                f"{row['current']:.6f}s ({row['delta']:+.1%}) {verdict}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two benchmark timing files; non-zero exit on "
                    "regression")
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated relative slowdown "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--json-out", type=pathlib.Path, metavar="FILE",
                        help="also write the comparison as JSON (the "
                             "CI gate uploads this as an artifact)")
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("threshold must be non-negative")

    rows, failed = compare(load_means(args.baseline),
                           load_means(args.current), args.threshold)
    print(f"benchmark comparison ({args.baseline} -> {args.current}, "
          f"threshold {args.threshold:.0%}):")
    for line in render_rows(rows):
        print(line)
    if args.json_out:
        args.json_out.write_text(json.dumps({
            "baseline": str(args.baseline),
            "current": str(args.current),
            "threshold": args.threshold,
            "failed": failed,
            "results": rows,
        }, sort_keys=True, indent=2) + "\n")
    if failed:
        print("FAIL: at least one benchmark regressed past the threshold")
        return 1
    print("OK: no benchmark regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
