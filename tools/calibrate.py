"""Calibration driver: print McKernel-vs-Linux gains across node sweeps."""
import numpy as np
from repro.hardware import fugaku, oakforest_pacs
from repro.kernel import LinuxKernel, fugaku_production, ofp_default
from repro.mckernel import boot_mckernel
from repro.runtime import compare
from repro.apps import ALL_PROFILES

def sweep(machine, tuning, apps, counts):
    linux = LinuxKernel(machine.node, tuning, interconnect=machine.interconnect)
    mck = boot_mckernel(machine.node, host_tuning=tuning)
    for app in apps:
        p = ALL_PROFILES[app]()
        comps = compare(machine, p, linux, mck, counts, n_runs=3, seed=1)
        row = "  ".join(f"{c.n_nodes}:{c.speedup_percent:+5.1f}%" for c in comps)
        lt = comps[-1].linux.mean_time; mt = comps[-1].mckernel.mean_time
        print(f"{machine.name:>15} {app:>8}: {row}   (T_lin={lt:.1f}s T_mck={mt:.1f}s)")
        b = comps[-1].linux.breakdown
        print(f"{'':>24} linux breakdown: comp={b.compute:.1f} tlb={b.tlb:.2f} churn={b.churn:.2f} coll={b.collective:.2f} noise={b.noise:.2f} init={b.init:.2f}")

ofp = oakforest_pacs()
print("== OFP (targets: AMG +18%@8k, Milc +22%@8k, Lulesh ~2x@8k, LQCD +25%@2k, GeoFEM +6%@8k, GAMERA +25%@4k)")
sweep(ofp, ofp_default(), ["AMG2013","Milc","Lulesh"], [16,128,1024,8192])
sweep(ofp, ofp_default(), ["LQCD"], [256,512,1024,2048])
sweep(ofp, ofp_default(), ["GeoFEM"], [16,128,1024,8192])
sweep(ofp, ofp_default(), ["GAMERA"], [512,1024,2048,4096])

fug = fugaku()
print("== Fugaku (targets: LQCD ~0%, GeoFEM ~+3%, GAMERA +29%@8k)")
sweep(fug, fugaku_production(), ["LQCD","GeoFEM","GAMERA"], [384,1536,4608,9216] if False else [512,2048,8192])
