#!/usr/bin/env python3
"""Generate docs/API.md: every public item with its one-line summary."""

from __future__ import annotations

import importlib
import inspect
import pathlib

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.hardware",
    "repro.kernel",
    "repro.mckernel",
    "repro.noise",
    "repro.net",
    "repro.apps",
    "repro.runtime",
    "repro.faults",
    "repro.platform",
    "repro.experiments",
    "repro.engine",
    "repro.service",
    "repro.chaos",
    "repro.perf",
    "repro.obs",
    "repro.analysis",
]

# Hand-written prose appended after the generated tables, so a
# regeneration never loses it.
PERFORMANCE_SECTION = """\
## Performance & parallel execution

The sweeps behind `compare`, Figs. 5-7 and `run_all` decompose into
independent *cells* `(machine, profile, OS, n_nodes, n_runs, seed)`.
Each cell derives its RNG streams purely from those coordinates, so
`repro.perf` can execute cells in any order — across worker processes
or out of a memoized cache — and still reproduce the serial results
bit for bit.

Three composable layers:

* **Parallel executor** — `execute_cells(cells, jobs=N)` fans cells
  out over a `ProcessPoolExecutor` and reassembles results in
  submission order.  Pool-infrastructure failures degrade to the
  serial path transparently; model errors propagate unchanged.
* **Run cache** — `RunCache` stores RunResults content-addressed by
  SHA-256.  Cells carrying a `repro.platform.RunSpec` (everything the
  experiments and CLI produce) hash the spec's canonical JSON — the
  key is auditable from a text artifact, and disk entries embed the
  spec next to the result.  Raw RunCells fall back to an object-walk
  fingerprint over machine, profile, OS signature (tuning, cost model,
  feature switches), node/repetition counts, seed and package version.
  Any configuration change produces a new key, so stale entries are
  unreachable rather than invalidated.  The disk tier lives in
  `$REPRO_CACHE_DIR` (default `~/.cache/repro-runs`); writes are
  atomic, and a corrupt entry (truncated write, bit rot, hand edit)
  is moved to the `quarantine/` subdirectory and read as a miss — one
  bad file never kills a sweep.  `repro cache verify` audits the whole
  disk tier with the same check.
* **Metrics** — `repro.obs.MetricsRegistry` (the successor of
  `PerfCounters`, which remains as a deprecated alias) accumulates
  executor/cache event counts, wall-time, and labeled series;
  `repro experiments <ids> --stats` prints the report and
  `repro metrics <ids>` dumps Prometheus exposition text.

See `docs/OBSERVABILITY.md` for the cross-layer tracer
(`repro trace run`), exporters, and the noise-attribution workflow.

Entry points:

```python
from repro.experiments import run_all, run_experiment
from repro.perf import RunCache, perf_context

run_experiment("fig5", fast=False, jobs=4)          # parallel fan-out
run_all(fast=False, jobs=4, cache=RunCache.default())

with perf_context(jobs=4, cache=RunCache.default()):
    run_experiment("fig6", fast=False)              # inherits ambient knobs
```

CLI equivalents: `repro experiments fig5 --jobs 0 --stats`
(`--jobs 0` = one worker per available CPU; `--no-cache`,
`--cache-dir DIR` to steer the cache) and
`repro cache info|clear|verify`.

Below the executor, the Monte-Carlo hot paths are vectorized —
batched trial sampling in `AppRunner`, fused order-statistic draws in
`BarrierDelaySampler.sample_batch`, chunked event charging in the DES
`NoisyCore` — under a strict rule: every vectorization is bit-identical
to the loop it replaced.  `perf_context(target_ci=...)` additionally
enables variance-adaptive early stopping of Monte-Carlo cells (off by
default; deterministic across `--jobs`).  See `docs/PERFORMANCE.md`
for the bit-identity rules, the adaptive-stopping knob, and the speed
budget.

Guarantee: for every experiment id, parallel and cached runs render
byte-identical output to a serial, uncached run
(`tests/test_perf_executor.py`, `tests/test_perf_cache.py`).  The
opt-in `pytest -m perfsmoke` demo times the figure-regeneration loop
and asserts the combined speedup; `tools/bench_compare.py` diffs two
benchmark timing files, fails on >20% regressions, and with
`--budget benchmarks/budgets.json` enforces the committed speed
budget (CI's `perf` job runs exactly this).

## Fault injection & tolerance (`repro.faults`)

`FaultSpec` names a failure environment as data: per-node MTBF,
cgroup OOM-kill / proxy-crash / daemon-stall rates (per node-hour, so
exposure scales with job size × walltime), IKC drop probability, plus
the tolerance policy (bounded retries with exponential backoff,
optional periodic checkpoint/restart).  The default spec injects
nothing and is omitted from canonical platform JSON, so every
fault-free fingerprint, cache key and golden output is byte-identical
to a build without fault support.

`FaultInjector` turns a spec into deterministic `FaultEvent`
schedules: every draw comes from a named stream seeded by
`(spec.seed, fnv1a(stream))`, so a `(FaultSpec, stream)` pair replays
identically on any process and for any `--jobs` value.

Component wiring:

* `BatchScheduler(engine, nodes, faults=spec)` runs the canonical
  fault-tolerant job state machine — RUNNING → RESTARTING (bounded
  retries, exponential backoff, checkpoint-aware restart point) →
  FAILED — and reports `success_rate()`, `effective_utilization()`
  (goodput: completed payload only) and `fault_report()` (the
  checkpoint-cost vs lost-work tradeoff, per run).
* `IkcChannel(spec, drop_rng=...)` models in-flight message loss with
  sender-side re-delivery and timeout accounting; an injected OOM
  raises the existing `CgroupLimitExceeded`; `ProxyProcess.crash()` /
  `.respawn()` model the §6 proxy-death failure mode (all Linux-side
  delegated state is lost).

```python
from repro.faults import FaultSpec
from repro.platform import get_platform

plat = get_platform("fugaku-production").with_faults(
    node_mtbf_hours=8000.0, checkpoint_interval=1800.0,
    checkpoint_cost=60.0, seed=42)
plat.to_json()   # "faults" section present only when active
```

The `faults` experiment (`repro experiment faults --full`) sweeps job
success rate and effective utilization against node count for both
kernels under one seeded spec; `pytest -m faultsmoke` soaks the
full-scale projection in CI.

## The execution engine & job service

Every way a `repro.platform.RunSpec` becomes a RunResult — library
call, one-shot CLI, experiment registry, exporter, service worker —
runs through one `repro.engine.ExecutionEngine`.  A bare
`ExecutionEngine()` inherits the ambient `perf_context` (pure
pass-through, byte-identical to calling the runners directly);
`ExecutionEngine.from_options(jobs=..., cache=..., ...)` installs its
own context for the duration of each `session()`.  Because there is a
single execution core, the byte-identity guarantee extends across
front doors for free.

`repro.service` adds the durable shape on top: a persistent job queue
(`repro submit`), a crash-tolerant worker fleet (`repro serve`), and
`repro status`/`repro fetch` for inspection and artifact retrieval.
All queue state is an append-only canonical-JSONL journal plus
`O_CREAT|O_EXCL` claim files — atomic claims, clock-free heartbeat
leases, atomic result publication — under `$REPRO_SERVICE_DIR`
(default `~/.local/state/repro-service`).  Workers share the queue's
content-addressed run cache, so artifacts are byte-identical to the
serial `repro experiment`/`repro export` path for any worker count,
including after `kill -9` and lease re-claims.  See
`docs/SERVICE.md` for the state machine, the lease algebra, and a
crash-recovery walkthrough.

These claims are tested, not asserted: `repro.chaos` threads named
crash points through the journal, queue, worker and run cache and
fires them on a deterministic seeded schedule (`ChaosSpec`), while
`repro service verify [--repair]` replays the journal against the
on-disk state and checks every invariant the service relies on,
performing only provably-safe repairs (quarantine / re-queue /
complete).  `repro chaos soak` composes the two — crash, repair,
restart, repeat — and accepts nothing short of a clean verify plus
artifacts byte-identical to the serial path.  See `docs/CHAOS.md`.
"""


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0] if doc else "(undocumented)"


def rules_section() -> "list[str]":
    """The static-analysis rule table, generated from the same
    registry ``repro analyze rules`` prints so it cannot drift."""
    from repro.analysis.linter import all_rules

    lines = [
        "## Static-analysis rules",
        "",
        "Every registered lint rule (`repro analyze rules --json` is "
        "the same catalogue as JSON); DET rules run under "
        "`repro analyze lint`, CC rules under `repro analyze crash`.",
        "",
        "| rule | family | title |",
        "|---|---|---|",
    ]
    for rule in all_rules():
        family = ("crash-consistency" if rule.rule_id.startswith("CC")
                  else "determinism")
        lines.append(f"| `{rule.rule_id}` | {family} | {rule.title} |")
    lines.append("")
    return lines


def main() -> None:
    lines = [
        "# API reference",
        "",
        "One line per public item; generated by `tools/gen_api.py`.",
        "Full documentation lives in the docstrings.",
        "",
    ]
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        lines.append(f"## `{pkg_name}`")
        lines.append("")
        lines.append(first_line(pkg))
        lines.append("")
        names = getattr(pkg, "__all__", None)
        if not names:
            lines.append("")
            continue
        rows = []
        for name in sorted(set(names)):
            obj = getattr(pkg, name, None)
            if obj is None:
                continue
            if inspect.ismodule(obj):
                kind = "module"
            elif inspect.isclass(obj):
                kind = "class"
            elif callable(obj):
                kind = "function"
            else:
                kind = "constant"
            summary = (first_line(obj) if kind in ("class", "function")
                       else "")
            rows.append(f"| `{name}` | {kind} | {summary} |")
        lines.append("| name | kind | summary |")
        lines.append("|---|---|---|")
        lines.extend(rows)
        lines.append("")
    lines.extend(rules_section())
    lines.append(PERFORMANCE_SECTION)
    out = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
    out.parent.mkdir(exist_ok=True)
    out.write_text("\n".join(lines) + "\n")
    print(f"wrote {out} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
