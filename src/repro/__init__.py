"""repro — a simulation-based reproduction of *"Linux vs. Lightweight
Multi-kernels for High Performance Computing: Experiences at
Pre-Exascale"* (Gerofi et al., SC '21).

The package models, in Python, every system the paper's evaluation
touches: the Oakforest-PACS and Fugaku node/system hardware, a tunable
Linux kernel (cgroups, hugeTLBfs, buddy allocator, nohz_full, IRQ
routing, the §4.2 noise countermeasures), the IHK/McKernel lightweight
multi-kernel (resource partitioning, syscall delegation, Tofu
PicoDriver), the OS-noise apparatus (FWQ, Eq. 1/Eq. 2, at-scale tail
models), the network/collective substrate, and BSP profiles of the six
evaluated applications.  ``repro.experiments`` regenerates every table
and figure.

Quickstart::

    from repro import quick_compare
    print(quick_compare("LQCD", platform="fugaku", nodes=2048))

See examples/quickstart.py for a guided tour.
"""

from __future__ import annotations

from . import (
    apps,
    experiments,
    hardware,
    kernel,
    mckernel,
    net,
    noise,
    perf,
    runtime,
    sim,
)
from .errors import (
    CgroupLimitExceeded,
    ConfigurationError,
    OutOfMemoryError,
    PartitionError,
    ReproError,
    ResourceError,
    SimulationError,
    SyscallError,
)

__version__ = "1.0.0"


def quick_compare(app: str, platform: str = "fugaku", nodes: int = 1024,
                  n_runs: int = 3, seed: int = 0):
    """One-call Linux-vs-McKernel comparison.

    Parameters
    ----------
    app:
        One of ``repro.apps.ALL_PROFILES`` ("AMG2013", "Milc", "Lulesh",
        "LQCD", "GeoFEM", "GAMERA").
    platform:
        "fugaku" or "ofp".
    nodes:
        Job size in compute nodes.

    Returns the :class:`repro.runtime.Comparison` for the requested
    point.
    """
    from .apps import ALL_PROFILES
    from .hardware.machines import fugaku, oakforest_pacs
    from .kernel.linux import LinuxKernel
    from .kernel.tuning import fugaku_production, ofp_default
    from .mckernel.lwk import boot_mckernel
    from .runtime.runner import compare

    if platform.lower() in ("fugaku", "a64fx"):
        machine, tuning = fugaku(), fugaku_production()
    elif platform.lower() in ("ofp", "oakforest", "oakforest-pacs", "knl"):
        machine, tuning = oakforest_pacs(), ofp_default()
    else:
        raise ConfigurationError(f"unknown platform {platform!r}")
    profile = ALL_PROFILES[app]()
    linux = LinuxKernel(machine.node, tuning,
                        interconnect=machine.interconnect)
    mck = boot_mckernel(machine.node, host_tuning=tuning)
    return compare(machine, profile, linux, mck, [nodes],
                   n_runs=n_runs, seed=seed)[0]


__all__ = [
    "apps",
    "experiments",
    "hardware",
    "kernel",
    "mckernel",
    "net",
    "noise",
    "perf",
    "runtime",
    "sim",
    "quick_compare",
    "ReproError",
    "ConfigurationError",
    "ResourceError",
    "OutOfMemoryError",
    "CgroupLimitExceeded",
    "PartitionError",
    "SimulationError",
    "SyscallError",
    "__version__",
]
