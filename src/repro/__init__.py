"""repro — a simulation-based reproduction of *"Linux vs. Lightweight
Multi-kernels for High Performance Computing: Experiences at
Pre-Exascale"* (Gerofi et al., SC '21).

The package models, in Python, every system the paper's evaluation
touches: the Oakforest-PACS and Fugaku node/system hardware, a tunable
Linux kernel (cgroups, hugeTLBfs, buddy allocator, nohz_full, IRQ
routing, the §4.2 noise countermeasures), the IHK/McKernel lightweight
multi-kernel (resource partitioning, syscall delegation, Tofu
PicoDriver), the OS-noise apparatus (FWQ, Eq. 1/Eq. 2, at-scale tail
models), the network/collective substrate, and BSP profiles of the six
evaluated applications.  ``repro.experiments`` regenerates every table
and figure.

Quickstart::

    from repro import quick_compare
    print(quick_compare("LQCD", platform="fugaku", nodes=2048))

See examples/quickstart.py for a guided tour.
"""

from __future__ import annotations

from . import (
    apps,
    experiments,
    faults,
    hardware,
    kernel,
    mckernel,
    net,
    noise,
    perf,
    platform,
    runtime,
    sim,
)
from .engine import EngineOptions, ExecutionEngine
from .errors import (
    CacheCorruptionError,
    CgroupLimitExceeded,
    ClaimConflict,
    ConfigurationError,
    FaultError,
    IkcTimeoutError,
    JobNotFoundError,
    JobRetriesExhausted,
    JournalCorruptionError,
    NodeFailure,
    OutOfMemoryError,
    PartitionError,
    ProxyCrashed,
    ReproError,
    ResourceError,
    ServiceError,
    SimulationError,
    SyscallError,
)

__version__ = "1.0.0"


def quick_compare(app: str, platform: str = "fugaku", nodes: int = 1024,
                  n_runs: int = 3, seed: int = 0):
    """One-call Linux-vs-McKernel comparison.

    Parameters
    ----------
    app:
        One of ``repro.apps.ALL_PROFILES`` ("AMG2013", "Milc", "Lulesh",
        "LQCD", "GeoFEM", "GAMERA").
    platform:
        A registered platform name (``repro.platform.platform_names()``)
        or one of the aliases "fugaku"/"a64fx"/"ofp"/"oakforest"/"knl".
    nodes:
        Job size in compute nodes.

    Returns the :class:`repro.runtime.Comparison` for the requested
    point.
    """
    from .platform import compare_platforms, get_platform, platform_names

    aliases = {
        "fugaku": "fugaku-production",
        "a64fx": "fugaku-production",
        "ofp": "ofp-default",
        "oakforest": "ofp-default",
        "oakforest-pacs": "ofp-default",
        "knl": "ofp-default",
    }
    name = aliases.get(platform.lower(), platform)
    if name not in platform_names():
        raise ConfigurationError(
            f"unknown platform {platform!r}; known: {platform_names()} "
            f"(aliases: {sorted(aliases)})")
    return compare_platforms(get_platform(name), app, [nodes],
                             n_runs=n_runs, seed=seed)[0]


__all__ = [
    "apps",
    "experiments",
    "faults",
    "hardware",
    "kernel",
    "mckernel",
    "net",
    "noise",
    "perf",
    "platform",
    "runtime",
    "sim",
    "quick_compare",
    "ExecutionEngine",
    "EngineOptions",
    "ReproError",
    "ConfigurationError",
    "ResourceError",
    "OutOfMemoryError",
    "CgroupLimitExceeded",
    "PartitionError",
    "SimulationError",
    "SyscallError",
    "FaultError",
    "NodeFailure",
    "ProxyCrashed",
    "IkcTimeoutError",
    "JobRetriesExhausted",
    "CacheCorruptionError",
    "ServiceError",
    "JobNotFoundError",
    "ClaimConflict",
    "JournalCorruptionError",
    "__version__",
]
