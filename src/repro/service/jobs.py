"""Job specifications: frozen, serialized submissions.

The gem5 reproducibility lesson applied to our service: a submission
is a *serialized artifact*, not an in-process call.  A
:class:`JobSpec` is canonical JSON on disk from the moment of
``repro submit``; whichever worker claims it — today, after a crash,
on another machine sharing the service directory — executes exactly
those bytes through the shared :class:`~repro.engine.ExecutionEngine`,
so results are byte-reproducible no matter who ran them.

Three kinds:

* ``run`` — a single :class:`~repro.platform.RunSpec` cell;
* ``sweep`` — an ordered list of RunSpecs executed as one fan-out;
* ``experiment`` — a registered experiment id, exported exactly like
  ``repro export`` (same engine, same files, same bytes).

Job ids are deterministic: ``j<seq>-<sha256 prefix>`` where ``seq`` is
the submission ordinal and the digest is over the jobspec's canonical
JSON — no clocks, no UUIDs, nothing host-dependent (DET-lint clean by
construction).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ConfigurationError
from ..obs.export import canonical_json
from ..platform.spec import RunSpec

__all__ = ["JOB_KINDS", "JobSpec", "job_id_for", "load_jobspec"]

#: The accepted submission kinds.
JOB_KINDS = ("run", "sweep", "experiment")


@dataclass(frozen=True)
class JobSpec:
    """One frozen submission: what to execute, fully self-contained."""

    #: One of :data:`JOB_KINDS`.
    kind: str
    #: The cells to run (``run``/``sweep`` kinds), in execution order.
    specs: tuple = ()
    #: Registered experiment id (``experiment`` kind).
    experiment: str = ""
    #: Fast (CI-scale) or full (paper-scale) layout for experiments.
    fast: bool = True
    #: Base seed for experiment jobs.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ConfigurationError(
                f"unknown job kind {self.kind!r}; known: {JOB_KINDS}")
        if self.kind == "experiment":
            if not self.experiment:
                raise ConfigurationError(
                    "experiment jobs need an experiment id")
            if self.specs:
                raise ConfigurationError(
                    "experiment jobs take an id, not run specs")
        else:
            if not self.specs:
                raise ConfigurationError(
                    f"{self.kind} jobs need at least one run spec")
            if self.kind == "run" and len(self.specs) != 1:
                raise ConfigurationError(
                    f"run jobs take exactly one spec "
                    f"(got {len(self.specs)}); use kind 'sweep'")
            if self.experiment:
                raise ConfigurationError(
                    f"{self.kind} jobs do not take an experiment id")
        for spec in self.specs:
            if not isinstance(spec, RunSpec):
                raise ConfigurationError(
                    f"specs must be RunSpec instances, got "
                    f"{type(spec).__name__}")

    # -- serialization ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "specs": [spec.to_dict() for spec in self.specs],
            "experiment": self.experiment,
            "fast": self.fast,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobSpec":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"job spec must be a JSON object, got "
                f"{type(payload).__name__}")
        known = {"kind", "specs", "experiment", "fast", "seed"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"job spec: unknown field(s) {unknown}")
        specs = payload.get("specs", ())
        if not isinstance(specs, Sequence) or isinstance(specs, (str, bytes)):
            raise ConfigurationError("job spec: 'specs' must be a list")
        return cls(
            kind=payload.get("kind", ""),
            specs=tuple(RunSpec.from_dict(s) for s in specs),
            experiment=str(payload.get("experiment", "")),
            fast=bool(payload.get("fast", True)),
            seed=int(payload.get("seed", 0)),
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def digest(self) -> str:
        """SHA-256 of the canonical JSON: the content half of job ids."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- constructors -------------------------------------------------

    @classmethod
    def for_experiment(cls, experiment: str, fast: bool = True,
                       seed: int = 0) -> "JobSpec":
        return cls(kind="experiment", experiment=experiment, fast=fast,
                   seed=seed)

    @classmethod
    def for_specs(cls, specs: Sequence[RunSpec]) -> "JobSpec":
        specs = tuple(specs)
        kind = "run" if len(specs) == 1 else "sweep"
        return cls(kind=kind, specs=specs)


def job_id_for(seq: int, jobspec: JobSpec) -> str:
    """The deterministic job id for submission ordinal ``seq``:
    sortable by submission order, content-checkable by digest."""
    if seq < 0:
        raise ConfigurationError("job sequence must be >= 0")
    return f"j{seq:06d}-{jobspec.digest()[:10]}"


def load_jobspec(text: str) -> JobSpec:
    """Parse a submission document.

    Accepts a full :class:`JobSpec` object (a ``kind`` key), a bare
    :class:`~repro.platform.RunSpec` (a ``platform`` key, as accepted
    by ``repro run``), or a bare list of RunSpecs (a sweep) — so any
    spec file that works one-shot also submits as a job.
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(f"invalid JSON: {exc}") from exc
    if isinstance(payload, list):
        return JobSpec.for_specs([RunSpec.from_dict(p) for p in payload])
    if isinstance(payload, Mapping):
        if "kind" in payload:
            return JobSpec.from_dict(payload)
        if "platform" in payload:
            return JobSpec.for_specs([RunSpec.from_dict(payload)])
        if "experiment" in payload:
            return JobSpec.for_experiment(
                str(payload["experiment"]),
                fast=bool(payload.get("fast", True)),
                seed=int(payload.get("seed", 0)))
    raise ConfigurationError(
        "unrecognized submission: expected a JobSpec object (a 'kind' "
        "key), a RunSpec (a 'platform' key), an {'experiment': id} "
        "object, or a list of RunSpecs")
