"""Fleet orchestration: ``repro serve`` with one or many workers.

A single worker runs in-process (the shape tests exercise and the
crash-recovery walkthrough in ``docs/SERVICE.md`` narrates).  A fleet
of ``N > 1`` runs each worker as an OS process executing ``repro serve
--workers 1`` against the same service directory — real processes,
real kill -9 tolerance, no shared interpreter state.  The queue's
claim files arbitrate between them; nothing here coordinates beyond
spawn-and-wait.
"""

from __future__ import annotations

import os
import subprocess
import sys
from typing import Optional

from ..chaos.hooks import ChaosInjector, chaos_active
from ..chaos.spec import ChaosSpec
from ..errors import ConfigurationError
from ..faults.tolerance import RetryPolicy
from .queue import JobQueue
from .worker import Worker

__all__ = ["serve"]


def serve(directory: "str | os.PathLike | None" = None, workers: int = 1,
          drain: bool = False, poll_interval: float = 0.1,
          lease_ticks: int = 50, max_retries: int = 3,
          backoff: float = 0.0,
          max_polls: Optional[int] = None,
          chaos: "str | os.PathLike | None" = None,
          telemetry: bool = False) -> dict:
    """Run a worker (or fleet) against the service directory.

    Returns a summary dict; ``{"exit_code": 0}`` on success.  With
    ``drain=True`` every worker exits once the queue is fully
    terminal; otherwise they serve until interrupted.

    ``chaos`` names a :class:`~repro.chaos.ChaosSpec` JSON file: the
    single-worker shape installs it around the poll loop; a fleet
    propagates ``--chaos FILE`` to every worker process, so each
    subprocess realizes the same seeded schedule independently.  A
    worker dying to a *kill* in ``exit`` mode reports exit status 137,
    exactly like a real ``kill -9`` — the surviving workers' lease
    machinery (or ``repro service verify --repair``) recovers the
    queue.

    ``telemetry=True`` gives every worker a durable spool under
    ``<dir>/telemetry/`` (propagated as ``--telemetry`` to fleet
    subprocesses); ``repro service top`` / ``report`` aggregate them.
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    spec = ChaosSpec.load(chaos) if chaos is not None else None
    retry = RetryPolicy(max_retries=max_retries, backoff_base=backoff)
    queue = JobQueue(directory, retry=retry)
    if workers == 1:
        worker = Worker(queue, poll_interval=poll_interval,
                        lease_ticks=lease_ticks, drain=drain,
                        max_polls=max_polls, telemetry=telemetry)
        if spec is not None:
            with chaos_active(ChaosInjector(spec)):
                summary = worker.run()
        else:
            summary = worker.run()
        summary["exit_code"] = 0
        return summary

    cmd = [sys.executable, "-m", "repro", "serve",
           "--dir", str(queue.root), "--workers", "1",
           "--poll", str(poll_interval),
           "--lease-ticks", str(lease_ticks),
           "--max-retries", str(max_retries),
           "--backoff", str(backoff)]
    if drain:
        cmd.append("--drain")
    if max_polls is not None:
        cmd += ["--max-polls", str(max_polls)]
    if chaos is not None:
        cmd += ["--chaos", str(chaos)]
    if telemetry:
        cmd.append("--telemetry")
    procs = [subprocess.Popen(cmd) for _ in range(workers)]
    codes = [p.wait() for p in procs]
    return {
        "workers": workers,
        "worker_exit_codes": codes,
        "exit_code": max(codes, default=0),
    }
