"""repro.service — the simulation-as-a-service layer.

The ROADMAP north star made concrete: instead of one-shot CLI
invocations, experiments and sweeps are *submitted* to a persistent
queue and executed by a crash-tolerant worker fleet — the
Balsam-style launcher/site split, scaled down to a directory and a
JSONL journal.  Everything still executes through the one shared
:class:`~repro.engine.ExecutionEngine`, so a job's artifacts are
byte-identical to the serial ``repro experiment``/``repro export``
path for any worker count, before and after worker crashes.

Layers (bottom up):

* :mod:`~repro.service.journal` — append-only JSONL, the single
  source of truth;
* :mod:`~repro.service.jobs` — frozen, serialized submissions;
* :mod:`~repro.service.queue` — the folded job table, atomic claims,
  clock-free leases, retry/fail transitions;
* :mod:`~repro.service.worker` — claim → execute → publish, heartbeat
  and lease-reaping;
* :mod:`~repro.service.fleet` — ``repro serve`` for one worker or an
  OS-process fleet;
* :mod:`~repro.service.fsck` — invariant verification and safe repair
  (``repro service verify [--repair]``), including telemetry-spool
  healing and quarantine.

Fleet telemetry rides on top: ``repro serve --telemetry`` gives every
worker a durable :class:`~repro.obs.spool.TelemetrySpool`, and
:class:`~repro.obs.fleet.FleetAggregator` folds journal + spools into
the health console (``repro service top``) and the deterministic
fleet report (``repro service report [--check]``).

CLI verbs: ``repro submit``, ``repro serve``, ``repro status
[--json]``, ``repro fetch``, ``repro service verify``, ``repro
service top``, ``repro service report``.  See ``docs/SERVICE.md``
for queue states, lease semantics and a crash-recovery walkthrough,
and ``docs/CHAOS.md`` for the crash-point catalogue this layer is
soak-tested against.
"""

from __future__ import annotations

from .fleet import serve
from .fsck import ServiceFsck, verify_service
from .jobs import JOB_KINDS, JobSpec, job_id_for, load_jobspec
from .journal import Journal
from .queue import JobQueue, JobState, JobView, default_service_dir
from .worker import Worker

__all__ = [
    "JOB_KINDS",
    "JobQueue",
    "JobSpec",
    "JobState",
    "JobView",
    "Journal",
    "ServiceFsck",
    "Worker",
    "default_service_dir",
    "job_id_for",
    "load_jobspec",
    "serve",
    "verify_service",
]
