"""Persistent, transactional job queue over the append-only journal.

State lives under one service directory (``$REPRO_SERVICE_DIR`` or
``~/.local/state/repro-service``)::

    journal.jsonl     every state transition, one canonical line each
    jobs/<id>.json    the frozen submission artifact (canonical JSON)
    claims/<id>.claim the lease: owner, attempt, heartbeat counter
    results/<id>/     published artifacts (atomic directory rename)
    cache/            shared disk tier of the content-addressed RunCache

The job table is a pure fold over the journal (:meth:`JobQueue.table`)
— there is no secondary index to corrupt.  States follow the PR-3
:class:`~repro.runtime.batchsched.BatchScheduler` model extended with
the claim handshake::

    QUEUED -> CLAIMED -> RUNNING -> DONE
                 |          |
                 +----------+--> RETRYING -> (claimable again)
                            |
                            +--> FAILED    (retry budget exhausted,
                                            per RetryPolicy)

**Atomic claims.**  A claim is an ``O_CREAT | O_EXCL`` file create —
the POSIX mutual-exclusion primitive — so exactly one worker wins a
job even when a whole fleet polls the same directory.

**Leases without clocks.**  The claim file carries a heartbeat
*counter* the owner bumps while executing.  An observer declares the
lease dead only after the counter fails to advance across
``lease_ticks`` of its *own* poll cycles (see
:class:`~repro.service.worker.Worker`), and breaking the lease is an
``os.replace`` of the claim file — again exactly-one-winner.  No
wall-clock reads anywhere: the module passes the DET determinism lint
with no baseline entries.

**Crash accounting.**  A broken lease appends a ``retry`` record (or
``fail`` once the :class:`~repro.faults.RetryPolicy` budget is spent)
and counts the lost attempt in the ``service.attempts_lost`` metric —
the queue-level analogue of the batch scheduler's goodput accounting.
"""

from __future__ import annotations

import enum
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Optional

from ..chaos.hooks import get_chaos
from ..errors import ClaimConflict, JobNotFoundError, ServiceError
from ..faults.tolerance import RetryPolicy
from ..obs.export import canonical_json
from ..obs.metrics import get_metrics
from ..obs.tracer import get_tracer
from .jobs import JobSpec, job_id_for
from .journal import Journal

__all__ = ["JobQueue", "JobState", "JobView", "default_service_dir"]


def default_service_dir() -> pathlib.Path:
    """``$REPRO_SERVICE_DIR`` or ``~/.local/state/repro-service``."""
    env = os.environ.get("REPRO_SERVICE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".local" / "state" / "repro-service"


class JobState(enum.Enum):
    """Lifecycle of one submitted job (see the module diagram)."""

    QUEUED = "queued"
    CLAIMED = "claimed"
    RUNNING = "running"
    RETRYING = "retrying"
    DONE = "done"
    FAILED = "failed"


#: States a worker may claim from.
CLAIMABLE = (JobState.QUEUED, JobState.RETRYING)
#: States with no further transitions.
TERMINAL = (JobState.DONE, JobState.FAILED)


@dataclass
class JobView:
    """One job's folded state (a row of :meth:`JobQueue.table`)."""

    job_id: str
    kind: str = ""
    state: JobState = JobState.QUEUED
    #: Attempt number the *next* claim will carry (= claims so far,
    #: capped by retries).
    attempts: int = 0
    #: Most recent claimant.
    worker: str = ""
    #: Most recent failure reason ("" while healthy).
    error: str = ""

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state.value,
            "attempts": self.attempts,
            "worker": self.worker,
            "error": self.error,
        }


class JobQueue:
    """The persistent queue: submissions, claims, transitions,
    results — everything under one service directory."""

    def __init__(self, directory: str | os.PathLike | None = None,
                 retry: Optional[RetryPolicy] = None,
                 create: bool = True, durable: bool = True) -> None:
        self.root = pathlib.Path(directory) if directory is not None \
            else default_service_dir()
        #: Retry budget and backoff for failed/lost attempts.  The
        #: service default turns the fault-model's 30 s human-scale
        #: backoff off; ``repro serve --backoff`` restores one.
        self.retry = retry if retry is not None else \
            RetryPolicy(max_retries=3, backoff_base=0.0)
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.cache_dir = self.root / "cache"
        if create:
            for sub in (self.root, self.jobs_dir, self.claims_dir,
                        self.results_dir, self.cache_dir):
                try:
                    sub.mkdir(parents=True, exist_ok=True)
                except OSError as exc:
                    raise ServiceError(
                        f"cannot create service directory {sub}: "
                        f"{exc}") from exc
        #: ``durable=False`` skips the per-append journal fsync and the
        #: post-publish directory fsync (tests only); service paths keep
        #: the acked-state-survives-kill-9 default.
        self.durable = durable
        self.journal = Journal(self.root / "journal.jsonl",
                               durable=durable)
        #: Optional :class:`~repro.obs.spool.TelemetrySpool` the owning
        #: worker attaches; ``None`` (the default) keeps every queue
        #: path byte-identical to the telemetry-less service.
        self.telemetry = None

    # -- submission ---------------------------------------------------

    def submit(self, jobspec: JobSpec) -> str:
        """Freeze the submission artifact and enqueue it; returns the
        job id.  The artifact (``jobs/<id>.json``) is written first
        with ``O_EXCL`` — the id is never announced before the bytes
        it names are durable."""
        seq = sum(1 for r in self.journal.records()
                  if r.get("type") == "submit")
        while True:
            job_id = job_id_for(seq, jobspec)
            path = self.jobs_dir / f"{job_id}.json"
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                             0o644)
            except FileExistsError:
                # Concurrent submitter took this ordinal; next slot.
                seq += 1
                continue
            try:
                os.write(fd, (jobspec.canonical_json() + "\n").encode())
            finally:
                os.close(fd)
            break
        cz = get_chaos()
        if cz is not None:
            # Artifact frozen, submit record not yet journaled: a crash
            # here leaves an orphan jobs/<id>.json nobody was told about.
            cz.on("queue.submit")
        self.journal.append({"type": "submit", "job": job_id,
                             "kind": jobspec.kind})
        get_metrics().counter("service.submitted").inc()
        self._trace("submit", job_id)
        return job_id

    def jobspec(self, job_id: str) -> JobSpec:
        """The frozen submission artifact for ``job_id``."""
        try:
            text = (self.jobs_dir / f"{job_id}.json").read_text()
        except OSError:
            raise JobNotFoundError(
                f"no submission artifact for job {job_id!r} "
                f"under {self.root}") from None
        return JobSpec.from_dict(json.loads(text))

    # -- the folded table ---------------------------------------------

    def table(self) -> dict[str, JobView]:
        """Fold the journal into the current job table (job id ->
        :class:`JobView`), in submission order."""
        views: dict[str, JobView] = {}
        for record in self.journal.records():
            rtype = record.get("type")
            job_id = record.get("job")
            if not isinstance(job_id, str) or not job_id:
                continue
            view = views.get(job_id)
            if view is None:
                view = views[job_id] = JobView(job_id=job_id)
            worker = str(record.get("worker", ""))
            if rtype == "submit":
                view.kind = str(record.get("kind", ""))
            elif rtype == "claim":
                view.state = JobState.CLAIMED
                view.worker = worker
                view.attempts = int(record.get("attempt", 0)) + 1
            elif rtype == "run":
                view.state = JobState.RUNNING
                view.worker = worker
            elif rtype == "retry":
                view.state = JobState.RETRYING
                view.error = str(record.get("error", ""))
            elif rtype == "done":
                view.state = JobState.DONE
                view.error = ""
            elif rtype == "fail":
                view.state = JobState.FAILED
                view.error = str(record.get("error", ""))
        return views

    def job(self, job_id: str) -> JobView:
        view = self.table().get(job_id)
        if view is None:
            raise JobNotFoundError(f"unknown job {job_id!r} "
                                   f"under {self.root}")
        return view

    def depth(self) -> int:
        """Claimable jobs right now (also published as the
        ``service.queue_depth`` gauge by polling workers)."""
        return sum(1 for v in self.table().values()
                   if v.state in CLAIMABLE)

    def drained(self) -> bool:
        """Every submitted job is terminal and no claim is live."""
        if any(v.state not in TERMINAL for v in self.table().values()):
            return False
        return not self.active_claims()

    # -- claims -------------------------------------------------------

    def _claim_path(self, job_id: str) -> pathlib.Path:
        return self.claims_dir / f"{job_id}.claim"

    def claim_next(self, worker_id: str
                   ) -> Optional[tuple[str, JobSpec, int]]:
        """Atomically claim the oldest claimable job.

        Returns ``(job_id, jobspec, attempt)`` or ``None`` when
        nothing is claimable.  The ``O_EXCL`` create of the claim file
        is the lock; losing the race on one job just moves on to the
        next.  Job ids embed the submission ordinal, so "oldest first"
        is a plain sort — identical from every worker.
        """
        table = self.table()
        for job_id in sorted(table):
            if table[job_id].state not in CLAIMABLE:
                continue
            attempt = table[job_id].attempts
            payload = canonical_json({"attempt": attempt, "heartbeat": 0,
                                      "worker": worker_id})
            try:
                fd = os.open(self._claim_path(job_id),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                continue
            try:
                os.write(fd, payload.encode())
            finally:
                os.close(fd)
            cz = get_chaos()
            if cz is not None:
                # Claim file created, claim record not yet journaled: a
                # crash here leaves an unjournaled claim blocking the
                # (still QUEUED) job until fsck or the reaper clears it.
                cz.on("queue.claim")
            self.journal.append({"type": "claim", "job": job_id,
                                 "worker": worker_id, "attempt": attempt})
            get_metrics().counter("service.claims").inc()
            self._trace("claim", job_id, worker_id)
            return job_id, self.jobspec(job_id), attempt
        return None

    def mark_running(self, job_id: str, worker_id: str,
                     attempt: int) -> None:
        self.journal.append({"type": "run", "job": job_id,
                             "worker": worker_id, "attempt": attempt})
        self._trace("run", job_id, worker_id)

    def heartbeat(self, job_id: str, worker_id: str) -> int:
        """Bump the claim's heartbeat counter; returns the new value.

        Raises :class:`~repro.errors.ClaimConflict` when the claim is
        gone or re-owned — the lease was broken and this worker must
        discard its attempt.  The file is opened in place (never
        re-created), so a racing lease-break always wins: after its
        ``os.replace`` the path is gone and the owner's next beat
        conflicts instead of resurrecting the claim.
        """
        try:
            fd = os.open(self._claim_path(job_id), os.O_RDWR)
        except OSError:
            raise ClaimConflict(
                f"lease on {job_id} lost by {worker_id}: claim file "
                "gone (broken by another worker)") from None
        try:
            raw = os.read(fd, 1 << 16)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except ValueError:
                payload = None
            if not isinstance(payload, dict) \
                    or payload.get("worker") != worker_id:
                raise ClaimConflict(
                    f"lease on {job_id} lost by {worker_id}: claim "
                    "re-owned")
            payload["heartbeat"] = int(payload.get("heartbeat", 0)) + 1
            os.lseek(fd, 0, os.SEEK_SET)
            os.ftruncate(fd, 0)
            data = canonical_json(payload).encode()
            cz = get_chaos()
            if cz is None:
                os.write(fd, data)
            else:
                # The claim is truncated and mid-rewrite: a torn write
                # here leaves a claim payload no reader can parse.
                cz.write(fd, data, "queue.lease_bump")
        finally:
            os.close(fd)
        get_metrics().counter("service.heartbeats").inc()
        return int(payload["heartbeat"])

    def read_claim(self, job_id: str) -> Optional[dict]:
        """The claim payload, or None when absent/unreadable (a torn
        heartbeat rewrite reads as None for one observation — the
        counter has still advanced by the next read)."""
        try:
            raw = self._claim_path(job_id).read_text()
        except OSError:
            return None
        try:
            payload = json.loads(raw)
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def active_claims(self) -> dict[str, dict]:
        """job id -> claim payload for every live claim file, in
        sorted order (unreadable payloads map to ``{}``)."""
        out: dict[str, dict] = {}
        for path in sorted(self.claims_dir.glob("*.claim")):
            job_id = path.name[:-len(".claim")]
            out[job_id] = self.read_claim(job_id) or {}
        return out

    def _drop_claim(self, job_id: str) -> None:
        try:
            os.unlink(self._claim_path(job_id))
        except OSError:
            pass

    def break_lease(self, job_id: str, breaker: str = "",
                    reason: str = "lease expired") -> bool:
        """Steal a dead owner's claim; returns True when this caller
        won.  The ``os.replace`` to a per-attempt stale name is the
        race arbiter: exactly one breaker succeeds, everyone else sees
        the path already gone."""
        payload = self.read_claim(job_id) or {}
        attempt = int(payload.get("attempt", 0))
        worker = str(payload.get("worker", ""))
        stale = self.claims_dir / f"{job_id}.stale{attempt}"
        try:
            os.replace(self._claim_path(job_id), stale)
        except OSError:
            return False
        cz = get_chaos()
        if cz is not None:
            # Claim file stolen, retry/fail record not yet journaled: a
            # crash here strands the job CLAIMED/RUNNING with no lease
            # left for anyone to observe — only fsck can re-queue it.
            cz.on("queue.lease_break")
        get_metrics().counter("service.leases_broken").inc()
        get_metrics().counter("service.attempts_lost").inc()
        self._trace("lease_break", job_id, breaker)
        self._retry_or_fail(job_id, worker, attempt,
                            f"{reason} (worker {worker or '?'}, "
                            f"attempt {attempt})")
        return True

    # -- transitions out of RUNNING -----------------------------------

    def complete(self, job_id: str, worker_id: str, attempt: int) -> None:
        """Record success and release the claim."""
        self.journal.append({"type": "done", "job": job_id,
                             "worker": worker_id, "attempt": attempt})
        cz = get_chaos()
        if cz is not None:
            # Done journaled, claim not yet dropped: a crash here
            # leaves a stale claim file on a terminal job.
            cz.on("queue.complete")
        self._drop_claim(job_id)
        get_metrics().counter("service.jobs_done").inc()
        self._trace("done", job_id, worker_id)

    def fail_attempt(self, job_id: str, worker_id: str, attempt: int,
                     error: str) -> None:
        """Record an attempt failure; the retry budget decides whether
        the job re-queues (RETRYING) or dies (FAILED)."""
        self._drop_claim(job_id)
        self._trace("attempt_failed", job_id, worker_id)
        self._retry_or_fail(job_id, worker_id, attempt, error)

    def requeue(self, job_id: str, reason: str) -> None:
        """Re-queue a stranded non-terminal job (fsck's repair verb).

        Charges the lost attempt against the retry budget exactly like
        a lease break, so a job that keeps getting stranded still dies
        at the policy's limit instead of looping forever.
        """
        view = self.job(job_id)
        if view.state in TERMINAL:
            raise ServiceError(
                f"job {job_id} is {view.state.value}; nothing to re-queue")
        attempt = max(0, view.attempts - 1)
        get_metrics().counter("service.attempts_lost").inc()
        self._trace("requeue", job_id)
        self._retry_or_fail(job_id, view.worker, attempt, reason)

    def _retry_or_fail(self, job_id: str, worker_id: str, attempt: int,
                       error: str) -> None:
        failures = attempt + 1
        if self.retry.exhausted(failures):
            self.journal.append({"type": "fail", "job": job_id,
                                 "worker": worker_id, "attempt": attempt,
                                 "error": error})
            get_metrics().counter("service.jobs_failed").inc()
            self._trace("fail", job_id, worker_id)
        else:
            self.journal.append({"type": "retry", "job": job_id,
                                 "worker": worker_id, "attempt": attempt,
                                 "error": error})
            get_metrics().counter("service.retries").inc()
            self._trace("retry", job_id, worker_id)

    # -- results ------------------------------------------------------

    def result_dir(self, job_id: str) -> pathlib.Path:
        """Where ``job_id``'s published artifacts live (exists only
        once the job is DONE — publication is an atomic rename)."""
        return self.results_dir / job_id

    def result_files(self, job_id: str) -> list[pathlib.Path]:
        """The published artifact files, sorted; raises
        :class:`~repro.errors.ServiceError` unless the job is DONE."""
        view = self.job(job_id)
        if view.state is not JobState.DONE:
            raise ServiceError(
                f"job {job_id} is {view.state.value}, not done; "
                "no artifacts to fetch"
                + (f" (last error: {view.error})" if view.error else ""))
        directory = self.result_dir(job_id)
        if not directory.is_dir():
            raise ServiceError(
                f"job {job_id} is done but its result directory "
                f"{directory} is missing")
        return sorted(p for p in directory.rglob("*") if p.is_file())

    # -- plumbing -----------------------------------------------------

    def _trace(self, name: str, job_id: str, worker_id: str = "") -> None:
        tracer = get_tracer()
        if tracer is not None:
            tracer.event("service", name, ts=tracer.advance("service"),
                         actor=worker_id or "queue", job=job_id)
        spool = self.telemetry
        if spool is not None:
            spool.event(name, job=job_id, worker=worker_id)
