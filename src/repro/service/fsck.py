"""fsck for the service directory: verify invariants, repair safely.

The journal is the queue's source of truth, but the service directory
also carries derived state — submission artifacts, claim files, result
directories, the shared run cache — and a crash (real or injected by
:mod:`repro.chaos`) can strand any of them out of step with the
journal.  This module writes the invariants down as code, checks every
one, and repairs exactly the cases where one repair is provably safe:

==========================  =======================================
violation                   repair (``--repair``)
==========================  =======================================
``journal-torn-tail``       truncate the torn fragment off the
                            journal; quarantine the bytes
``journal-corrupt``         none — interior corruption is a real
                            integrity failure; restore from backup
``artifact-missing``        none — the submission bytes are gone
``artifact-corrupt``        none — ditto
``orphan-artifact``         quarantine the artifact (a crash between
                            artifact freeze and the submit record)
``orphan-claim``            quarantine the claim file
``torn-claim``              quarantine the claim; re-queue the job
``stale-claim``             quarantine the claim (job already
                            terminal — crash before claim drop)
``unjournaled-claim``       quarantine the claim (claim file landed,
                            claim record never did)
``lease-epoch-mismatch``    quarantine the claim; re-queue the job
``lost-lease``              re-queue the job (CLAIMED/RUNNING with
                            no claim file left to observe)
``unpublished-result``      append the missing ``done`` record (the
                            publish rename is atomic, so the result
                            directory is complete by construction)
``orphan-result``           quarantine the result directory
``failed-with-result``      none — reported, left in place
``missing-result``          none — a DONE job's artifacts are gone
``stray-workdir``           quarantine the ``*.tmp-*`` directory
``cache-corrupt``           quarantine the cache entry
``cache-incoherent``        quarantine the cache entry (embedded
                            spec no longer hashes to the file name)
``stray-cache-tmp``         quarantine the ``*.tmp`` file
``telemetry-torn-tail``     truncate the torn fragment off the
                            spool; quarantine the bytes
``telemetry-corrupt``       quarantine the whole spool (interior
                            lines unparseable — telemetry is
                            evidence, never load-bearing state)
==========================  =======================================

Check order matters: results are reconciled *before* claims and
lost leases, so a crash after the publish rename but before the
``done`` record repairs to DONE — not to a pointless (if convergent)
re-execution.

Everything quarantined lands under ``<root>/quarantine/`` with its
sub-tree preserved; nothing is ever deleted.  The report is canonical
JSON — byte-stable for identical directory states — and the module
passes the DET lint with no baseline entries, like the rest of the
service package.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Optional

from ..errors import JournalCorruptionError, ReproError
from ..faults.tolerance import RetryPolicy
from ..obs.export import canonical_json
from ..obs.metrics import get_metrics
from ..obs.spool import read_spool, spool_dir
from ..perf.fingerprint import spec_key
from .jobs import JobSpec
from .journal import Journal
from .queue import TERMINAL, JobQueue, JobState

__all__ = ["ServiceFsck", "report_json", "verify_service"]

#: Subdirectory (under the service root) where repairs move evidence.
QUARANTINE_DIR = "quarantine"


@dataclass
class _Finding:
    """One invariant violation (and, after ``--repair``, its outcome)."""

    check: str
    detail: str
    job: str = ""
    path: str = ""
    repairable: bool = False
    repaired: bool = False
    repair: str = ""

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "detail": self.detail,
            "job": self.job,
            "path": self.path,
            "repairable": self.repairable,
            "repaired": self.repaired,
            "repair": self.repair,
        }


@dataclass
class ServiceFsck:
    """One verify (or verify-and-repair) pass over a service directory.

    Construct with the queue to inspect, call :meth:`run`, read the
    report.  ``repair=False`` never mutates anything; ``repair=True``
    performs exactly the safe repairs in the table above.
    """

    queue: JobQueue
    repair: bool = False
    findings: list = field(default_factory=list)
    checked: dict = field(default_factory=dict)

    # -- entry point --------------------------------------------------

    def run(self) -> dict:
        root = self.queue.root
        self.checked = {"journal_records": 0, "jobs": 0, "claims": 0,
                        "results": 0, "cache_entries": 0,
                        "telemetry_spools": 0}
        self._check_journal_tail()
        try:
            table = self.queue.table()
        except JournalCorruptionError as exc:
            self._found("journal-corrupt", str(exc),
                        path=self._rel(self.queue.journal.path))
            return self._report(root)
        self.checked["journal_records"] = len(self.queue.journal)
        self._check_artifacts(table)
        self._check_results(table)
        # Re-fold between phases: each repair group may have appended
        # records (a 'done' for an unpublished result, a 'retry' for a
        # quarantined claim), and the next phase must judge the claims
        # and leases against the *repaired* state, not a stale fold.
        self._check_claims(self.queue.table())
        self._check_lost_leases(self.queue.table())
        self._check_stray_workdirs()
        self._check_cache()
        self._check_telemetry()
        return self._report(root)

    # -- invariants ---------------------------------------------------

    def _check_journal_tail(self) -> None:
        journal = self.queue.journal
        try:
            fd = os.open(journal.path, os.O_RDONLY)
        except OSError:
            return  # no journal yet: an empty service dir is clean
        try:
            torn = journal.torn_tail_bytes(fd)
        finally:
            os.close(fd)
        if torn == 0:
            return
        finding = self._found(
            "journal-torn-tail",
            f"journal ends mid-line ({torn} torn bytes — crash "
            "evidence from an interrupted append)",
            path=self._rel(journal.path), repairable=True,
            repair="truncate the fragment; quarantine its bytes")
        if not self.repair:
            return
        fragment = journal.heal_torn_tail()
        self._write_quarantine("journal.tail", fragment)
        finding.repaired = True

    def _check_artifacts(self, table: dict) -> None:
        jobs_dir = self.queue.jobs_dir
        on_disk = {p.stem: p for p in sorted(jobs_dir.glob("*.json"))}
        self.checked["jobs"] = len(table)
        for job_id in sorted(table):
            path = on_disk.pop(job_id, None)
            if path is None:
                self._found(
                    "artifact-missing",
                    "journaled job has no submission artifact "
                    f"(expected {self._rel(jobs_dir / (job_id + '.json'))})",
                    job=job_id)
                continue
            try:
                JobSpec.from_dict(json.loads(path.read_text()))
            except (OSError, ValueError, ReproError) as exc:
                self._found(
                    "artifact-corrupt",
                    f"submission artifact unreadable: {exc}",
                    job=job_id, path=self._rel(path))
        for job_id in sorted(on_disk):
            path = on_disk[job_id]
            finding = self._found(
                "orphan-artifact",
                "submission artifact was frozen but its submit record "
                "never reached the journal (crash at queue.submit)",
                job=job_id, path=self._rel(path), repairable=True,
                repair="quarantine the artifact")
            if self.repair:
                self._quarantine(path)
                finding.repaired = True

    def _check_results(self, table: dict) -> None:
        results_dir = self.queue.results_dir
        # ``*.tmp-*`` entries are in-flight workdirs, not published
        # results — they have their own stray-workdir check.
        dirs = {p.name: p for p in sorted(results_dir.iterdir())
                if p.is_dir() and ".tmp-" not in p.name} \
            if results_dir.is_dir() else {}
        self.checked["results"] = len(dirs)
        for job_id in sorted(table):
            view = table[job_id]
            published = dirs.pop(job_id, None)
            if view.state is JobState.DONE and published is None:
                self._found(
                    "missing-result",
                    "job is done but its result directory is gone",
                    job=job_id,
                    path=self._rel(results_dir / job_id))
            elif view.state is JobState.FAILED and published is not None:
                self._found(
                    "failed-with-result",
                    "failed job has a published result directory "
                    "(left in place for post-mortem)",
                    job=job_id, path=self._rel(published))
            elif view.state not in TERMINAL and published is not None:
                finding = self._found(
                    "unpublished-result",
                    "result directory is published but the 'done' "
                    "record never reached the journal (crash at "
                    "worker.publish.post_rename)",
                    job=job_id, path=self._rel(published),
                    repairable=True,
                    repair="append the missing 'done' record; drop "
                           "the claim")
                if self.repair:
                    self.queue.complete(job_id, view.worker or "fsck",
                                        max(0, view.attempts - 1))
                    finding.repaired = True
        for name in sorted(dirs):
            finding = self._found(
                "orphan-result",
                "result directory names no journaled job",
                job=name, path=self._rel(dirs[name]), repairable=True,
                repair="quarantine the directory")
            if self.repair:
                self._quarantine(dirs[name])
                finding.repaired = True

    def _check_claims(self, table: dict) -> None:
        claims_dir = self.queue.claims_dir
        paths = sorted(claims_dir.glob("*.claim")) \
            if claims_dir.is_dir() else []
        self.checked["claims"] = len(paths)
        for path in paths:
            job_id = path.name[:-len(".claim")]
            view = table.get(job_id)
            payload = self.queue.read_claim(job_id)
            if view is None:
                self._claim_violation(
                    "orphan-claim", path, job_id,
                    "claim file names no journaled job")
            elif payload is None:
                self._claim_violation(
                    "torn-claim", path, job_id,
                    "claim payload is unparseable (crash mid-rewrite "
                    "at queue.lease_bump)", requeue=view)
            elif view.state in TERMINAL:
                self._claim_violation(
                    "stale-claim", path, job_id,
                    f"claim file outlived the terminal job "
                    f"({view.state.value}; crash at queue.complete)")
            elif view.state in (JobState.QUEUED, JobState.RETRYING):
                self._claim_violation(
                    "unjournaled-claim", path, job_id,
                    "claim file exists but no claim record was "
                    "journaled (crash at queue.claim)")
            else:
                attempt = int(payload.get("attempt", -1))
                worker = str(payload.get("worker", ""))
                if attempt != view.attempts - 1 or worker != view.worker:
                    self._claim_violation(
                        "lease-epoch-mismatch", path, job_id,
                        f"claim (worker={worker!r}, attempt={attempt}) "
                        f"disagrees with the journal (worker="
                        f"{view.worker!r}, attempt={view.attempts - 1})",
                        requeue=view)

    def _claim_violation(self, check: str, path: pathlib.Path,
                         job_id: str, detail: str,
                         requeue=None) -> None:
        repair = "quarantine the claim"
        if requeue is not None:
            repair += "; re-queue the job"
        finding = self._found(check, detail, job=job_id,
                              path=self._rel(path), repairable=True,
                              repair=repair)
        if not self.repair:
            return
        self._quarantine(path)
        if requeue is not None:
            self.queue.requeue(job_id, f"fsck: {check}")
        finding.repaired = True

    def _check_lost_leases(self, table: dict) -> None:
        for job_id in sorted(table):
            view = table[job_id]
            if view.state not in (JobState.CLAIMED, JobState.RUNNING):
                continue
            if self.queue._claim_path(job_id).exists():
                continue
            finding = self._found(
                "lost-lease",
                f"job is {view.state.value} but its claim file is gone "
                "(crash at queue.lease_break, or claim quarantined); "
                "no heartbeat exists for the reaper to observe",
                job=job_id, repairable=True,
                repair="re-queue the job (charges the retry budget)")
            if self.repair:
                self.queue.requeue(job_id, "fsck: lost-lease")
                finding.repaired = True

    def _check_stray_workdirs(self) -> None:
        results_dir = self.queue.results_dir
        if not results_dir.is_dir():
            return
        for path in sorted(results_dir.glob("*.tmp-*")):
            finding = self._found(
                "stray-workdir",
                "abandoned work directory (crash mid-execution or at "
                "worker.publish.pre_rename)",
                path=self._rel(path), repairable=True,
                repair="quarantine the directory")
            if self.repair:
                self._quarantine(path)
                finding.repaired = True

    def _check_cache(self) -> None:
        cache_dir = self.queue.cache_dir
        if not cache_dir.is_dir():
            return
        for path in sorted(cache_dir.glob("*.tmp")):
            finding = self._found(
                "stray-cache-tmp",
                "abandoned cache write (crash at cache.put)",
                path=self._rel(path), repairable=True,
                repair="quarantine the file")
            if self.repair:
                self._quarantine(path)
                finding.repaired = True
        for path in sorted(cache_dir.glob("*.json")):
            self.checked["cache_entries"] += 1
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                self._cache_violation(
                    "cache-corrupt", path,
                    f"cache entry unreadable: {exc}")
                continue
            spec_payload = entry.get("spec") \
                if isinstance(entry, dict) else None
            if spec_payload is None:
                continue  # legacy/self-describing-less entry: no check
            try:
                from ..platform.spec import RunSpec
                key = spec_key(RunSpec.from_dict(spec_payload))
            except (ReproError, ValueError, TypeError) as exc:
                self._cache_violation(
                    "cache-corrupt", path,
                    f"embedded spec unreadable: {exc}")
                continue
            if key != path.stem:
                self._cache_violation(
                    "cache-incoherent", path,
                    f"embedded spec hashes to {key[:12]}…, not the "
                    "entry's file name — the bytes answer a different "
                    "question than the address asks")

    def _cache_violation(self, check: str, path: pathlib.Path,
                         detail: str) -> None:
        finding = self._found(check, detail, path=self._rel(path),
                              repairable=True,
                              repair="quarantine the entry")
        if self.repair:
            self._quarantine(path)
            finding.repaired = True

    def _check_telemetry(self) -> None:
        """Telemetry spools are evidence, never load-bearing state, so
        every repair is safe: a torn tail (worker died mid-append) is
        truncated with the fragment quarantined, and a spool with
        unparseable *interior* lines is quarantined whole — the
        aggregator must never fold half-trusted records."""
        tdir = spool_dir(self.queue.root)
        if not tdir.is_dir():
            return
        for path in sorted(tdir.glob("*.jsonl")):
            self.checked["telemetry_spools"] += 1
            try:
                fd = os.open(path, os.O_RDONLY)
            except OSError:
                continue
            try:
                torn = Journal.torn_tail_bytes(fd)
            finally:
                os.close(fd)
            if torn:
                finding = self._found(
                    "telemetry-torn-tail",
                    f"spool ends mid-line ({torn} torn bytes — the "
                    "worker died mid-append)",
                    path=self._rel(path), repairable=True,
                    repair="truncate the fragment; quarantine its bytes")
                if self.repair:
                    fragment = Journal(
                        path, durable=self.queue.durable).heal_torn_tail()
                    self._write_quarantine(
                        f"telemetry/{path.name}.tail", fragment)
                    finding.repaired = True
                else:
                    continue  # unread tail would also count as corrupt
            _, problems = read_spool(path)
            if problems["corrupt_lines"]:
                finding = self._found(
                    "telemetry-corrupt",
                    f"{problems['corrupt_lines']} interior line(s) "
                    "unparseable — the spool cannot be trusted",
                    path=self._rel(path), repairable=True,
                    repair="quarantine the spool")
                if self.repair:
                    self._quarantine(path)
                    finding.repaired = True

    # -- plumbing -----------------------------------------------------

    def _found(self, check: str, detail: str, job: str = "",
               path: str = "", repairable: bool = False,
               repair: str = "") -> _Finding:
        finding = _Finding(check=check, detail=detail, job=job,
                           path=path, repairable=repairable,
                           repair=repair)
        self.findings.append(finding)
        get_metrics().counter("service.fsck.violations", check=check).inc()
        return finding

    def _rel(self, path: "pathlib.Path | str") -> str:
        try:
            return str(pathlib.Path(path).relative_to(self.queue.root))
        except ValueError:
            return str(path)

    def _quarantine_target(self, rel: pathlib.PurePath) -> pathlib.Path:
        qdir = self.queue.root / QUARANTINE_DIR / rel.parent
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / rel.name
        n = 0
        while target.exists():
            n += 1
            target = qdir / f"{rel.name}.{n}"
        return target

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move evidence under ``quarantine/`` (sub-tree preserved,
        numeric suffix on collision); never delete."""
        rel = pathlib.PurePath(self._rel(path))
        target = self._quarantine_target(rel)
        shutil.move(str(path), str(target))
        get_metrics().counter("service.fsck.repairs").inc()

    def _write_quarantine(self, name: str, data: bytes) -> None:
        """Quarantine loose bytes (the healed journal fragment)."""
        target = self._quarantine_target(pathlib.PurePath(name))
        target.write_bytes(data)
        get_metrics().counter("service.fsck.repairs").inc()

    def _report(self, root: pathlib.Path) -> dict:
        violations = [f.to_dict() for f in self.findings]
        unrepaired = [v for v in violations if not v["repaired"]]
        return {
            "root": str(root),
            "repair": self.repair,
            "checked": dict(sorted(self.checked.items())),
            "violations": violations,
            "repaired": sum(1 for v in violations if v["repaired"]),
            "unrepaired": len(unrepaired),
            "clean": not violations,
            "ok": not unrepaired,
        }


def verify_service(directory: "str | os.PathLike | None" = None,
                   repair: bool = False,
                   retry: Optional[RetryPolicy] = None,
                   durable: bool = True) -> dict:
    """Verify (and with ``repair=True``, repair) a service directory.

    Returns the fsck report dict; ``report["clean"]`` means no
    violation was found, ``report["ok"]`` means none is *left* —
    ``repro service verify`` maps these to exit codes (0 when ok,
    1 when violations remain).  ``retry`` overrides the re-queue
    budget repairs charge against (the soak passes a generous one so
    injected strandings never exhaust a job).
    """
    queue = JobQueue(directory, retry=retry, create=False,
                     durable=durable)
    report = ServiceFsck(queue=queue, repair=repair).run()
    return report


def report_json(report: dict) -> str:
    """The canonical-JSON rendering ``repro service verify`` prints."""
    return canonical_json(report)
