"""Append-only JSONL journal — the queue's single source of truth.

The service stores queue state the way Balsam's launcher stores job
state in its database: every transition is a *record*, and the current
table is a fold over the record stream.  Here the store is a plain
JSONL file because it gives exactly the two properties the service
needs with zero dependencies:

* **Transactional appends.**  Each record is one canonical JSON line
  written with a single ``os.write`` on an ``O_APPEND`` descriptor —
  the POSIX guarantee for append-mode writes means concurrent workers
  never interleave bytes within a line.
* **Crash evidence, not crash loss.**  A worker killed mid-append
  leaves at most one truncated *final* line, which :meth:`records`
  skips; everything before it is intact.  Corruption anywhere earlier
  is a real integrity failure and raises
  :class:`~repro.errors.JournalCorruptionError`.

Records are canonical JSON (sorted keys, fixed separators) so the
journal bytes are a deterministic function of the transition sequence
— ``repro analyze lint`` holds this module to the same DET rules as
the exporters.
"""

from __future__ import annotations

import json
import os
import pathlib

from ..errors import JournalCorruptionError
from ..obs.export import canonical_json

__all__ = ["Journal"]


class Journal:
    """One append-only JSONL file of state-transition records."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)

    def append(self, record: dict) -> None:
        """Durably append one record (a JSON-able dict) as a single
        canonical line.  One ``os.write`` per record: concurrent
        appenders can interleave *lines*, never bytes."""
        data = (canonical_json(record) + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                     0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def records(self) -> list[dict]:
        """Every intact record, in append order.

        A missing file is an empty journal.  An unparseable *final*
        line is a crash-truncated append and is skipped; an
        unparseable earlier line raises
        :class:`~repro.errors.JournalCorruptionError`.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        out: list[dict] = []
        lines = text.split("\n")
        for i, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if i == len(lines) - 1:
                    break  # torn final append: tolerated, not trusted
                raise JournalCorruptionError(
                    f"{self.path}:{i + 1}: unparseable journal line "
                    f"({exc})") from exc
            if not isinstance(record, dict):
                if i == len(lines) - 1:
                    break
                raise JournalCorruptionError(
                    f"{self.path}:{i + 1}: journal line is "
                    f"{type(record).__name__}, expected object")
            out.append(record)
        return out

    def __len__(self) -> int:
        return len(self.records())
