"""Append-only JSONL journal — the queue's single source of truth.

The service stores queue state the way Balsam's launcher stores job
state in its database: every transition is a *record*, and the current
table is a fold over the record stream.  Here the store is a plain
JSONL file because it gives exactly the two properties the service
needs with zero dependencies:

* **Transactional appends.**  Each record is one canonical JSON line
  written with a single ``os.write`` on an ``O_APPEND`` descriptor —
  the POSIX guarantee for append-mode writes means concurrent workers
  never interleave bytes within a line.
* **Crash evidence, not crash loss.**  A worker killed mid-append
  leaves at most one truncated *final* line, which :meth:`records`
  skips; everything before it is intact.  Corruption anywhere earlier
  is a real integrity failure and raises
  :class:`~repro.errors.JournalCorruptionError`.

Records are canonical JSON (sorted keys, fixed separators) so the
journal bytes are a deterministic function of the transition sequence
— ``repro analyze lint`` holds this module to the same DET rules as
the exporters.
"""

from __future__ import annotations

import json
import os
import pathlib

from ..chaos.hooks import get_chaos
from ..errors import JournalCorruptionError
from ..obs.export import canonical_json

__all__ = ["Journal"]


class Journal:
    """One append-only JSONL file of state-transition records.

    ``durable=True`` (the service default) fsyncs every append before
    returning, so an acknowledged record survives ``kill -9`` and power
    loss — the durability contract a queue's source of truth owes its
    submitters.  Tests and throwaway replays may pass ``durable=False``
    to skip the sync.
    """

    def __init__(self, path: str | os.PathLike,
                 durable: bool = True) -> None:
        self.path = pathlib.Path(path)
        self.durable = durable

    def append(self, record: dict) -> None:
        """Durably append one record (a JSON-able dict) as a single
        canonical line.  One ``os.write`` per record: concurrent
        appenders can interleave *lines*, never bytes.

        Refuses (:class:`~repro.errors.JournalCorruptionError`) when
        the file ends mid-line: appending after a torn tail would glue
        the new record onto the crash fragment and turn tolerated tail
        damage into *interior* corruption.  ``repro service verify
        --repair`` heals the tail; then appends flow again.
        """
        data = (canonical_json(record) + "\n").encode("utf-8")
        # O_RDWR, not O_WRONLY: the torn-tail guard preads the final
        # byte through the same descriptor.  O_APPEND still pins every
        # write to the (current) end of file.
        fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_RDWR,
                     0o644)
        try:
            if self.torn_tail_bytes(fd) > 0:
                raise JournalCorruptionError(
                    f"{self.path}: torn final line (crash evidence); "
                    "appending would corrupt it further — run "
                    "'repro service verify --repair' first")
            cz = get_chaos()
            if cz is None:
                os.write(fd, data)
            else:
                cz.write(fd, data, "journal.append")
            if self.durable:
                os.fsync(fd)
        finally:
            os.close(fd)

    @staticmethod
    def torn_tail_bytes(fd: int) -> int:
        """Bytes past the last newline (0 when the tail is healthy).

        A non-empty journal whose final byte is not ``\\n`` carries a
        crash-truncated append; everything after the last newline is
        the torn fragment.  One ``pread`` of the final byte on the
        healthy path — cheap enough to guard every append.
        """
        size = os.fstat(fd).st_size
        if size == 0 or os.pread(fd, 1, size - 1) == b"\n":
            return 0
        # Walk back in chunks to the last newline (torn fragments are
        # at most one record, so this is one read in practice).
        torn = 0
        pos = size
        while pos > 0:
            step = min(4096, pos)
            chunk = os.pread(fd, step, pos - step)
            cut = chunk.rfind(b"\n")
            if cut >= 0:
                return torn + (len(chunk) - cut - 1)
            torn += len(chunk)
            pos -= step
        return torn

    def heal_torn_tail(self) -> bytes:
        """Truncate a torn final line off, returning the removed bytes
        (``b""`` when the tail was already healthy).  The fragment was
        never acknowledged — dropping it is the one safe repair — but
        callers (fsck) quarantine the returned bytes for post-mortems.
        Only safe while no appender is live."""
        try:
            fd = os.open(self.path, os.O_RDWR)
        except OSError:
            return b""
        try:
            torn = self.torn_tail_bytes(fd)
            if torn == 0:
                return b""
            size = os.fstat(fd).st_size
            fragment = os.pread(fd, torn, size - torn)
            os.ftruncate(fd, size - torn)
            if self.durable:
                os.fsync(fd)
            return fragment
        finally:
            os.close(fd)

    def records(self) -> list[dict]:
        """Every intact record, in append order.

        A missing file is an empty journal.  An unparseable *final*
        line is a crash-truncated append and is skipped; an
        unparseable earlier line raises
        :class:`~repro.errors.JournalCorruptionError`.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        out: list[dict] = []
        lines = text.split("\n")
        for i, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if i == len(lines) - 1:
                    break  # torn final append: tolerated, not trusted
                raise JournalCorruptionError(
                    f"{self.path}:{i + 1}: unparseable journal line "
                    f"({exc})") from exc
            if not isinstance(record, dict):
                if i == len(lines) - 1:
                    break
                raise JournalCorruptionError(
                    f"{self.path}:{i + 1}: journal line is "
                    f"{type(record).__name__}, expected object")
            out.append(record)
        return out

    def __len__(self) -> int:
        return len(self.records())
