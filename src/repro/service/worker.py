"""The worker: claim → execute through the shared engine → publish.

One worker is one poll loop over the :class:`~repro.service.queue.
JobQueue`.  Everything that *runs* goes through the same
:class:`~repro.engine.ExecutionEngine` the one-shot CLI uses, with the
queue's ``cache/`` directory as the shared content-addressed result
tier — so a cell computed by any worker (or by a previous ``repro
experiment``) is a cache replay for every other, and artifacts are
byte-identical regardless of which worker, or how many, produced them.

Crash tolerance, clock-free:

* While executing, a daemon thread bumps the claim file's heartbeat
  *counter* (:meth:`JobQueue.heartbeat`).
* While idle, a worker observes other claims; one whose ``(attempt,
  heartbeat)`` signature fails to change across ``lease_ticks`` of
  its own poll cycles is declared dead and its lease broken
  (:meth:`JobQueue.break_lease` — exactly one breaker wins).
* A worker that loses its own lease mid-run (it was presumed dead but
  was merely slow) discards the attempt without publishing; the
  re-claimant owns the job.  Publication itself is an atomic directory
  rename, and results are deterministic, so even a double execution
  converges on identical bytes.

Lost work is accounted in the ``service.attempts_lost`` /
``service.work_discarded`` counters — the queue-level analogue of the
batch scheduler's goodput metrics.
"""

from __future__ import annotations

import os
import pathlib
import shutil
import threading
import time
from typing import Optional

from ..chaos.hooks import get_chaos
from ..engine import ExecutionEngine
from ..errors import ClaimConflict, CrashInjected, ReproError
from ..obs.export import canonical_json
from ..obs.metrics import get_metrics
from ..obs.spool import TelemetrySpool, spool_dir
from ..obs.tracer import tracing
from ..perf.cache import RunCache, result_to_dict
from .jobs import JobSpec
from .queue import TERMINAL, JobQueue

__all__ = ["Worker"]


def _fsync_dir(directory: pathlib.Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss
    (rename atomicity covers crashes, not the directory page still in
    the page cache).  Filesystems that refuse directory fds are
    tolerated — the rename is still crash-atomic there."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class Worker:
    """One claim-execute-publish loop against a job queue.

    ``drain=True`` exits once every job is terminal and no claim is
    live (the batch shape: ``repro serve --drain``); otherwise the
    loop polls forever (the service shape).  ``max_polls`` bounds idle
    polls for tests.
    """

    def __init__(self, queue: JobQueue, worker_id: str = "",
                 poll_interval: float = 0.1, lease_ticks: int = 50,
                 drain: bool = False, max_polls: Optional[int] = None,
                 use_cache: bool = True, telemetry: bool = False) -> None:
        self.queue = queue
        self.worker_id = worker_id or f"w{os.getpid()}"
        self.poll_interval = max(0.0, float(poll_interval))
        self.lease_ticks = max(1, int(lease_ticks))
        self.drain = drain
        self.max_polls = max_polls
        self._cache = RunCache(queue.cache_dir) if use_cache else None
        #: The flight recorder (``--telemetry``): lifecycle events,
        #: trace segments and counter snapshots spooled durably to
        #: ``telemetry/<worker-id>.jsonl``.  Off by default — the
        #: telemetry-less paths stay byte-identical.
        self.spool = TelemetrySpool(
            spool_dir(queue.root) / f"{self.worker_id}.jsonl",
            source=self.worker_id,
            durable=queue.durable) if telemetry else None
        #: job id -> [(attempt, heartbeat) signature, stalled polls]
        self._observations: dict[str, list] = {}
        #: Run summary (also the :meth:`run` return value).
        self.executed = 0
        self.failed = 0
        self.leases_broken = 0
        self.discarded = 0

    # -- the loop -----------------------------------------------------

    def run(self) -> dict:
        """Poll until drained (``drain=True``), ``max_polls`` idle
        polls elapse, or forever.  Returns the summary dict.

        With telemetry on, the queue's lifecycle transitions spool
        through this worker while the loop runs, and a clean exit
        appends a final counter snapshot plus ``worker.exit``.  A
        crash mid-loop appends nothing further — the spool then reads
        exactly like the flight recorder of a process that died, which
        is the point.
        """
        if self.spool is not None:
            self.queue.telemetry = self.spool
            self.spool.event("worker.start", worker=self.worker_id,
                             lease_ticks=self.lease_ticks)
        try:
            summary = self._poll_loop()
        finally:
            if self.queue.telemetry is self.spool:
                self.queue.telemetry = None
        if self.spool is not None:
            self.spool.metrics({"depth": self.queue.depth(),
                                **{k: v for k, v in summary.items()
                                   if k != "worker"}})
            self.spool.event("worker.exit", worker=self.worker_id)
        return summary

    def _poll_loop(self) -> dict:
        idle_polls = 0
        while True:
            claimed = self.queue.claim_next(self.worker_id)
            if claimed is not None:
                job_id, jobspec, attempt = claimed
                self._backoff(attempt)
                self._execute(job_id, jobspec, attempt)
                idle_polls = 0
                continue
            get_metrics().gauge("service.queue_depth").set(
                self.queue.depth())
            if self._reap():
                continue
            if self.drain and self.queue.drained():
                break
            idle_polls += 1
            if self.max_polls is not None and idle_polls >= self.max_polls:
                break
            time.sleep(self.poll_interval)
        return self.summary()

    def summary(self) -> dict:
        return {
            "worker": self.worker_id,
            "executed": self.executed,
            "failed": self.failed,
            "leases_broken": self.leases_broken,
            "discarded": self.discarded,
        }

    def _backoff(self, attempt: int) -> None:
        """Honour the queue's RetryPolicy backoff before re-running a
        previously failed attempt (no-op at the 0-base default)."""
        if attempt > 0:
            delay = self.queue.retry.delay(attempt)
            if delay > 0:
                time.sleep(delay)

    # -- execution ----------------------------------------------------

    def _execute(self, job_id: str, jobspec: JobSpec,
                 attempt: int) -> None:
        self.queue.mark_running(job_id, self.worker_id, attempt)
        stop = threading.Event()
        lost = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(job_id, stop, lost),
            name=f"heartbeat-{self.worker_id}", daemon=True)
        beat.start()
        workdir = self.queue.results_dir / \
            f"{job_id}.tmp-{self.worker_id}-{attempt}"
        try:
            try:
                self._traced_run(job_id, jobspec, workdir)
            except ReproError as exc:
                stop.set()
                beat.join()
                shutil.rmtree(workdir, ignore_errors=True)
                if lost.is_set():
                    self._account_lost()
                    return
                self.failed += 1
                self.queue.fail_attempt(
                    job_id, self.worker_id, attempt,
                    error=f"{type(exc).__name__}: {exc}")
                return
            stop.set()
            beat.join()
            if lost.is_set():
                # Presumed dead, actually slow: the re-claimant owns
                # the job now.  Discard rather than double-publish.
                shutil.rmtree(workdir, ignore_errors=True)
                self._account_lost()
                return
            self._publish(job_id, workdir)
            self.executed += 1
            self.queue.complete(job_id, self.worker_id, attempt)
        finally:
            # Every exit path — engine failure, publish loser discard,
            # KeyboardInterrupt, injected crash — stops and joins the
            # heartbeat daemon: no thread outlives run().  (A real
            # kill -9 needs no join; in-process crashes must not leak
            # a beater that keeps a dead attempt's lease alive.)
            stop.set()
            beat.join()

    def _heartbeat_loop(self, job_id: str, stop: threading.Event,
                        lost: threading.Event) -> None:
        interval = self.poll_interval / 2 if self.poll_interval else 0.01
        while not stop.wait(interval):
            try:
                self.queue.heartbeat(job_id, self.worker_id)
            except ClaimConflict:
                lost.set()
                return
            except CrashInjected:
                # In-process stand-in for dying mid-heartbeat: this
                # beater stops for good, the counter stalls, and the
                # fleet's lease machinery takes it from there.
                return

    def _traced_run(self, job_id: str, jobspec: JobSpec,
                    workdir: pathlib.Path) -> None:
        """Execute the job; with telemetry on, under a job-scoped
        tracer whose per-layer summary is spooled as a trace segment
        (results are identical either way — the tracer only observes)."""
        if self.spool is None:
            self._run_jobspec(jobspec, workdir)
            return
        with tracing() as tracer:
            self._run_jobspec(jobspec, workdir)
        self.spool.segment(job=job_id, layers=tracer.layer_counts(),
                           events=len(tracer), dropped=tracer.dropped)

    def _run_jobspec(self, jobspec: JobSpec,
                     workdir: pathlib.Path) -> None:
        """Execute the submission into ``workdir`` through the shared
        engine.  Experiment jobs produce exactly the ``repro export``
        artifact set; run/sweep jobs produce ``results.json`` keyed by
        the frozen specs."""
        shutil.rmtree(workdir, ignore_errors=True)
        workdir.mkdir(parents=True)
        engine = ExecutionEngine.from_options(cache=self._cache)
        if jobspec.kind == "experiment":
            engine.export_experiments(workdir, ids=[jobspec.experiment],
                                      fast=jobspec.fast, seed=jobspec.seed)
            return
        results = engine.run_specs(jobspec.specs)
        payload = {
            "jobspec": jobspec.to_dict(),
            "results": [result_to_dict(r) for r in results],
        }
        (workdir / "results.json").write_text(
            canonical_json(payload) + "\n")

    def _publish(self, job_id: str, workdir: pathlib.Path) -> None:
        """Atomically rename the work directory into place.  A loser
        of a double execution (the target already exists) discards its
        copy — determinism makes both byte-identical anyway."""
        final = self.queue.result_dir(job_id)
        cz = get_chaos()
        if cz is not None:
            # Dying here leaves a stray ``*.tmp-*`` workdir and a
            # still-CLAIMED job: the lease reaper re-queues it, fsck
            # quarantines the debris.
            cz.on("worker.publish.pre_rename")
        try:
            os.rename(workdir, final)
        except OSError:
            shutil.rmtree(workdir, ignore_errors=True)
            return
        if self.queue.durable:
            _fsync_dir(self.queue.results_dir)
        if cz is not None:
            # Dying here leaves a published result whose "done" record
            # never hit the journal — the one crash window fsck can
            # repair by appending the record (the rename was atomic,
            # so the result directory is complete by construction).
            cz.on("worker.publish.post_rename")

    def _account_lost(self) -> None:
        self.discarded += 1
        get_metrics().counter("service.work_discarded").inc()

    # -- lease reaping ------------------------------------------------

    def _reap(self) -> bool:
        """Observe other workers' claims; break any lease whose
        heartbeat signature has not advanced for ``lease_ticks`` of
        our own polls.  Returns True when a lease was broken (the
        caller re-polls immediately — the job is claimable now)."""
        table = self.queue.table()
        claims = self.queue.active_claims()
        broke = False
        for job_id in sorted(claims):
            view = table.get(job_id)
            if view is not None and view.state in TERMINAL:
                self._observations.pop(job_id, None)
                continue
            payload = claims[job_id]
            if payload.get("worker") == self.worker_id:
                # Never reap our own claim (only live between claim
                # and completion inside this same thread anyway).
                continue
            signature = (payload.get("attempt"), payload.get("heartbeat"))
            seen = self._observations.get(job_id)
            if seen is None or seen[0] != signature:
                self._observations[job_id] = [signature, 0]
                continue
            seen[1] += 1
            if seen[1] >= self.lease_ticks:
                self._observations.pop(job_id, None)
                if self.queue.break_lease(job_id, breaker=self.worker_id):
                    self.leases_broken += 1
                    broke = True
        for job_id in [j for j in sorted(self._observations)
                       if j not in claims]:
            self._observations.pop(job_id, None)
        return broke
