"""Deterministic, hierarchically-seeded random number streams.

Every stochastic component of the simulator draws from its own named
stream so that (a) runs are reproducible given a root seed and (b) adding
or removing one component does not perturb the draws of any other — a
standard requirement for variance-reduced A/B comparisons of system
configurations (here: Linux vs. McKernel on identical "nodes").

Streams are derived with :class:`numpy.random.SeedSequence` using the
stable 64-bit FNV-1a hash of the stream name, so a stream's draws depend
only on ``(root_seed, name)``.
"""

from __future__ import annotations

import numpy as np

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(name: str) -> int:
    """Stable 64-bit FNV-1a hash of a string (Python's ``hash`` is salted
    per process and therefore unusable for reproducible seeding)."""
    h = _FNV_OFFSET
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    >>> reg = RngRegistry(seed=42)
    >>> a = reg.stream("noise/daemon")
    >>> b = reg.stream("noise/kworker")

    The same name always returns the *same generator object* within one
    registry, so sequential draws continue rather than restart.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence([self.seed, fnv1a_64(name)])
            gen = np.random.Generator(np.random.PCG64(ss))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` seeded from scratch,
        discarding any accumulated state.  Useful for re-running one
        component with identical draws."""
        ss = np.random.SeedSequence([self.seed, fnv1a_64(name)])
        gen = np.random.Generator(np.random.PCG64(ss))
        self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulated node) whose
        streams are independent of the parent's."""
        return RngRegistry(seed=(self.seed * _FNV_PRIME + fnv1a_64(name)) & _MASK64)
