"""Discrete-event simulation engine.

A deliberately small, dependency-free DES core in the style of SimPy:
*processes* are Python generators that ``yield`` requests to the engine
(currently: time delays and event waits), and the engine advances a
virtual clock through a binary-heap event queue.

The engine is used for node-level simulation — kernel task scheduling,
system-call delegation over IKC, proxy-process interactions — where
causal ordering matters.  Large-scale statistics (Figure 4 at 158k nodes)
are produced by the vectorized samplers in :mod:`repro.noise.sampler`
instead, per the scale strategy in DESIGN.md.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError

#: Type of the generators the engine runs.
ProcessGen = Generator[Any, Any, Any]


class Event:
    """A one-shot event that processes may wait on.

    Succeeding an event resumes all waiting processes at the current
    simulation time, passing them ``value``.
    """

    __slots__ = ("engine", "name", "_value", "_done", "_waiters", "callbacks")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._done = False
        self._waiters: list["Process"] = []
        #: Plain callables invoked (with the value) when the event fires.
        self.callbacks: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"event {self.name!r} has not fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._done = True
        self._value = value
        for cb in self.callbacks:
            cb(value)
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine._schedule(self.engine.now, proc, value)


class Timeout:
    """Yieldable: suspend the issuing process for ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay


class Process:
    """A running generator plus bookkeeping.

    A process is itself waitable: other processes may ``yield proc.done``
    to join on its completion; ``done.value`` is the generator's return
    value.
    """

    __slots__ = ("engine", "gen", "name", "done", "alive")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str) -> None:
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = Event(engine, name=f"{name}.done")
        self.alive = True

    def _step(self, send_value: Any) -> None:
        if not self.alive:
            return
        try:
            request = self.gen.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self.done.succeed(stop.value)
            return
        if isinstance(request, Timeout):
            self.engine._schedule(self.engine.now + request.delay, self, None)
        elif isinstance(request, Event):
            if request.triggered:
                self.engine._schedule(self.engine.now, self, request.value)
            else:
                request._waiters.append(self)
        elif isinstance(request, Process):
            # Sugar: yielding a process waits on its completion event.
            if request.done.triggered:
                self.engine._schedule(self.engine.now, self, request.done.value)
            else:
                request.done._waiters.append(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request "
                f"{type(request).__name__}"
            )

    def interrupt(self) -> None:
        """Kill the process; it never resumes and its done event fires
        with ``None`` (if not already finished)."""
        if self.alive:
            self.alive = False
            self.gen.close()
            if not self.done.triggered:
                self.done.succeed(None)


class Resource:
    """A counted resource (semaphore) for DES processes.

    Models serialisation points like a device-driver lock: processes
    ``yield resource.acquire()`` and call :meth:`release` when done;
    waiters are served FIFO.  Used e.g. to express the Tofu driver's
    per-node registration lock that concurrent ranks contend on.
    """

    def __init__(self, engine: "Engine", capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        # FIFO grant queue; deque gives O(1) popleft where a list's
        # pop(0) is O(n) per grant under contention.
        self._waiters: deque[Event] = deque()
        #: Peak queue length observed (contention metric).
        self.max_queue = 0

    def acquire(self) -> Event:
        """Returns an event that fires when the resource is granted."""
        ev = self.engine.event(name=f"{self.name}.grant")
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
            self.max_queue = max(self.max_queue, len(self._waiters))
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            ev = self._waiters.popleft()
            ev.succeed(self)  # hand over directly; in_use unchanged
        else:
            self.in_use -= 1

    @property
    def queued(self) -> int:
        return len(self._waiters)


class Engine:
    """The event loop.  Create one per simulated node (or per scenario)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Process, Any]] = []
        self._counter = itertools.count()
        self._nprocs = 0

    # -- public API ---------------------------------------------------

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        proc = Process(self, gen, name or f"proc-{self._nprocs}")
        self._nprocs += 1
        self._schedule(self.now, proc, None)
        return proc

    def timeout(self, delay: float) -> Timeout:
        """Create a delay request for ``yield``."""
        return Timeout(delay)

    def event(self, name: str = "") -> Event:
        """Create a fresh waitable event."""
        return Event(self, name)

    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        """Create a counted resource (semaphore)."""
        return Resource(self, capacity, name)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulation time.  With ``until`` set, the clock
        is advanced exactly to ``until`` even if the last event fires
        earlier (matching SimPy semantics that make fixed-horizon runs
        comparable).
        """
        while self._queue:
            at, _, proc, value = self._queue[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._queue)
            self.now = at
            proc._step(value)
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled resume, or None if queue is empty."""
        return self._queue[0][0] if self._queue else None

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that fires once all ``events`` have fired (list of values)."""
        events = list(events)
        combined = self.event(name="all_of")
        remaining = len(events)
        if remaining == 0:
            combined.succeed([])
            return combined
        results: list[Any] = [None] * remaining

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                nonlocal remaining
                results[i] = value
                remaining -= 1
                if remaining == 0:
                    combined.succeed(results)

            return cb

        for i, ev in enumerate(events):
            if ev.triggered:
                make_cb(i)(ev.value)
            else:
                ev.callbacks.append(make_cb(i))
        return combined

    # -- internals ------------------------------------------------------

    def _schedule(self, at: float, proc: Process, value: Any) -> None:
        if at < self.now - 1e-15:
            raise SimulationError(
                f"attempt to schedule in the past ({at} < {self.now})"
            )
        heapq.heappush(self._queue, (at, next(self._counter), proc, value))
