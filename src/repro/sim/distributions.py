"""Duration / interval distributions used by noise sources and cost models.

Each distribution is a small immutable object with:

* ``sample(rng, size)`` — vectorized draw returning an ``ndarray``;
* ``mean`` — analytic mean (used by the closed-form noise models);
* ``upper`` — the finite upper bound (used for "max noise length");
* ``survival(x)`` — P(X > x), vectorized, exact — this is what lets the
  Figure 4 tail be computed at full-machine sample counts (~4e11) where
  Monte Carlo cannot reach;
* ``quantile(q)`` — inverse CDF, vectorized — used to draw the *maximum*
  of m iid copies as ``quantile(u ** (1/m))`` without materialising m
  draws (the BSP barrier-delay sampler).

Only distributions actually needed by the paper's noise catalogue are
implemented; all are bounded because OS noise events have physical upper
bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
# ndtri/ndtr are the raw ufuncs behind scipy.stats.norm.ppf/sf; calling
# them directly skips the rv_continuous argument plumbing (argsreduce,
# broadcasting, masking) that dominates small-array ppf calls on the
# Monte-Carlo hot path.  For arguments already inside the open unit
# interval the results are bit-identical to the norm frontend.
from scipy.special import ndtr, ndtri


class Distribution:
    """Base class; see module docstring for the contract."""

    mean: float
    upper: float

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        raise NotImplementedError

    def survival(self, x: np.ndarray | float) -> np.ndarray:
        raise NotImplementedError

    def quantile(self, q: np.ndarray | float) -> np.ndarray:
        raise NotImplementedError

    def sample_one(self, rng: np.random.Generator) -> float:
        return float(self.sample(rng, 1)[0])

    def sample_max(self, rng: np.random.Generator,
                   counts: np.ndarray) -> np.ndarray:
        """Vectorized draw of max(X_1..X_m) for each m in ``counts``
        (entries with m == 0 yield 0.0), via the inverse-CDF identity
        ``max of m iid ~ F^{-1}(U^{1/m})``."""
        counts = np.asarray(counts)
        out = np.zeros(counts.shape, dtype=float)
        pos = counts > 0
        if np.any(pos):
            u = rng.uniform(0.0, 1.0, int(pos.sum()))
            out[pos] = self.quantile(u ** (1.0 / counts[pos]))
        return out


def _as_array(x) -> np.ndarray:
    return np.asarray(x, dtype=float)


@dataclass(frozen=True)
class Fixed(Distribution):
    """Degenerate distribution: every draw equals ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"Fixed value must be >= 0, got {self.value}")

    @property
    def mean(self) -> float:  # type: ignore[override]
        return self.value

    @property
    def upper(self) -> float:  # type: ignore[override]
        return self.value

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value)

    def survival(self, x) -> np.ndarray:
        return np.where(_as_array(x) < self.value, 1.0, 0.0)

    def quantile(self, q) -> np.ndarray:
        return np.full(_as_array(q).shape, self.value)


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ValueError(f"need 0 <= lo <= hi, got [{self.lo}, {self.hi}]")

    @property
    def mean(self) -> float:  # type: ignore[override]
        return 0.5 * (self.lo + self.hi)

    @property
    def upper(self) -> float:  # type: ignore[override]
        return self.hi

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.lo, self.hi, size)

    def survival(self, x) -> np.ndarray:
        x = _as_array(x)
        if self.hi == self.lo:
            return np.where(x < self.lo, 1.0, 0.0)
        return np.clip((self.hi - x) / (self.hi - self.lo), 0.0, 1.0)

    def quantile(self, q) -> np.ndarray:
        return self.lo + _as_array(q) * (self.hi - self.lo)


@dataclass(frozen=True)
class TruncatedExponential(Distribution):
    """Exponential with mean ``scale`` clipped at ``cap``.

    Models bursty kernel-task durations: most events are short, the tail
    is bounded by the longest burst the paper observed for that source.
    Clipping (rather than rejection) puts an atom at ``cap``, matching
    how "max noise length" is reported: the cap IS the observed maximum.
    """

    scale: float
    cap: float

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.cap <= 0:
            raise ValueError("scale and cap must be > 0")

    @property
    def mean(self) -> float:  # type: ignore[override]
        # E[min(X, cap)] for X ~ Exp(scale) = scale * (1 - exp(-cap/scale))
        return self.scale * (1.0 - np.exp(-self.cap / self.scale))

    @property
    def upper(self) -> float:  # type: ignore[override]
        return self.cap

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.minimum(rng.exponential(self.scale, size), self.cap)

    def survival(self, x) -> np.ndarray:
        x = _as_array(x)
        return np.where(x < self.cap, np.exp(-np.maximum(x, 0.0) / self.scale), 0.0)

    def quantile(self, q) -> np.ndarray:
        q = np.clip(_as_array(q), 0.0, 1.0 - 1e-16)
        return np.minimum(-self.scale * np.log1p(-q), self.cap)


@dataclass(frozen=True)
class LogNormalCapped(Distribution):
    """Log-normal (by median and sigma of the log) clipped at ``cap``.

    Used for daemon wake-up bursts whose durations span orders of
    magnitude (scheduler latency vs. a full housekeeping pass).
    """

    median: float
    sigma: float
    cap: float

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0 or self.cap <= 0:
            raise ValueError("median, cap must be > 0 and sigma >= 0")

    @property
    def mean(self) -> float:  # type: ignore[override]
        # Clipped mean has no neat closed form; deterministic quadrature
        # over the quantile function is accurate and cheap.
        q = (np.arange(1, 4097) - 0.5) / 4096
        x = self.median * np.exp(self.sigma * ndtri(q))
        return float(np.minimum(x, self.cap).mean())

    @property
    def upper(self) -> float:  # type: ignore[override]
        return self.cap

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        draws = self.median * np.exp(self.sigma * rng.standard_normal(size))
        return np.minimum(draws, self.cap)

    def survival(self, x) -> np.ndarray:
        x = _as_array(x)
        with np.errstate(divide="ignore"):
            z = np.where(x > 0, np.log(np.maximum(x, 1e-300) / self.median), -np.inf)
        if self.sigma == 0:
            base = np.where(x < self.median, 1.0, 0.0)
        else:
            base = ndtr(-(z / self.sigma))
        return np.where(x < self.cap, base, 0.0)

    def quantile(self, q) -> np.ndarray:
        q = np.clip(_as_array(q), 1e-16, 1.0 - 1e-16)
        if self.sigma == 0:
            raw = np.full(q.shape, self.median)
        else:
            raw = self.median * np.exp(self.sigma * ndtri(q))
        return np.minimum(raw, self.cap)


@dataclass(frozen=True)
class Pareto(Distribution):
    """Bounded Pareto on ``[lo, hi]`` with tail index ``alpha``.

    Heavy-tailed but bounded; used for the OFP "moderately tuned"
    environment where occasional very long interruptions were observed
    (up to ~24 ms against a 6.5 ms quantum, Fig. 4a).
    """

    lo: float
    hi: float
    alpha: float

    def __post_init__(self) -> None:
        if not 0 < self.lo < self.hi:
            raise ValueError("need 0 < lo < hi")
        if self.alpha <= 0:
            raise ValueError("alpha must be > 0")

    @property
    def mean(self) -> float:  # type: ignore[override]
        a, l, h = self.alpha, self.lo, self.hi
        if abs(a - 1.0) < 1e-12:
            return l * h / (h - l) * np.log(h / l)
        c = l**a / (1.0 - (l / h) ** a)
        return c * a / (a - 1.0) * (l ** (1.0 - a) - h ** (1.0 - a))

    @property
    def upper(self) -> float:  # type: ignore[override]
        return self.hi

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.quantile(rng.uniform(0.0, 1.0, size))

    def survival(self, x) -> np.ndarray:
        x = _as_array(x)
        a, l, h = self.alpha, self.lo, self.hi
        denom = 1.0 - (l / h) ** a
        xs = np.clip(x, l, h)
        sf = ((l / xs) ** a - (l / h) ** a) / denom
        return np.where(x < l, 1.0, np.where(x >= h, 0.0, sf))

    def quantile(self, q) -> np.ndarray:
        q = np.clip(_as_array(q), 0.0, 1.0 - 1e-16)
        a, l, h = self.alpha, self.lo, self.hi
        # Inverse of F(x) = (1 - (l/x)^a) / (1 - (l/h)^a).
        denom = 1.0 - (l / h) ** a
        return l * (1.0 - q * denom) ** (-1.0 / a)
