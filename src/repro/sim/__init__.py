"""Discrete-event simulation core: engine, RNG streams, distributions."""

from .engine import Engine, Event, Process, Resource, Timeout
from .distributions import (
    Distribution,
    Fixed,
    LogNormalCapped,
    Pareto,
    TruncatedExponential,
    Uniform,
)
from .rng import RngRegistry, fnv1a_64

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Resource",
    "Timeout",
    "Distribution",
    "Fixed",
    "Uniform",
    "TruncatedExponential",
    "LogNormalCapped",
    "Pareto",
    "RngRegistry",
    "fnv1a_64",
]
