"""Discrete-event simulation of a bulk-synchronous job under noise.

This is the *independent validation path* for the statistical model:
instead of computing barrier delays from order statistics
(:class:`~repro.noise.sampler.BarrierDelaySampler`), it actually runs
rank processes on the DES engine — each thread executes compute quanta
on a core whose noise timeline steals CPU, and ranks meet at an MPI
barrier.  The max-over-threads amplification *emerges* from the
simulation rather than being assumed, so agreement between the two
paths (asserted in tests and demonstrated in the validation experiment)
is evidence the closed-form model is right.

Scale limits: the DES walks every (thread x iteration) pair, so it is
meant for node counts up to O(10^2) threads — the statistical samplers
take over beyond that, which is exactly the division of labour DESIGN.md
describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..net.mpi import Communicator
from ..noise.source import NoiseSource
from ..sim.engine import Engine


class NoisyCore:
    """One CPU core with a pre-drawn noise timeline.

    :meth:`work_duration` converts a requested amount of CPU work into
    the wall-clock time it takes starting at ``t``, charging every noise
    event that lands in the window (events preempt the thread; their
    duration extends the window, possibly into further events).
    """

    def __init__(self, sources: Sequence[NoiseSource], horizon: float,
                 rng: np.random.Generator) -> None:
        starts: list[np.ndarray] = []
        durs: list[np.ndarray] = []
        for src in sources:
            s, d = src.sample_events(horizon, rng)
            starts.append(s)
            durs.append(d)
        if starts:
            all_starts = np.concatenate(starts)
            order = np.argsort(all_starts)
            self._starts = all_starts[order]
            self._durs = np.concatenate(durs)[order]
        else:
            self._starts = np.empty(0)
            self._durs = np.empty(0)
        self.stolen_total = float(self._durs.sum())
        self._cursor = 0  # monotone consumption (threads move forward)

    #: Events charged per vectorized chunk; most windows hit only a few
    #: events, so chunks keep the common case to one small accumulate.
    _CHUNK = 64

    def work_duration(self, t: float, work: float) -> float:
        """Wall time to complete ``work`` seconds of compute from ``t``."""
        if work < 0:
            raise ConfigurationError("work must be non-negative")
        starts, durs = self._starts, self._durs
        n = len(starts)
        # Rewind is illegal: callers advance monotonically per core.
        i = self._cursor
        if i < n and starts[i] < t:
            i += int(np.searchsorted(starts[i:], t, side="left"))
        wall_end = t + work
        # Charge events in chunks.  np.add.accumulate is strictly
        # left-to-right (unlike pairwise np.sum), so seeding it with
        # wall_end reproduces the historical one-event-at-a-time float
        # additions bit for bit: acc[k] is wall_end after charging the
        # first k chunk events, and event k is charged iff it starts
        # before acc[k].
        while i < n and starts[i] < wall_end:
            j = min(n, i + self._CHUNK)
            acc = np.add.accumulate(
                np.concatenate(([wall_end], durs[i:j])))
            stop = starts[i:j] >= acc[:-1]
            if stop.any():
                k = int(np.argmax(stop))
                wall_end = float(acc[k])
                i += k
                break
            wall_end = float(acc[-1])
            i = j
        self._cursor = i
        return wall_end - t


@dataclass
class BspSimResult:
    """Outcome of one DES BSP run."""

    n_threads: int
    n_iterations: int
    sync_interval: float
    total_time: float
    #: Wall time of each sync interval (max over threads + barrier).
    interval_times: np.ndarray

    @property
    def ideal_time(self) -> float:
        return self.n_iterations * self.sync_interval

    @property
    def slowdown(self) -> float:
        """Relative time lost vs the noise-free run."""
        return self.total_time / self.ideal_time - 1.0

    @property
    def mean_interval_delay(self) -> float:
        return float(self.interval_times.mean() - self.sync_interval)


def simulate_bsp(
    sources: Sequence[NoiseSource],
    sync_interval: float,
    n_iterations: int,
    n_threads: int,
    rng: np.random.Generator,
    jitter_starts: bool = False,
) -> BspSimResult:
    """Run an N-thread BSP section on the DES engine.

    Every thread gets its own :class:`NoisyCore` (threads are pinned,
    as on both machines).  Each iteration: compute ``sync_interval``
    seconds of work on the noisy core, then meet at the barrier.
    """
    if sync_interval <= 0 or n_iterations <= 0 or n_threads <= 0:
        raise ConfigurationError("BSP parameters must be positive")
    engine = Engine()
    comm = Communicator(engine, n_threads)
    horizon = 4.0 * n_iterations * sync_interval + 1.0
    cores = [NoisyCore(sources, horizon, rng) for _ in range(n_threads)]
    barrier_times = np.zeros(n_iterations)

    def thread(rank: int):
        core = cores[rank]
        for it in range(n_iterations):
            if jitter_starts and it == 0:
                yield engine.timeout(float(rng.uniform(0, sync_interval)))
            duration = core.work_duration(engine.now, sync_interval)
            yield engine.timeout(duration)
            yield from comm.barrier(rank)
            if rank == 0:
                barrier_times[it] = engine.now

    for r in range(n_threads):
        engine.process(thread(r), name=f"rank{r}")
    engine.run()

    interval_times = np.diff(np.concatenate([[0.0], barrier_times]))
    return BspSimResult(
        n_threads=n_threads,
        n_iterations=n_iterations,
        sync_interval=sync_interval,
        total_time=float(barrier_times[-1]),
        interval_times=interval_times,
    )


def validate_against_sampler(
    sources: Sequence[NoiseSource],
    sync_interval: float,
    n_threads: int,
    n_iterations: int,
    seed: int = 0,
) -> dict:
    """Run both paths — DES simulation and the order-statistic sampler —
    and report their per-interval delays side by side."""
    from ..noise.sampler import BarrierDelaySampler

    des = simulate_bsp(sources, sync_interval, n_iterations, n_threads,
                       np.random.default_rng([seed, 1]))
    sampler = BarrierDelaySampler(sources, sync_interval, n_threads)
    analytic = sampler.sample(n_iterations,
                              np.random.default_rng([seed, 2]))
    return {
        "des_mean_delay": des.mean_interval_delay,
        "sampler_mean_delay": float(analytic.mean()),
        "des_slowdown": des.slowdown,
        "sampler_slowdown": float(analytic.mean()) / sync_interval,
    }
