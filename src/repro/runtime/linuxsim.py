"""Event-driven Linux node simulation: noise that *emerges*.

The third and most structural of the repository's noise paths (after
the closed-form model and the vectorized samplers): kernel actors run
as live processes on the DES engine —

* each system task visible on an application core wakes on its own
  schedule and steals CPU from whatever is running there;
* device IRQ load and the timer tick (when not suppressed by
  ``nohz_full``) do the same;

— while an FWQ measurement thread per core runs fixed work quanta.  No
noise statistics are assumed anywhere in the measurement: the iteration
lengths come out of the event interleaving, and Table 2's metrics can
be computed from them exactly as on real hardware.

Agreement between this path and the vectorized sampler (asserted in
tests) closes the loop: catalogue -> sampler -> experiments is
faithful to an actual interleaved execution of the same actors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..kernel.linux import LinuxKernel
from ..noise.source import NoiseSource, Occurrence
from ..platform.compose import noise_sources
from ..sim.engine import Engine


class SimCore:
    """Steal-time accounting for one simulated CPU core."""

    __slots__ = ("stolen_pending", "stolen_total", "interruptions")

    def __init__(self) -> None:
        self.stolen_pending = 0.0
        self.stolen_total = 0.0
        self.interruptions = 0

    def steal(self, duration: float) -> None:
        """A kernel actor preempts whatever runs here for ``duration``."""
        if duration < 0:
            raise ConfigurationError("stolen time must be non-negative")
        self.stolen_pending += duration
        self.stolen_total += duration
        self.interruptions += 1

    def drain(self) -> float:
        """Collect (and clear) steal time accumulated since last drain."""
        got = self.stolen_pending
        self.stolen_pending = 0.0
        return got


@dataclass
class NodeSimResult:
    """FWQ output of the event-driven node run."""

    quantum: float
    #: (cores, iterations) iteration lengths.
    lengths: np.ndarray
    total_interruptions: int

    def pooled(self) -> np.ndarray:
        return self.lengths.ravel()

    @property
    def noise_rate(self) -> float:
        t = self.pooled()
        t_min = t.min()
        return float(((t - t_min) / t_min).mean())

    @property
    def max_noise_length(self) -> float:
        t = self.pooled()
        return float(t.max() - t.min())


def _noise_actor(engine: Engine, core: SimCore, source: NoiseSource,
                 rng: np.random.Generator):
    """One kernel actor preempting one core, forever."""
    if source.occurrence is Occurrence.PERIODIC:
        yield engine.timeout(float(rng.uniform(0.0, source.interval)))
        while True:
            core.steal(source.duration.sample_one(rng))
            yield engine.timeout(source.interval)
    else:
        while True:
            yield engine.timeout(float(rng.exponential(source.interval)))
            core.steal(source.duration.sample_one(rng))


def _fwq_thread(engine: Engine, core: SimCore, quantum: float,
                n_iterations: int, out: np.ndarray):
    """FWQ: complete ``quantum`` seconds of CPU work per iteration,
    re-waiting for any CPU time stolen while we thought we were done."""
    for i in range(n_iterations):
        start = engine.now
        core.drain()  # steals before our window belong to nobody
        remaining = quantum
        while remaining > 0:
            yield engine.timeout(remaining)
            remaining = core.drain()
        out[i] = engine.now - start


def simulate_linux_node_fwq(
    kernel: LinuxKernel,
    quantum: float = 6.5e-3,
    duration: float = 60.0,
    n_cores: int = 4,
    seed: int = 0,
    include_stragglers: bool = False,
) -> NodeSimResult:
    """Run FWQ on ``n_cores`` application cores of a live-simulated
    Linux node and return the measured iteration lengths."""
    if quantum <= 0 or duration <= 0 or n_cores <= 0:
        raise ConfigurationError("parameters must be positive")
    n_cores = min(n_cores, len(kernel.app_cpu_ids()))
    n_iterations = max(1, int(duration / quantum))
    sources = noise_sources(kernel, include_stragglers=include_stragglers)
    engine = Engine()
    lengths = np.zeros((n_cores, n_iterations))
    cores = [SimCore() for _ in range(n_cores)]
    rng_root = np.random.default_rng(seed)
    for c, core in enumerate(cores):
        for s, source in enumerate(sources):
            engine.process(
                _noise_actor(engine, core, source,
                             np.random.default_rng([seed, c, s])),
                name=f"core{c}/{source.name}",
            )
        engine.process(
            _fwq_thread(engine, core, quantum, n_iterations, lengths[c]),
            name=f"core{c}/fwq",
        )
    # Noise actors are infinite; run until the measurement horizon.
    engine.run(until=duration * 4.0 + 1.0)
    if np.any(lengths == 0.0):
        raise ConfigurationError(
            "simulation horizon too short for the requested iterations"
        )
    return NodeSimResult(
        quantum=quantum,
        lengths=lengths,
        total_interruptions=sum(c.interruptions for c in cores),
    )
