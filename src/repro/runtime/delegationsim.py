"""Syscall-delegation throughput: the multi-kernel's structural limit.

McKernel offloads non-performance-critical syscalls to Linux (§5) — but
Linux only runs on the 2-4 assistant cores, so delegation throughput is
bounded by how fast those cores can service proxy work.  48 application
cores hammering ``write()`` share 2 servers; queueing delay explodes as
offered load approaches capacity.  This is why the design keeps
*performance-sensitive* calls local and why the PicoDriver exists for
the hot device path: the architecture is safe exactly as long as apps
delegate rarely.

The simulation runs N LWK client processes issuing delegated syscalls
as Poisson streams; each call takes the IKC round trip plus Linux-side
service time on one of ``n_servers`` assistant cores (a
:class:`~repro.sim.engine.Resource`).  Output: latency distribution and
server utilisation vs offered load — the saturation curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..sim.engine import Engine
from ..units import us


@dataclass(frozen=True)
class DelegationLoadResult:
    """Measured behaviour at one offered load."""

    offered_rate_hz: float      # delegated calls/s across all clients
    completed: int
    latencies: np.ndarray       # per-call completion latency, seconds
    server_utilisation: float   # busy fraction of the assistant cores

    @property
    def mean_latency(self) -> float:
        return float(self.latencies.mean())

    @property
    def p99_latency(self) -> float:
        return float(np.quantile(self.latencies, 0.99))


def simulate_delegation(
    n_clients: int = 48,
    n_servers: int = 2,
    calls_per_second_per_client: float = 100.0,
    service_time: float = us(4.0),
    ikc_round_trip: float = us(2.6),
    duration: float = 2.0,
    seed: int = 0,
) -> DelegationLoadResult:
    """Run the delegation queueing system for ``duration`` seconds."""
    if n_clients <= 0 or n_servers <= 0:
        raise ConfigurationError("clients and servers must be positive")
    if calls_per_second_per_client <= 0 or duration <= 0:
        raise ConfigurationError("rates and duration must be positive")
    if service_time <= 0 or ikc_round_trip < 0:
        raise ConfigurationError("invalid timing parameters")
    engine = Engine()
    servers = engine.resource(capacity=n_servers, name="assistant-cores")
    rng = np.random.default_rng(seed)
    latencies: list[float] = []
    busy = [0.0]

    def client(idx: int, crng: np.random.Generator):
        while engine.now < duration:
            yield engine.timeout(
                float(crng.exponential(1.0 / calls_per_second_per_client)))
            if engine.now >= duration:
                return
            issued = engine.now
            # Request crosses IKC, queues for an assistant core, is
            # serviced, and the response crosses back.
            yield engine.timeout(ikc_round_trip / 2)
            yield servers.acquire()
            yield engine.timeout(service_time)
            servers.release()
            busy[0] += service_time
            yield engine.timeout(ikc_round_trip / 2)
            latencies.append(engine.now - issued)

    for i in range(n_clients):
        engine.process(client(i, np.random.default_rng([seed, i])),
                       name=f"client{i}")
    engine.run()
    if not latencies:
        raise ConfigurationError("no calls completed; extend the duration")
    return DelegationLoadResult(
        offered_rate_hz=n_clients * calls_per_second_per_client,
        completed=len(latencies),
        latencies=np.array(latencies),
        server_utilisation=busy[0] / (n_servers * duration),
    )


def saturation_sweep(
    rates_per_client: list[float],
    n_clients: int = 48,
    n_servers: int = 2,
    service_time: float = us(4.0),
    duration: float = 2.0,
    seed: int = 0,
) -> list[DelegationLoadResult]:
    """The saturation curve: latency vs offered delegation load."""
    return [
        simulate_delegation(
            n_clients=n_clients, n_servers=n_servers,
            calls_per_second_per_client=rate,
            service_time=service_time, duration=duration, seed=seed,
        )
        for rate in rates_per_client
    ]


def capacity_hz(n_servers: int, service_time: float) -> float:
    """Theoretical delegation capacity of the assistant cores."""
    if n_servers <= 0 or service_time <= 0:
        raise ConfigurationError("invalid capacity parameters")
    return n_servers / service_time
