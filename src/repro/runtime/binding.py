"""NUMA-aware process and thread binding (§4.1.4).

"Fugaku's job scheduler automatically binds MPI processes to specific
NUMA domains depending on the number of ranks per node" — with one rank
per CMG for the canonical 4-rank geometry.  This module computes those
placements for any geometry and validates them against the cgroup
cpuset, mirroring what the TCS runtime / Intel MPI's
I_MPI_PIN_PROCESSOR_EXCLUDE_LIST accomplish on the two machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..hardware.machines import NodeSpec


@dataclass(frozen=True)
class RankBinding:
    """Placement of one MPI rank on a node."""

    rank: int
    cpu_ids: tuple[int, ...]
    numa_group: int

    def __post_init__(self) -> None:
        if not self.cpu_ids:
            raise ConfigurationError("a rank needs at least one CPU")


def bind_ranks(
    node: NodeSpec,
    ranks_per_node: int,
    threads_per_rank: int,
    allowed_cpus: list[int] | None = None,
) -> list[RankBinding]:
    """Compute the default NUMA-aware binding for one node.

    Ranks are distributed round-robin over core groups (CMGs /
    quadrants) and each receives ``threads_per_rank`` consecutive
    logical CPUs from its group, preferring distinct physical cores
    (SMT siblings are used only once a group's cores are exhausted, as
    both runtimes do).
    """
    if ranks_per_node <= 0 or threads_per_rank <= 0:
        raise ConfigurationError("geometry must be positive")
    topo = node.topology
    allowed = (
        set(allowed_cpus) if allowed_cpus is not None
        else set(topo.application_cpu_ids())
    )
    n_groups = topo.n_groups
    # Per-group CPU pools ordered cores-first (SMT index 0 first).
    pools: list[list[int]] = []
    for g in range(n_groups):
        cpus = [c for c in topo.group_cpu_ids(g) if c in allowed]
        cpus.sort(key=lambda cid: (topo.cpu(cid).smt_index,
                                   topo.cpu(cid).core_id))
        pools.append(cpus)

    demand = ranks_per_node * threads_per_rank
    capacity = sum(len(p) for p in pools)
    if demand > capacity:
        raise ConfigurationError(
            f"binding needs {demand} CPUs, only {capacity} allowed"
        )

    bindings: list[RankBinding] = []
    for rank in range(ranks_per_node):
        group = rank % n_groups
        # Walk groups round-robin until one has room.
        for probe in range(n_groups):
            g = (group + probe) % n_groups
            if len(pools[g]) >= threads_per_rank:
                group = g
                break
        else:
            raise ConfigurationError(
                f"no NUMA group has {threads_per_rank} free CPUs for "
                f"rank {rank} (fragmented allowance)"
            )
        cpus = tuple(pools[group][:threads_per_rank])
        pools[group] = pools[group][threads_per_rank:]
        bindings.append(RankBinding(rank=rank, cpu_ids=cpus, numa_group=group))
    return bindings


def validate_disjoint(bindings: list[RankBinding]) -> None:
    """Raise if any CPU is shared between ranks (binding bug)."""
    seen: set[int] = set()
    for b in bindings:
        overlap = seen & set(b.cpu_ids)
        if overlap:
            raise ConfigurationError(
                f"rank {b.rank} shares CPUs {sorted(overlap)}"
            )
        seen |= set(b.cpu_ids)


def numa_locality_fraction(bindings: list[RankBinding],
                           node: NodeSpec) -> float:
    """Fraction of rank threads whose CPUs are local to the rank's NUMA
    group — 1.0 for the default binding; drops if a rank spills."""
    total = 0
    local = 0
    for b in bindings:
        for cid in b.cpu_ids:
            total += 1
            if node.topology.cpu(cid).group_id == b.numa_group:
                local += 1
    return local / total if total else 1.0
