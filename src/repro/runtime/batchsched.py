"""Batch job scheduling: the TCS job-operation layer over the DES.

Both machines run their comparisons through a batch system (§6.4: "we
run the measurements through the batch job system"), and the OS choice
has an *operational* cost the paper notes in §5.1: on OFP "booting
IHK/McKernel entails nothing more than calling a few privileged mode
scripts in the prologue and epilogue of a particular job" — i.e. every
McKernel job pays a per-job boot in its prologue that Linux jobs do
not.  This module implements a FIFO + EASY-backfill scheduler so that
cost (and queueing in general) can be studied:

* jobs declare node count and a user runtime estimate;
* the head of the queue never starves (EASY: a reservation is computed
  for it from running jobs' estimates);
* later jobs may backfill into idle nodes if they cannot delay the
  reservation;
* McKernel jobs add prologue/epilogue time around their payload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from ..sim.engine import Engine, Event
from .job import OsChoice

#: Per-job LWK boot/teardown in the batch prologue/epilogue, seconds.
MCKERNEL_PROLOGUE = 45.0
MCKERNEL_EPILOGUE = 15.0


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


@dataclass
class BatchJob:
    """One submission tracked by the scheduler."""

    name: str
    n_nodes: int
    runtime: float            # actual payload runtime
    estimate: float           # user's estimate (>= runtime not required)
    os_choice: OsChoice = OsChoice.LINUX
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    state: JobState = JobState.QUEUED

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        if self.runtime <= 0 or self.estimate <= 0:
            raise ConfigurationError("runtimes must be positive")

    @property
    def overhead(self) -> float:
        """Prologue + epilogue around the payload."""
        if self.os_choice is OsChoice.MCKERNEL:
            return MCKERNEL_PROLOGUE + MCKERNEL_EPILOGUE
        return 0.0

    @property
    def wall_occupancy(self) -> float:
        return self.runtime + self.overhead

    @property
    def estimated_occupancy(self) -> float:
        return self.estimate + self.overhead

    @property
    def wait_time(self) -> float:
        if self.start_time is None:
            raise ConfigurationError(f"job {self.name} has not started")
        return self.start_time - self.submit_time


class BatchScheduler:
    """FIFO + EASY backfill over one machine's node pool."""

    def __init__(self, engine: Engine, total_nodes: int) -> None:
        if total_nodes <= 0:
            raise ConfigurationError("total_nodes must be positive")
        self.engine = engine
        self.total_nodes = total_nodes
        self.free_nodes = total_nodes
        self.queue: list[BatchJob] = []
        self.running: list[BatchJob] = []
        self.finished: list[BatchJob] = []

    # -- submission --------------------------------------------------------

    def submit(self, job: BatchJob) -> BatchJob:
        if job.n_nodes > self.total_nodes:
            raise ConfigurationError(
                f"job {job.name} wants {job.n_nodes} nodes, machine has "
                f"{self.total_nodes}"
            )
        job.submit_time = self.engine.now
        self.queue.append(job)
        self._schedule()
        return job

    # -- internals -------------------------------------------------------------

    def _start(self, job: BatchJob) -> None:
        self.queue.remove(job)
        self.free_nodes -= job.n_nodes
        job.state = JobState.RUNNING
        job.start_time = self.engine.now
        self.running.append(job)

        def run():
            yield self.engine.timeout(job.wall_occupancy)
            job.state = JobState.DONE
            job.end_time = self.engine.now
            self.running.remove(job)
            self.finished.append(job)
            self.free_nodes += job.n_nodes
            self._schedule()

        self.engine.process(run(), name=f"job/{job.name}")

    def _head_reservation(self) -> tuple[float, int]:
        """(shadow_time, spare_nodes) for the EASY reservation of the
        queue head: the earliest time enough nodes free up (by running
        jobs' estimates), and the nodes idle even then."""
        head = self.queue[0]
        if head.n_nodes <= self.free_nodes:
            return self.engine.now, self.free_nodes - head.n_nodes
        # Sort running jobs by estimated completion.
        events = sorted(
            (r.start_time + r.estimated_occupancy, r.n_nodes)
            for r in self.running
        )
        free = self.free_nodes
        for end_at, nodes in events:
            free += nodes
            if free >= head.n_nodes:
                return end_at, free - head.n_nodes
        raise ConfigurationError(
            "reservation impossible: not enough nodes even when idle"
        )

    def _schedule(self) -> None:
        # Start queue heads FIFO while they fit.
        while self.queue and self.queue[0].n_nodes <= self.free_nodes:
            self._start(self.queue[0])
        if not self.queue:
            return
        # EASY backfill behind the blocked head.
        shadow_time, spare = self._head_reservation()
        for job in list(self.queue[1:]):
            if job.n_nodes > self.free_nodes:
                continue
            ends_by = self.engine.now + job.estimated_occupancy
            fits_before_shadow = ends_by <= shadow_time
            fits_in_spare = job.n_nodes <= spare
            if fits_before_shadow or fits_in_spare:
                if fits_in_spare and not fits_before_shadow:
                    spare -= job.n_nodes
                self._start(job)

    # -- metrics ------------------------------------------------------------------

    def utilization(self, horizon: float) -> float:
        """Node-seconds used / offered over [0, horizon]."""
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        used = 0.0
        for job in self.finished + self.running:
            start = job.start_time or 0.0
            end = job.end_time if job.end_time is not None else horizon
            used += max(0.0, min(end, horizon) - start) * job.n_nodes
        return used / (self.total_nodes * horizon)

    def mean_wait(self) -> float:
        done = [j for j in self.finished if j.start_time is not None]
        if not done:
            return 0.0
        return sum(j.wait_time for j in done) / len(done)
