"""Batch job scheduling: the TCS job-operation layer over the DES.

Both machines run their comparisons through a batch system (§6.4: "we
run the measurements through the batch job system"), and the OS choice
has an *operational* cost the paper notes in §5.1: on OFP "booting
IHK/McKernel entails nothing more than calling a few privileged mode
scripts in the prologue and epilogue of a particular job" — i.e. every
McKernel job pays a per-job boot in its prologue that Linux jobs do
not.  This module implements a FIFO + EASY-backfill scheduler so that
cost (and queueing in general) can be studied:

* jobs declare node count and a user runtime estimate;
* the head of the queue never starves (EASY: a reservation is computed
  for it from running jobs' estimates);
* later jobs may backfill into idle nodes if they cannot delay the
  reservation;
* McKernel jobs add prologue/epilogue time around their payload.

With a :class:`~repro.faults.FaultSpec` attached the scheduler also
models the unhappy path — the canonical fault-tolerant HPC job state
machine (RUNNING → failure → RESTARTING with bounded retries, the
Balsam RUN_ERROR/RESTART_READY cycle): node failures and OOM kills
abort the attempt, the job backs off exponentially and re-enters the
queue, optionally resuming from its last periodic checkpoint, and
after ``max_retries`` failed attempts it lands in the terminal FAILED
state.  Fault draws are seeded per (job, attempt), so a given
``(FaultSpec, submission sequence)`` replays identically.  Without a
fault spec every code path is byte-identical to the happy-path-only
scheduler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import (
    CgroupLimitExceeded,
    ConfigurationError,
    NodeFailure,
    ProxyCrashed,
)
from ..faults.injector import FaultEvent, FaultInjector
from ..faults.spec import FaultSpec
from ..faults.tolerance import CheckpointPolicy, RetryPolicy
from ..obs.metrics import get_metrics
from ..obs.tracer import get_tracer
from ..sim.engine import Engine, Event
from .job import OsChoice

#: Per-job LWK boot/teardown in the batch prologue/epilogue, seconds.
MCKERNEL_PROLOGUE = 45.0
MCKERNEL_EPILOGUE = 15.0


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    #: Attempt aborted by a fault; backing off before re-queueing.
    RESTARTING = "restarting"
    DONE = "done"
    #: Terminal: retry budget exhausted.
    FAILED = "failed"


@dataclass
class BatchJob:
    """One submission tracked by the scheduler."""

    name: str
    n_nodes: int
    runtime: float            # actual payload runtime
    estimate: float           # user's estimate (>= runtime not required)
    os_choice: OsChoice = OsChoice.LINUX
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    state: JobState = JobState.QUEUED
    # -- fault-tolerance bookkeeping (all zero without injection) ------
    #: Failed attempts so far.
    attempts: int = 0
    #: Payload seconds preserved by checkpointing across restarts.
    progress_done: float = 0.0
    #: Payload seconds computed but thrown away by failures.
    lost_time: float = 0.0
    #: Walltime added by daemon stalls (Linux jobs).
    stall_time: float = 0.0
    #: Walltime spent writing checkpoints.
    checkpoint_time: float = 0.0
    #: (sim time, fault kind value) per aborted attempt.
    fault_log: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        if self.runtime <= 0 or self.estimate <= 0:
            raise ConfigurationError("runtimes must be positive")

    @property
    def overhead(self) -> float:
        """Prologue + epilogue around the payload."""
        if self.os_choice is OsChoice.MCKERNEL:
            return MCKERNEL_PROLOGUE + MCKERNEL_EPILOGUE
        return 0.0

    @property
    def prologue(self) -> float:
        if self.os_choice is OsChoice.MCKERNEL:
            return MCKERNEL_PROLOGUE
        return 0.0

    @property
    def wall_occupancy(self) -> float:
        return self.runtime + self.overhead

    @property
    def estimated_occupancy(self) -> float:
        return self.estimate + self.overhead

    @property
    def wait_time(self) -> float:
        if self.start_time is None:
            raise ConfigurationError(f"job {self.name} has not started")
        return self.start_time - self.submit_time


@dataclass(frozen=True)
class _AttemptPlan:
    """Everything sampled up-front for one execution attempt."""

    occupancy: float                 # walltime if the attempt survives
    checkpoint_overhead: float
    stall_time: float
    fatal: Optional[FaultEvent]      # earliest job-killing event, if any


class BatchScheduler:
    """FIFO + EASY backfill over one machine's node pool.

    ``faults`` (a :class:`~repro.faults.FaultSpec`) enables
    injection + tolerance; ``None`` or an inactive spec keeps the
    scheduler on the exact happy-path-only code path.
    """

    def __init__(self, engine: Engine, total_nodes: int,
                 faults: Optional[FaultSpec] = None) -> None:
        if total_nodes <= 0:
            raise ConfigurationError("total_nodes must be positive")
        self.engine = engine
        self.total_nodes = total_nodes
        self.free_nodes = total_nodes
        self.queue: list[BatchJob] = []
        self.running: list[BatchJob] = []
        self.finished: list[BatchJob] = []
        #: Terminal failures (retry budget exhausted).
        self.failed: list[BatchJob] = []
        self.faults = faults
        self.injector: Optional[FaultInjector] = None
        self.retry = RetryPolicy()
        self.checkpoint = CheckpointPolicy()
        if faults is not None and faults.active:
            self.injector = FaultInjector(faults)
            self.retry = RetryPolicy.from_spec(faults)
            self.checkpoint = CheckpointPolicy.from_spec(faults)

    # -- submission --------------------------------------------------------

    def submit(self, job: BatchJob) -> BatchJob:
        if job.n_nodes > self.total_nodes:
            raise ConfigurationError(
                f"job {job.name} wants {job.n_nodes} nodes, machine has "
                f"{self.total_nodes}"
            )
        job.submit_time = self.engine.now
        self.queue.append(job)
        t = get_tracer()
        if t is not None:
            t.event("sched", "submit", ts=self.engine.now, actor=job.name,
                    nodes=job.n_nodes, os=job.os_choice.value)
        self._schedule()
        return job

    # -- internals -------------------------------------------------------------

    def _start(self, job: BatchJob) -> None:
        self.queue.remove(job)
        self.free_nodes -= job.n_nodes
        self.running.append(job)
        job.state = JobState.RUNNING
        if job.start_time is None:
            job.start_time = self.engine.now
        attempt_started = self.engine.now
        plan = self._plan_attempt(job)

        def run():
            if plan is None:
                # Fault-free path: identical to the happy-path scheduler.
                yield self.engine.timeout(job.wall_occupancy)
                self._trace_attempt(job, attempt_started, "done")
                self._complete(job)
                return
            if plan.fatal is None:
                yield self.engine.timeout(plan.occupancy)
                job.checkpoint_time += plan.checkpoint_overhead
                job.stall_time += plan.stall_time
                self._trace_attempt(job, attempt_started, "done")
                self._complete(job)
                return
            yield self.engine.timeout(plan.fatal.time)
            # The fault manifests as the same exception the live
            # component would raise (an injected OOM *is* the memcg
            # limit firing) and the scheduler's tolerance machinery is
            # the handler.
            try:
                raise plan.fatal.exception()
            except (NodeFailure, CgroupLimitExceeded, ProxyCrashed):
                self._trace_attempt(job, attempt_started,
                                    plan.fatal.kind.value)
                self._abort_attempt(job, plan)

        self.engine.process(run(), name=f"job/{job.name}/a{job.attempts}")

    def _trace_attempt(self, job: BatchJob, started: float,
                       outcome: str) -> None:
        """One attempt span on the sched track; a failed attempt also
        drops the manifested fault on the faults track."""
        t = get_tracer()
        if t is None:
            return
        t.span("sched", f"{job.name}/attempt{job.attempts}", ts=started,
               duration=self.engine.now - started, actor=job.name,
               outcome=outcome, nodes=job.n_nodes)
        if outcome != "done":
            t.event("faults", outcome, ts=self.engine.now, actor=job.name,
                    attempt=job.attempts)

    def _plan_attempt(self, job: BatchJob) -> Optional[_AttemptPlan]:
        """Sample this attempt's fault schedule; None = no injection."""
        if self.injector is None:
            return None
        remaining = max(0.0, job.runtime - job.progress_done)
        ckpt = self.checkpoint.overhead(remaining)
        base_window = job.overhead + remaining + ckpt
        schedule = self.injector.schedule(
            job.n_nodes, base_window,
            stream=f"job/{job.name}/attempt{job.attempts}")
        os_kind = job.os_choice.value
        fatal = schedule.first_fatal(os_kind)
        stall = schedule.stall_time(
            self.faults, os_kind,
            before=fatal.time if fatal is not None else None)
        return _AttemptPlan(
            occupancy=base_window + stall,
            checkpoint_overhead=ckpt,
            stall_time=stall,
            fatal=fatal,
        )

    def _complete(self, job: BatchJob) -> None:
        job.state = JobState.DONE
        job.end_time = self.engine.now
        self.running.remove(job)
        self.finished.append(job)
        self.free_nodes += job.n_nodes
        get_metrics().counter("sched.jobs_done",
                              kernel=job.os_choice.value).inc()
        self._schedule()

    def _abort_attempt(self, job: BatchJob, plan: _AttemptPlan) -> None:
        """RUNNING → RESTARTING (or FAILED): free nodes, account lost
        work, back off, re-queue — the bounded-retry state machine."""
        assert plan.fatal is not None
        job.fault_log.append((self.engine.now, plan.fatal.kind.value))
        self.running.remove(job)
        self.free_nodes += job.n_nodes
        # Payload progress at the failure point: strip the prologue,
        # then scale by the payload share of the productive window
        # (payload + checkpoint writes interleave uniformly).
        remaining = max(0.0, job.runtime - job.progress_done)
        productive = remaining + plan.checkpoint_overhead
        elapsed_productive = max(0.0, plan.fatal.time - job.prologue)
        if productive > 0:
            progress = min(remaining,
                           elapsed_productive * remaining / productive)
        else:
            progress = 0.0
        total = job.progress_done + progress
        resume_from = self.checkpoint.restart_point(total)
        job.lost_time += total - resume_from
        job.progress_done = resume_from
        job.attempts += 1
        metrics = get_metrics()
        metrics.counter("sched.attempts_aborted",
                        kernel=job.os_choice.value).inc()
        if self.retry.exhausted(job.attempts):
            job.state = JobState.FAILED
            job.end_time = self.engine.now
            self.failed.append(job)
            metrics.counter("sched.jobs_failed",
                            kernel=job.os_choice.value).inc()
            t = get_tracer()
            if t is not None:
                t.event("sched", "failed", ts=self.engine.now,
                        actor=job.name, attempts=job.attempts)
            self._schedule()
            return
        job.state = JobState.RESTARTING
        delay = self.retry.delay(job.attempts)

        def requeue():
            yield self.engine.timeout(delay)
            job.state = JobState.QUEUED
            self.queue.append(job)
            self._schedule()

        self.engine.process(requeue(),
                            name=f"job/{job.name}/backoff{job.attempts}")
        # The freed nodes may unblock other queued work immediately.
        self._schedule()

    def _head_reservation(self) -> tuple[float, int]:
        """(shadow_time, spare_nodes) for the EASY reservation of the
        queue head: the earliest time enough nodes free up (by running
        jobs' estimates), and the nodes idle even then."""
        head = self.queue[0]
        if head.n_nodes <= self.free_nodes:
            return self.engine.now, self.free_nodes - head.n_nodes
        # Sort running jobs by estimated completion.
        events = sorted(
            (r.start_time + r.estimated_occupancy, r.n_nodes)
            for r in self.running
        )
        free = self.free_nodes
        for end_at, nodes in events:
            free += nodes
            if free >= head.n_nodes:
                return end_at, free - head.n_nodes
        raise ConfigurationError(
            "reservation impossible: not enough nodes even when idle"
        )

    def _schedule(self) -> None:
        # Start queue heads FIFO while they fit.
        while self.queue and self.queue[0].n_nodes <= self.free_nodes:
            self._start(self.queue[0])
        if not self.queue:
            return
        # EASY backfill behind the blocked head.
        shadow_time, spare = self._head_reservation()
        for job in list(self.queue[1:]):
            if job.n_nodes > self.free_nodes:
                continue
            ends_by = self.engine.now + job.estimated_occupancy
            fits_before_shadow = ends_by <= shadow_time
            fits_in_spare = job.n_nodes <= spare
            if fits_before_shadow or fits_in_spare:
                if fits_in_spare and not fits_before_shadow:
                    spare -= job.n_nodes
                self._start(job)

    # -- metrics ------------------------------------------------------------------

    def utilization(self, horizon: float) -> float:
        """Node-seconds used / offered over [0, horizon]."""
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        used = 0.0
        for job in self.finished + self.running:
            start = job.start_time or 0.0
            end = job.end_time if job.end_time is not None else horizon
            used += max(0.0, min(end, horizon) - start) * job.n_nodes
        return used / (self.total_nodes * horizon)

    def mean_wait(self) -> float:
        done = [j for j in self.finished if j.start_time is not None]
        if not done:
            return 0.0
        return sum(j.wait_time for j in done) / len(done)

    # -- fault metrics -----------------------------------------------------

    def success_rate(self) -> float:
        """Completed / terminal jobs (1.0 while nothing has failed)."""
        terminal = len(self.finished) + len(self.failed)
        if terminal == 0:
            return 1.0
        return len(self.finished) / terminal

    def effective_utilization(self, horizon: float) -> float:
        """Goodput: *useful* payload node-seconds of completed jobs
        over the machine's offered capacity.  Prologues, checkpoint
        writes, daemon stalls and every aborted attempt count as zero
        — the metric the checkpoint-cost/lost-work tradeoff moves."""
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        useful = sum(j.runtime * j.n_nodes for j in self.finished)
        return useful / (self.total_nodes * horizon)

    def fault_report(self) -> dict:
        """Per-run tolerance accounting (the checkpoint-vs-lost-work
        tradeoff, reported per scheduler run)."""
        jobs = self.finished + self.failed + self.running + self.queue
        by_kind: dict[str, int] = {}
        for job in jobs:
            for _, kind in job.fault_log:
                by_kind[kind] = by_kind.get(kind, 0) + 1
        return {
            "jobs_done": len(self.finished),
            "jobs_failed": len(self.failed),
            "success_rate": self.success_rate(),
            "faults_by_kind": dict(sorted(by_kind.items())),
            "retries": sum(j.attempts for j in jobs),
            "lost_payload_seconds": sum(j.lost_time for j in jobs),
            "checkpoint_seconds": sum(j.checkpoint_time for j in jobs),
            "stall_seconds": sum(j.stall_time for j in jobs),
        }
