"""The experiment engine: run a workload profile on (machine, OS).

This module composes every substrate into seconds, mirroring how the
paper's numbers arise:

  total = init + steps * iterations * (S + TLB + churn + collective + noise)

* ``S`` — the profile's per-thread compute per sync interval;
* ``TLB`` — translation overhead of the working set under the OS's page
  size (Table 1's TLB-reach difference), scaled by the sector-cache
  pollution factor;
* ``churn`` — Linux re-faults freed-and-reallocated heap every
  iteration (glibc returns memory to the kernel; under THP the refault
  is at base-page granularity) plus the munmap TLB shootdown, while
  McKernel's LWK heap retains memory — the LULESH mechanism (§6.4);
* ``collective`` — fabric model, grows ~log(ranks);
* ``noise`` — per-sync-interval barrier delay: max over all N threads
  of the per-thread noise, the Eq. 1 amplification that makes the LWK
  advantage grow with scale;
* ``init`` — working-set population, I/O syscalls (delegated under
  McKernel) and RDMA registration (PicoDriver vs pinned ioctl — the
  GAMERA mechanism, §5.1/§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..apps.base import WorkloadProfile
from ..hardware.machines import Machine
from ..hardware.tlb import TlbModel
from ..kernel.base import OsInstance
from ..kernel.linux import LinuxKernel
from ..kernel.pagetable import PageKind
from ..kernel.tuning import LargePagePolicy
from ..net.collectives import CollectiveModel
from ..net.rdma import register_many
from ..noise.catalog import churn_compaction_source
from ..noise.sampler import BarrierDelaySampler
from ..platform.compose import noise_sources, resolve_fabric
from ..sim.rng import fnv1a_64


@dataclass(frozen=True)
class Breakdown:
    """Where the time went (totals over the whole run, seconds)."""

    compute: float
    tlb: float
    churn: float
    collective: float
    noise: float
    init: float

    @property
    def total(self) -> float:
        return (self.compute + self.tlb + self.churn + self.collective
                + self.noise + self.init)


#: Two-sided 97.5% Student-t critical values for small degrees of
#: freedom — the scipy-free fallback for :func:`t_critical` (values from
#: the standard t table; beyond the table the normal 1.959964 limit is
#: close to the true value to < 0.2%).
_T_TABLE = {
    1: 12.7062, 2: 4.3027, 3: 3.1824, 4: 2.7764, 5: 2.5706,
    6: 2.4469, 7: 2.3646, 8: 2.3060, 9: 2.2622, 10: 2.2281,
    11: 2.2010, 12: 2.1788, 13: 2.1604, 14: 2.1448, 15: 2.1314,
    16: 2.1199, 17: 2.1098, 18: 2.1009, 19: 2.0930, 20: 2.0860,
    21: 2.0796, 22: 2.0739, 23: 2.0687, 24: 2.0639, 25: 2.0595,
    26: 2.0555, 27: 2.0518, 28: 2.0484, 29: 2.0452, 30: 2.0423,
}
_T_NORMAL_LIMIT = 1.959964

#: Memo of ``t.ppf(0.975, df)`` keyed by ``df`` — ci95 sits on the
#: sweep hot path and must not re-enter scipy's ppf machinery (or even
#: the lazy ``from scipy import stats``) for every result.
_T_CRIT_MEMO: dict[int, float] = {}


def t_critical(df: int) -> float:
    """``t.ppf(0.975, df)``, memoized per ``df``.

    scipy stays an optional import: when it is unavailable the
    hard-coded small-df table (exact to 4 decimals up to df=30, then
    the normal limit) takes over, so confidence intervals never pull a
    hard scipy dependency into the runtime path.
    """
    if df <= 0:
        raise ConfigurationError("df must be positive")
    hit = _T_CRIT_MEMO.get(df)
    if hit is not None:
        return hit
    try:
        from scipy import stats
    except ImportError:
        value = _T_TABLE.get(df, _T_NORMAL_LIMIT)
    else:
        value = float(stats.t.ppf(0.975, df))
    _T_CRIT_MEMO[df] = value
    return value


@dataclass(frozen=True)
class RunResult:
    """Outcome of running one profile on one OS at one node count."""

    app: str
    machine: str
    os_kind: str
    n_nodes: int
    n_threads: int
    times: tuple[float, ...]  # per-run wall times
    breakdown: Breakdown      # of the mean run

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def std_time(self) -> float:
        return float(np.std(self.times))

    def ci95(self) -> tuple[float, float]:
        """95% confidence interval of the mean wall time (Student t).

        With a single run the interval degenerates to the point value.
        """
        n = len(self.times)
        if n < 2:
            return (self.mean_time, self.mean_time)
        sem = float(np.std(self.times, ddof=1)) / np.sqrt(n)
        half = t_critical(n - 1) * sem
        return (self.mean_time - half, self.mean_time + half)

    def ci95_half_width(self) -> float:
        """Half-width of :meth:`ci95` (0.0 for a single run)."""
        lo, hi = self.ci95()
        return 0.5 * (hi - lo)


def _churn_page_kind(os_instance: OsInstance) -> tuple[int, PageKind]:
    """(page_bytes, kind) at which Linux re-faults churned heap memory.

    Under THP fresh anonymous memory is faulted at base granularity and
    only later collapsed by khugepaged, so churned pages effectively pay
    base-page faults; hugeTLBfs mappings fault at the huge size.
    """
    geo = os_instance.app_page_geometry()
    if isinstance(os_instance, LinuxKernel):
        if os_instance.tuning.large_pages is LargePagePolicy.HUGETLBFS:
            kind = os_instance.app_page_kind()
            return geo.size_of(kind), kind
        return geo.base, PageKind.BASE
    kind = os_instance.app_page_kind()
    return geo.size_of(kind), kind


class AppRunner:
    """Runs workload profiles against OS instances on one machine."""

    def __init__(self, machine: Machine, profile: WorkloadProfile,
                 seed: int = 0) -> None:
        self.machine = machine
        self.profile = profile
        self.seed = seed
        self.fabric = resolve_fabric(machine)

    # -- component models -------------------------------------------------

    def _tlb_time_per_interval(self, os_instance: OsInstance,
                               n_nodes: int) -> float:
        p = self.profile
        geo = os_instance.app_page_geometry()
        page_bytes = geo.size_of(os_instance.app_page_kind())
        # Both kernel personalities expose a TlbModel as ``.tlb``.
        tlb: TlbModel = os_instance.tlb  # type: ignore[attr-defined]
        overhead_per_sec = tlb.miss_overhead(
            working_set=p.working_set_at(n_nodes),
            page_size=page_bytes,
            refs_per_second=p.refs_per_second,
            locality=p.locality,
        )
        pollution = os_instance.cache_pollution_factor()
        return p.sync_interval_at(n_nodes) * overhead_per_sec * pollution

    def _churn_time_per_interval(self, os_instance: OsInstance,
                                 n_nodes: int, threads_per_rank: int) -> float:
        churn = self.profile.churn_bytes_at(n_nodes, self.machine.name)
        if churn == 0:
            return 0.0
        if not isinstance(os_instance, LinuxKernel):
            # LWK heap: memory is faulted once at init and retained;
            # steady-state alloc/free cycles cost only the (local) brk
            # bookkeeping, priced as one syscall.
            return os_instance.costs.syscall_cost(delegated=False)
        page_bytes, kind = _churn_page_kind(os_instance)
        populate = os_instance.costs.populate_cost(churn, page_bytes, kind)
        # Returning the memory tears down translations: shootdown of the
        # base-page PTEs across the rank's other threads.
        geo = os_instance.app_page_geometry()
        n_flushes = -(-churn // geo.base)
        shootdown = os_instance.tlb.shootdown_cost(
            n_flushes=n_flushes,
            n_target_cores=max(0, threads_per_rank - 1),
            threads_on_one_core=(threads_per_rank == 1),
        )
        return populate + shootdown

    def _collective_time(self, n_nodes: int, ranks_per_node: int) -> float:
        model = CollectiveModel(self.fabric, n_nodes, ranks_per_node)
        return model.cost(self.profile.collective,
                          self.profile.msg_bytes_at(n_nodes))

    def _noise_sampler(
        self, os_instance: OsInstance, n_nodes: int, n_threads: int,
    ) -> BarrierDelaySampler | None:
        """The cell's barrier-delay sampler, or None when noiseless.

        Depends only on (OS, n_nodes, n_threads) — never on the trial
        index — so one sampler serves every trial of a run batch.
        """
        sources = list(noise_sources(os_instance))
        # App-induced THP compaction stalls (the scale-growing half of
        # the LULESH heap effect).
        churn = self.profile.churn_bytes_at(n_nodes, self.machine.name)
        if (
            churn > 0
            and isinstance(os_instance, LinuxKernel)
            and os_instance.tuning.large_pages is LargePagePolicy.THP
        ):
            sources.append(churn_compaction_source(churn))
        if not sources:
            return None
        return BarrierDelaySampler(
            sources,
            sync_interval=self.profile.sync_interval_at(n_nodes),
            n_threads=n_threads,
        )

    def _noise_delay_per_interval(
        self, os_instance: OsInstance, n_nodes: int, n_threads: int,
        rng: np.random.Generator,
    ) -> float:
        sampler = self._noise_sampler(os_instance, n_nodes, n_threads)
        if sampler is None:
            return 0.0
        n_sample = min(self.profile.iterations, 512)
        return float(sampler.sample(n_sample, rng).mean())

    def _init_time(self, os_instance: OsInstance, n_nodes: int) -> float:
        p = self.profile
        costs = os_instance.costs
        geo = os_instance.app_page_geometry()
        kind = os_instance.app_page_kind()
        page_bytes = geo.size_of(kind)
        # Working-set population (both kernels; McKernel also pre-pays
        # the churn arena here — negligible next to the working set).
        populate = costs.populate_cost(p.working_set_at(n_nodes),
                                       page_bytes, kind)
        io = p.init.io_syscalls * costs.syscall_cost(
            delegated=os_instance.syscall_delegated("read")
        )
        regs = register_many(
            os_instance, p.init.reg_count, p.init.reg_bytes_each
        ).total_time * p.init.reg_repeats
        return p.init.compute + populate + io + regs

    # -- the run -------------------------------------------------------------

    def _component_times(self, os_instance: OsInstance, n_nodes: int):
        """(tlb, churn, collective, per_iter_static, init, n_intervals,
        n_threads): every per-interval component model evaluated exactly
        once; the sum feeds the per-interval cost and the same values
        price the Breakdown."""
        p = self.profile
        geo = p.geometry_for(self.machine.name)
        n_threads = n_nodes * geo.threads_per_node
        tlb_time = self._tlb_time_per_interval(os_instance, n_nodes)
        churn_time = self._churn_time_per_interval(os_instance, n_nodes,
                                                   geo.threads_per_rank)
        collective_time = self._collective_time(n_nodes, geo.ranks_per_node)
        per_iter_static = (
            p.sync_interval_at(n_nodes) + tlb_time + churn_time
            + collective_time
        )
        init = self._init_time(os_instance, n_nodes)
        n_intervals = p.iterations * p.steps
        return (tlb_time, churn_time, collective_time, per_iter_static,
                init, n_intervals, n_threads)

    def _trial_batch(
        self, os_instance: OsInstance, n_nodes: int, n_threads: int,
        run_indices: range,
        sampler: BarrierDelaySampler | None,
        per_iter_static: float, init: float, n_intervals: int,
        batch_trials: bool,
    ) -> tuple[list[float], list[float]]:
        """(wall times, per-interval noise means) for one batch of
        trials, bit-identical for either value of ``batch_trials``.

        Every trial derives its RNG streams purely from its own
        ``run_idx``, so batches compose: trials ``0..k`` drawn as one
        batch equal trials ``0..k`` drawn as several.
        """
        p = self.profile
        os_tag = fnv1a_64(f"{p.name}/{os_instance.kind}")
        rngs = [
            np.random.default_rng((self.seed, run_idx, n_nodes, os_tag))
            for run_idx in run_indices
        ]
        if sampler is None:
            noise_means = [0.0] * len(rngs)
        elif batch_trials:
            # One vectorized draw for the whole batch: the per-trial
            # generators are consumed exactly as the serial loop would,
            # but the order-statistic inverse-CDF evaluation runs once
            # per source instead of once per (source, trial).
            rows = sampler.sample_batch(min(p.iterations, 512), rngs)
            noise_means = [float(row.mean()) for row in rows]
        else:
            n_sample = min(p.iterations, 512)
            noise_means = [float(sampler.sample(n_sample, rng).mean())
                           for rng in rngs]
        times = []
        common_tag = fnv1a_64(p.name)
        for rng, run_idx, noise in zip(rngs, run_indices, noise_means):
            base = init + n_intervals * (per_iter_static + noise)
            # Run-to-run variability has two parts: the node assignment
            # (shared between the two OSes — the paper used "the exact
            # same compute nodes" for each pair, so it cancels in the
            # ratio) and an OS-private residual.
            rng_common = np.random.default_rng(
                (self.seed, run_idx, n_nodes, common_tag))
            jitter = float(
                np.exp(0.8 * p.variability * rng_common.standard_normal())
                * np.exp(0.36 * p.variability * rng.standard_normal())
            )
            times.append(base * jitter)
        return times, noise_means

    def _result(self, os_instance: OsInstance, n_nodes: int,
                n_threads: int, times: list[float],
                noise_means: list[float], tlb_time: float,
                churn_time: float, collective_time: float, init: float,
                n_intervals: int) -> RunResult:
        p = self.profile
        mean_noise = float(np.mean(noise_means))
        breakdown = Breakdown(
            compute=n_intervals * p.sync_interval_at(n_nodes),
            tlb=n_intervals * tlb_time,
            churn=n_intervals * churn_time,
            collective=n_intervals * collective_time,
            noise=n_intervals * mean_noise,
            init=init,
        )
        return RunResult(
            app=p.name,
            machine=self.machine.name,
            os_kind=os_instance.kind,
            n_nodes=n_nodes,
            n_threads=n_threads,
            times=tuple(times),
            breakdown=breakdown,
        )

    def _check_run_args(self, n_nodes: int, n_runs: int) -> None:
        if n_nodes <= 0 or n_nodes > self.machine.n_nodes:
            raise ConfigurationError(
                f"n_nodes must be in 1..{self.machine.n_nodes}"
            )
        if n_runs <= 0:
            raise ConfigurationError("n_runs must be positive")

    def run(self, os_instance: OsInstance, n_nodes: int,
            n_runs: int = 3, batch_trials: bool = True) -> RunResult:
        """Execute the profile ``n_runs`` times; per-run noise and
        variability draws differ, producing the error bars of Figs. 5-7.

        ``batch_trials=False`` forces the historical per-trial sampling
        loop; the result is bit-identical either way (asserted in
        tests and measured by the ``sweep_multitrial`` benchmarks).
        """
        self._check_run_args(n_nodes, n_runs)
        (tlb_time, churn_time, collective_time, per_iter_static, init,
         n_intervals, n_threads) = self._component_times(os_instance, n_nodes)
        sampler = self._noise_sampler(os_instance, n_nodes, n_threads)
        times, noise_means = self._trial_batch(
            os_instance, n_nodes, n_threads, range(n_runs), sampler,
            per_iter_static, init, n_intervals, batch_trials)
        return self._result(os_instance, n_nodes, n_threads, times,
                            noise_means, tlb_time, churn_time,
                            collective_time, init, n_intervals)

    def run_adaptive(self, os_instance: OsInstance, n_nodes: int,
                     n_runs: int = 3, target_ci: float = 0.05,
                     max_runs: int = 64) -> RunResult:
        """Monte-Carlo cell with variance-adaptive early stopping.

        Trials are drawn in batches of ``n_runs`` until the Student-t
        95% CI half-width of the mean wall time falls to ``target_ci``
        (as a fraction of the mean) or ``max_runs`` trials have been
        drawn.  The stopping decision depends only on this cell's own
        RNG streams (trial ``k`` is always derived from coordinate
        ``k``), so results are bit-identical across ``--jobs`` and
        across cell execution order.
        """
        self._check_run_args(n_nodes, n_runs)
        if target_ci <= 0:
            raise ConfigurationError("target_ci must be positive")
        if max_runs < n_runs:
            raise ConfigurationError("max_runs must be >= n_runs")
        (tlb_time, churn_time, collective_time, per_iter_static, init,
         n_intervals, n_threads) = self._component_times(os_instance, n_nodes)
        sampler = self._noise_sampler(os_instance, n_nodes, n_threads)
        times: list[float] = []
        noise_means: list[float] = []
        while True:
            start = len(times)
            batch = min(n_runs, max_runs - start)
            t, nm = self._trial_batch(
                os_instance, n_nodes, n_threads,
                range(start, start + batch), sampler,
                per_iter_static, init, n_intervals, batch_trials=True)
            times.extend(t)
            noise_means.extend(nm)
            n = len(times)
            if n >= max_runs:
                break
            if n >= 2:
                mean = float(np.mean(times))
                sem = float(np.std(times, ddof=1)) / np.sqrt(n)
                half = t_critical(n - 1) * sem
                if half <= target_ci * abs(mean):
                    break
        return self._result(os_instance, n_nodes, n_threads, times,
                            noise_means, tlb_time, churn_time,
                            collective_time, init, n_intervals)


@dataclass(frozen=True)
class Comparison:
    """Linux vs McKernel at one node count (Figs. 5-7 bar pairs)."""

    n_nodes: int
    linux: RunResult
    mckernel: RunResult

    @property
    def relative_performance(self) -> float:
        """McKernel performance relative to Linux == 1 (paper's Y axis;
        higher is better, computed as time ratio)."""
        return self.linux.mean_time / self.mckernel.mean_time

    @property
    def speedup_percent(self) -> float:
        return (self.relative_performance - 1.0) * 100.0


def compare(
    machine: Machine,
    profile: WorkloadProfile,
    linux: OsInstance,
    mckernel: OsInstance,
    node_counts: list[int],
    n_runs: int = 3,
    seed: int = 0,
    jobs: int | None = None,
    cache=None,
) -> list[Comparison]:
    """Run the Linux/McKernel pair across a node-count sweep.

    Mirrors the paper's methodology note: "for each node count the
    exact same compute nodes are utilized for both" — here, the same
    seed stream drives both OSes at each node count.

    Every (OS, n_nodes) cell derives its RNG streams purely from its
    own coordinates, so the sweep fans out over the
    :mod:`repro.perf` executor: ``jobs``/``cache`` select parallelism
    and run memoization (``None`` inherits the ambient
    :func:`repro.perf.perf_context`), with results bit-identical to
    the serial path.
    """
    from ..perf.executor import RunCell, adaptive_fields, execute_cells

    adaptive = adaptive_fields()
    cells = []
    for n in node_counts:
        cells.append(RunCell(machine, profile, linux, n, n_runs, seed,
                             **adaptive))
        cells.append(RunCell(machine, profile, mckernel, n, n_runs, seed,
                             **adaptive))
    results = execute_cells(cells, jobs=jobs, cache=cache)
    return [
        Comparison(n_nodes=n, linux=results[2 * i],
                   mckernel=results[2 * i + 1])
        for i, n in enumerate(node_counts)
    ]
