"""The experiment engine: run a workload profile on (machine, OS).

This module composes every substrate into seconds, mirroring how the
paper's numbers arise:

  total = init + steps * iterations * (S + TLB + churn + collective + noise)

* ``S`` — the profile's per-thread compute per sync interval;
* ``TLB`` — translation overhead of the working set under the OS's page
  size (Table 1's TLB-reach difference), scaled by the sector-cache
  pollution factor;
* ``churn`` — Linux re-faults freed-and-reallocated heap every
  iteration (glibc returns memory to the kernel; under THP the refault
  is at base-page granularity) plus the munmap TLB shootdown, while
  McKernel's LWK heap retains memory — the LULESH mechanism (§6.4);
* ``collective`` — fabric model, grows ~log(ranks);
* ``noise`` — per-sync-interval barrier delay: max over all N threads
  of the per-thread noise, the Eq. 1 amplification that makes the LWK
  advantage grow with scale;
* ``init`` — working-set population, I/O syscalls (delegated under
  McKernel) and RDMA registration (PicoDriver vs pinned ioctl — the
  GAMERA mechanism, §5.1/§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..apps.base import WorkloadProfile
from ..hardware.machines import Machine
from ..hardware.tlb import TlbModel
from ..kernel.base import OsInstance
from ..kernel.linux import LinuxKernel
from ..kernel.pagetable import PageKind
from ..kernel.tuning import LargePagePolicy
from ..net.collectives import CollectiveModel
from ..net.rdma import register_many
from ..noise.catalog import churn_compaction_source
from ..noise.sampler import BarrierDelaySampler
from ..platform.compose import noise_sources, resolve_fabric
from ..sim.rng import fnv1a_64


@dataclass(frozen=True)
class Breakdown:
    """Where the time went (totals over the whole run, seconds)."""

    compute: float
    tlb: float
    churn: float
    collective: float
    noise: float
    init: float

    @property
    def total(self) -> float:
        return (self.compute + self.tlb + self.churn + self.collective
                + self.noise + self.init)


@dataclass(frozen=True)
class RunResult:
    """Outcome of running one profile on one OS at one node count."""

    app: str
    machine: str
    os_kind: str
    n_nodes: int
    n_threads: int
    times: tuple[float, ...]  # per-run wall times
    breakdown: Breakdown      # of the mean run

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def std_time(self) -> float:
        return float(np.std(self.times))

    def ci95(self) -> tuple[float, float]:
        """95% confidence interval of the mean wall time (Student t).

        With a single run the interval degenerates to the point value.
        """
        n = len(self.times)
        if n < 2:
            return (self.mean_time, self.mean_time)
        from scipy import stats

        sem = float(np.std(self.times, ddof=1)) / np.sqrt(n)
        half = float(stats.t.ppf(0.975, n - 1)) * sem
        return (self.mean_time - half, self.mean_time + half)


def _churn_page_kind(os_instance: OsInstance) -> tuple[int, PageKind]:
    """(page_bytes, kind) at which Linux re-faults churned heap memory.

    Under THP fresh anonymous memory is faulted at base granularity and
    only later collapsed by khugepaged, so churned pages effectively pay
    base-page faults; hugeTLBfs mappings fault at the huge size.
    """
    geo = os_instance.app_page_geometry()
    if isinstance(os_instance, LinuxKernel):
        if os_instance.tuning.large_pages is LargePagePolicy.HUGETLBFS:
            kind = os_instance.app_page_kind()
            return geo.size_of(kind), kind
        return geo.base, PageKind.BASE
    kind = os_instance.app_page_kind()
    return geo.size_of(kind), kind


class AppRunner:
    """Runs workload profiles against OS instances on one machine."""

    def __init__(self, machine: Machine, profile: WorkloadProfile,
                 seed: int = 0) -> None:
        self.machine = machine
        self.profile = profile
        self.seed = seed
        self.fabric = resolve_fabric(machine)

    # -- component models -------------------------------------------------

    def _tlb_time_per_interval(self, os_instance: OsInstance,
                               n_nodes: int) -> float:
        p = self.profile
        geo = os_instance.app_page_geometry()
        page_bytes = geo.size_of(os_instance.app_page_kind())
        # Both kernel personalities expose a TlbModel as ``.tlb``.
        tlb: TlbModel = os_instance.tlb  # type: ignore[attr-defined]
        overhead_per_sec = tlb.miss_overhead(
            working_set=p.working_set_at(n_nodes),
            page_size=page_bytes,
            refs_per_second=p.refs_per_second,
            locality=p.locality,
        )
        pollution = os_instance.cache_pollution_factor()
        return p.sync_interval_at(n_nodes) * overhead_per_sec * pollution

    def _churn_time_per_interval(self, os_instance: OsInstance,
                                 n_nodes: int, threads_per_rank: int) -> float:
        churn = self.profile.churn_bytes_at(n_nodes, self.machine.name)
        if churn == 0:
            return 0.0
        if not isinstance(os_instance, LinuxKernel):
            # LWK heap: memory is faulted once at init and retained;
            # steady-state alloc/free cycles cost only the (local) brk
            # bookkeeping, priced as one syscall.
            return os_instance.costs.syscall_cost(delegated=False)
        page_bytes, kind = _churn_page_kind(os_instance)
        populate = os_instance.costs.populate_cost(churn, page_bytes, kind)
        # Returning the memory tears down translations: shootdown of the
        # base-page PTEs across the rank's other threads.
        geo = os_instance.app_page_geometry()
        n_flushes = -(-churn // geo.base)
        shootdown = os_instance.tlb.shootdown_cost(
            n_flushes=n_flushes,
            n_target_cores=max(0, threads_per_rank - 1),
            threads_on_one_core=(threads_per_rank == 1),
        )
        return populate + shootdown

    def _collective_time(self, n_nodes: int, ranks_per_node: int) -> float:
        model = CollectiveModel(self.fabric, n_nodes, ranks_per_node)
        return model.cost(self.profile.collective,
                          self.profile.msg_bytes_at(n_nodes))

    def _noise_delay_per_interval(
        self, os_instance: OsInstance, n_nodes: int, n_threads: int,
        rng: np.random.Generator,
    ) -> float:
        sources = list(noise_sources(os_instance))
        # App-induced THP compaction stalls (the scale-growing half of
        # the LULESH heap effect).
        churn = self.profile.churn_bytes_at(n_nodes, self.machine.name)
        if (
            churn > 0
            and isinstance(os_instance, LinuxKernel)
            and os_instance.tuning.large_pages is LargePagePolicy.THP
        ):
            sources.append(churn_compaction_source(churn))
        if not sources:
            return 0.0
        sampler = BarrierDelaySampler(
            sources,
            sync_interval=self.profile.sync_interval_at(n_nodes),
            n_threads=n_threads,
        )
        n_sample = min(self.profile.iterations, 512)
        return float(sampler.sample(n_sample, rng).mean())

    def _init_time(self, os_instance: OsInstance, n_nodes: int) -> float:
        p = self.profile
        costs = os_instance.costs
        geo = os_instance.app_page_geometry()
        kind = os_instance.app_page_kind()
        page_bytes = geo.size_of(kind)
        # Working-set population (both kernels; McKernel also pre-pays
        # the churn arena here — negligible next to the working set).
        populate = costs.populate_cost(p.working_set_at(n_nodes),
                                       page_bytes, kind)
        io = p.init.io_syscalls * costs.syscall_cost(
            delegated=os_instance.syscall_delegated("read")
        )
        regs = register_many(
            os_instance, p.init.reg_count, p.init.reg_bytes_each
        ).total_time * p.init.reg_repeats
        return p.init.compute + populate + io + regs

    # -- the run -------------------------------------------------------------

    def run(self, os_instance: OsInstance, n_nodes: int,
            n_runs: int = 3) -> RunResult:
        """Execute the profile ``n_runs`` times; per-run noise and
        variability draws differ, producing the error bars of Figs. 5-7."""
        if n_nodes <= 0 or n_nodes > self.machine.n_nodes:
            raise ConfigurationError(
                f"n_nodes must be in 1..{self.machine.n_nodes}"
            )
        if n_runs <= 0:
            raise ConfigurationError("n_runs must be positive")
        p = self.profile
        geo = p.geometry_for(self.machine.name)
        n_threads = n_nodes * geo.threads_per_node
        # Evaluate each component model exactly once; the sum feeds the
        # per-interval cost and the same values price the Breakdown.
        tlb_time = self._tlb_time_per_interval(os_instance, n_nodes)
        churn_time = self._churn_time_per_interval(os_instance, n_nodes,
                                                   geo.threads_per_rank)
        collective_time = self._collective_time(n_nodes, geo.ranks_per_node)
        per_iter_static = (
            p.sync_interval_at(n_nodes) + tlb_time + churn_time
            + collective_time
        )
        init = self._init_time(os_instance, n_nodes)
        n_intervals = p.iterations * p.steps

        times = []
        noise_means = []
        for run_idx in range(n_runs):
            rng = np.random.default_rng(
                (self.seed, run_idx, n_nodes,
                 fnv1a_64(f"{self.profile.name}/{os_instance.kind}"))
            )
            noise = self._noise_delay_per_interval(
                os_instance, n_nodes, n_threads, rng
            )
            noise_means.append(noise)
            base = init + n_intervals * (per_iter_static + noise)
            # Run-to-run variability has two parts: the node assignment
            # (shared between the two OSes — the paper used "the exact
            # same compute nodes" for each pair, so it cancels in the
            # ratio) and an OS-private residual.
            rng_common = np.random.default_rng(
                (self.seed, run_idx, n_nodes, fnv1a_64(self.profile.name))
            )
            jitter = float(
                np.exp(0.8 * p.variability * rng_common.standard_normal())
                * np.exp(0.36 * p.variability * rng.standard_normal())
            )
            times.append(base * jitter)

        mean_noise = float(np.mean(noise_means))
        breakdown = Breakdown(
            compute=n_intervals * p.sync_interval_at(n_nodes),
            tlb=n_intervals * tlb_time,
            churn=n_intervals * churn_time,
            collective=n_intervals * collective_time,
            noise=n_intervals * mean_noise,
            init=init,
        )
        return RunResult(
            app=p.name,
            machine=self.machine.name,
            os_kind=os_instance.kind,
            n_nodes=n_nodes,
            n_threads=n_threads,
            times=tuple(times),
            breakdown=breakdown,
        )


@dataclass(frozen=True)
class Comparison:
    """Linux vs McKernel at one node count (Figs. 5-7 bar pairs)."""

    n_nodes: int
    linux: RunResult
    mckernel: RunResult

    @property
    def relative_performance(self) -> float:
        """McKernel performance relative to Linux == 1 (paper's Y axis;
        higher is better, computed as time ratio)."""
        return self.linux.mean_time / self.mckernel.mean_time

    @property
    def speedup_percent(self) -> float:
        return (self.relative_performance - 1.0) * 100.0


def compare(
    machine: Machine,
    profile: WorkloadProfile,
    linux: OsInstance,
    mckernel: OsInstance,
    node_counts: list[int],
    n_runs: int = 3,
    seed: int = 0,
    jobs: int | None = None,
    cache=None,
) -> list[Comparison]:
    """Run the Linux/McKernel pair across a node-count sweep.

    Mirrors the paper's methodology note: "for each node count the
    exact same compute nodes are utilized for both" — here, the same
    seed stream drives both OSes at each node count.

    Every (OS, n_nodes) cell derives its RNG streams purely from its
    own coordinates, so the sweep fans out over the
    :mod:`repro.perf` executor: ``jobs``/``cache`` select parallelism
    and run memoization (``None`` inherits the ambient
    :func:`repro.perf.perf_context`), with results bit-identical to
    the serial path.
    """
    from ..perf.executor import RunCell, execute_cells

    cells = []
    for n in node_counts:
        cells.append(RunCell(machine, profile, linux, n, n_runs, seed))
        cells.append(RunCell(machine, profile, mckernel, n, n_runs, seed))
    results = execute_cells(cells, jobs=jobs, cache=cache)
    return [
        Comparison(n_nodes=n, linux=results[2 * i],
                   mckernel=results[2 * i + 1])
        for i, n in enumerate(node_counts)
    ]
