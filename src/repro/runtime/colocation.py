"""Performance isolation under workload co-location.

§8 (and [18, 37]) motivates multi-kernels for exactly this: "multi-kernel
systems provide excellent performance isolation which could play an
important role in multi-tenant deployments".  This module implements the
co-location experiment the paper leaves as future work:

* a latency-critical **primary** BSP workload shares a node with a noisy
  **secondary** tenant (analytics/ML-style: bursty CPU, heavy page-cache
  and block I/O activity);
* under **Linux + cgroups**, the tenant is confined by cpusets, but the
  kernel-mediated channels remain: extra kworker/blk-mq activity spills
  onto the primary's cores, shared-LLC pollution (no sector cache
  between two *application* cgroups), and — on unpatched A64FX — TLBI
  broadcasts from the tenant's memory churn;
* under **IHK/McKernel partitioning**, the primary runs on its own LWK
  core/memory slice; only hardware sharing (bandwidth) remains.

Outputs the interference slowdown of the primary workload under each
isolation mode — the quantity a multi-tenant operator cares about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..hardware.machines import NodeSpec
from ..hardware.tlb import TlbFlushMode, TlbModel
from ..kernel.tuning import LinuxTuning
from ..noise.sampler import BarrierDelaySampler
from ..noise.source import NoiseSource, Occurrence
from ..sim.distributions import TruncatedExponential, Uniform
from ..units import us


class IsolationMode(enum.Enum):
    """How the node is split between the two tenants."""

    NONE = "none"              # both share everything (worst case)
    CGROUPS = "cgroups"        # Linux cpuset/memcg confinement
    MULTIKERNEL = "multikernel"  # primary on McKernel via IHK partition


@dataclass(frozen=True)
class TenantLoad:
    """Intensity of the secondary (noisy) tenant."""

    #: CPU burst duty cycle it would impose on shared cores (0..1).
    cpu_duty: float = 0.10
    #: Block I/O completions per second (drives kworker/blk-mq spill).
    io_rate_hz: float = 400.0
    #: Anonymous memory churned per second (drives TLBI storms), bytes/s.
    churn_bytes_per_s: float = 256 * 1024 * 1024
    #: Fraction of LLC fills attributable to the tenant when sharing.
    llc_share: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_duty < 1.0:
            raise ConfigurationError("cpu_duty must be in [0, 1)")
        if self.io_rate_hz < 0 or self.churn_bytes_per_s < 0:
            raise ConfigurationError("rates must be non-negative")
        if not 0.0 <= self.llc_share <= 1.0:
            raise ConfigurationError("llc_share must be in [0, 1]")


def interference_sources(
    node: NodeSpec,
    tenant: TenantLoad,
    mode: IsolationMode,
    tuning: LinuxTuning,
) -> list[NoiseSource]:
    """Noise sources the *primary's* cores see because of the tenant."""
    sources: list[NoiseSource] = []
    if mode is IsolationMode.NONE:
        # Tenant threads time-share the primary's cores outright.
        burst = 4e-3  # CFS-scale scheduling slices
        interval = burst / max(tenant.cpu_duty, 1e-9)
        sources.append(
            NoiseSource(
                name="tenant-cpu",
                interval=interval,
                duration=TruncatedExponential(scale=burst, cap=24e-3),
            )
        )
    if mode in (IsolationMode.NONE, IsolationMode.CGROUPS):
        # Kernel-mediated spill: I/O completion work lands on whichever
        # core the request was issued from unless blk-mq masks are
        # patched — tenants issue from their own cores, but softirq and
        # writeback still touch the primary's (§4.2.1 mechanics).
        spill_rate = tenant.io_rate_hz * (
            0.25 if mode is IsolationMode.CGROUPS else 1.0
        )
        if spill_rate > 0:
            sources.append(
                NoiseSource(
                    name="tenant-io-spill",
                    interval=1.0 / spill_rate,
                    duration=TruncatedExponential(scale=us(8.0), cap=us(388)),
                )
            )
        # TLBI broadcast from tenant memory churn (A64FX, unpatched —
        # and the patch does NOT help here: the tenant is multi-threaded).
        tlb = TlbModel(node.tlb, tuning.tlb_flush_mode)
        base = 64 * 1024 if node.arch == "aarch64" else 4096
        flushes_per_s = tenant.churn_bytes_per_s / base
        storm = 512  # flushes per munmap batch
        victim = tlb.victim_delay(storm, threads_on_one_core=False)
        if victim > 0 and flushes_per_s > 0:
            sources.append(
                NoiseSource(
                    name="tenant-tlbi",
                    interval=storm / flushes_per_s,
                    duration=Uniform(lo=victim * 0.5, hi=victim),
                )
            )
    # MULTIKERNEL: no kernel-mediated channels at all — the LWK slice
    # shares only hardware (handled as a bandwidth factor below).
    return sources


def llc_slowdown_factor(node: NodeSpec, tenant: TenantLoad,
                        mode: IsolationMode,
                        memory_stall_fraction: float = 0.3) -> float:
    """Multiplier on the primary's compute time from cache sharing."""
    if mode is IsolationMode.MULTIKERNEL:
        # Separate CMGs/memory partitions: only interconnect-level
        # bandwidth sharing remains, negligible for CMG-local traffic.
        return 1.0
    from ..hardware.cache import SectorCache

    cache = SectorCache(node.l2, system_ways=0)  # tenants share ways
    pollution = cache.pollution_factor(tenant.llc_share)
    return 1.0 + memory_stall_fraction * (pollution - 1.0)


def bandwidth_slowdown_factor(
    node: NodeSpec,
    tenant: TenantLoad,
    mode: IsolationMode,
    primary_demand_per_core: float = 1.28e9,
    memory_stall_fraction: float = 0.3,
) -> float:
    """Multiplier from memory-bandwidth sharing (§4.2.2's channel).

    The tenant's streaming demand lands on the primary's NUMA domain(s)
    unless the memory partition separates them: IHK's reservation (and
    virtual NUMA under cgroups with mem binding) give the tenant its own
    domain, so only the unpartitioned modes contend.
    """
    from ..hardware.membw import BandwidthModel

    if mode is not IsolationMode.NONE:
        # cgroup mem binding / IHK memory reservation keep the tenant's
        # traffic on its own domain.
        return 1.0
    model = BandwidthModel(node.numa)
    domain = node.numa.domains[0]
    cores = node.topology.cores_per_group
    for c in range(cores):
        model.register(f"primary{c}", domain.node_id,
                       primary_demand_per_core)
    # The tenant streams aggressively on the same domain (page cache,
    # shuffle buffers): model as 4 cores' worth of demand times duty.
    model.register("tenant", domain.node_id,
                   4 * 12.8e9 * max(tenant.cpu_duty, 0.0) * 10)
    stall = model.slowdown(domain.node_id)
    return 1.0 + memory_stall_fraction * (stall - 1.0)


@dataclass(frozen=True)
class ColocationResult:
    """Primary-workload impact under one isolation mode."""

    mode: IsolationMode
    noise_slowdown: float      # from barrier-amplified interference
    cache_slowdown: float      # from LLC sharing
    bandwidth_slowdown: float = 1.0  # from memory-bandwidth sharing

    @property
    def total_slowdown(self) -> float:
        return ((1.0 + self.noise_slowdown) * self.cache_slowdown
                * self.bandwidth_slowdown - 1.0)


def run_colocation(
    node: NodeSpec,
    tuning: LinuxTuning,
    tenant: TenantLoad,
    sync_interval: float,
    n_threads: int,
    rng: np.random.Generator,
    n_intervals: int = 400,
) -> dict[IsolationMode, ColocationResult]:
    """Evaluate the primary's slowdown under all three isolation modes."""
    if sync_interval <= 0 or n_threads <= 0:
        raise ConfigurationError("sync_interval and n_threads must be > 0")
    out: dict[IsolationMode, ColocationResult] = {}
    for mode in IsolationMode:
        sources = interference_sources(node, tenant, mode, tuning)
        if sources:
            sampler = BarrierDelaySampler(sources, sync_interval, n_threads)
            noise = float(sampler.sample(n_intervals, rng).mean()) / sync_interval
        else:
            noise = 0.0
        out[mode] = ColocationResult(
            mode=mode,
            noise_slowdown=noise,
            cache_slowdown=llc_slowdown_factor(node, tenant, mode),
            bandwidth_slowdown=bandwidth_slowdown_factor(node, tenant, mode),
        )
    return out
