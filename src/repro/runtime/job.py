"""Batch job model: containers, mcexec, and OS provisioning per job.

On Fugaku "all applications run in Docker containers" (§4.1.1) and
IHK/McKernel is integrated with the proprietary batch system; on OFP
"booting IHK/McKernel entails nothing more than calling a few
privileged mode scripts in the prologue and epilogue of a particular
job" (§5.1).  This module reproduces that lifecycle: a :class:`Job`
describes what the user submits; :class:`BatchSystem.provision` boots
the requested OS personality on each node design, wires the container
cgroups, and returns a handle the experiment runner consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from ..hardware.machines import Machine
from ..kernel.base import OsInstance
from ..kernel.tuning import LinuxTuning, fugaku_production, ofp_default
from ..platform.compose import compose_os


class OsChoice(enum.Enum):
    """Which kernel personality a job requests."""

    LINUX = "linux"
    MCKERNEL = "mckernel"


@dataclass(frozen=True)
class ContainerSpec:
    """Docker image configuration (§4.1.1): admin image or host mode."""

    image: str = "host"
    #: Host mode gives direct access to the host root filesystem.
    host_rootfs: bool = True


@dataclass(frozen=True)
class Job:
    """One batch submission."""

    name: str
    n_nodes: int
    os_choice: OsChoice
    container: ContainerSpec = field(default_factory=ContainerSpec)
    #: Per-job switch the §4.2.1 PMU fix introduced: "a command that
    #: allows users to stop the automatic reading of PMU counters on a
    #: per-job basis".
    stop_pmu_reads: bool = True
    #: Job environment.  §4.1.3: "The allocation scheme (i.e.,
    #: pre-allocation based or demand paging) can be controlled by
    #: specific environment variables" — honoured keys:
    #: ``XOS_MMM_L_PAGING_POLICY`` = "prepage" | "demand" (default).
    env: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        policy = self.env.get("XOS_MMM_L_PAGING_POLICY", "demand")
        if policy not in ("prepage", "demand"):
            raise ConfigurationError(
                f"XOS_MMM_L_PAGING_POLICY must be 'prepage' or 'demand', "
                f"got {policy!r}"
            )

    @property
    def prefault(self) -> bool:
        """Pre-allocation-based scheme requested?"""
        return self.env.get("XOS_MMM_L_PAGING_POLICY", "demand") == "prepage"


@dataclass
class ProvisionedJob:
    """A job with its per-node OS personality booted."""

    job: Job
    machine: Machine
    os_instance: OsInstance

    @property
    def prologue_epilogue_used(self) -> bool:
        """McKernel jobs boot the LWK in the prologue (§5.1)."""
        return self.job.os_choice is OsChoice.MCKERNEL


class BatchSystem:
    """Minimal scheduler front-end for one machine."""

    def __init__(self, machine: Machine,
                 linux_tuning: Optional[LinuxTuning] = None) -> None:
        self.machine = machine
        if linux_tuning is None:
            linux_tuning = (
                fugaku_production()
                if machine.node.arch == "aarch64"
                else ofp_default()
            )
        self.linux_tuning = linux_tuning

    def provision(self, job: Job) -> ProvisionedJob:
        """Boot the requested personality (per-node design; nodes are
        identical so one instance stands for all)."""
        if job.n_nodes > self.machine.n_nodes:
            raise ConfigurationError(
                f"job wants {job.n_nodes} nodes, machine has "
                f"{self.machine.n_nodes}"
            )
        tuning = self.linux_tuning
        if (job.os_choice is OsChoice.LINUX
                and not job.stop_pmu_reads and tuning.stop_pmu_reads):
            # The user kept TCS PMU collection on for this job.
            from dataclasses import replace

            tuning = replace(tuning, stop_pmu_reads=False,
                             name=f"{tuning.name}-pmu-on")
        os_instance = compose_os(self.machine, job.os_choice.value, tuning)
        return ProvisionedJob(job=job, machine=self.machine,
                              os_instance=os_instance)
