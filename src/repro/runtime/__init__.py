"""Runtime layer: binding, batch jobs, and the experiment runner."""

from .binding import (
    RankBinding,
    bind_ranks,
    numa_locality_fraction,
    validate_disjoint,
)
from .job import (
    BatchSystem,
    ContainerSpec,
    Job,
    OsChoice,
    ProvisionedJob,
)
from .colocation import (
    ColocationResult,
    IsolationMode,
    TenantLoad,
    run_colocation,
)
from .delegationsim import (
    DelegationLoadResult,
    capacity_hz,
    saturation_sweep,
    simulate_delegation,
)
from .linuxsim import NodeSimResult, SimCore, simulate_linux_node_fwq
from .nodesim import (
    BspSimResult,
    NoisyCore,
    simulate_bsp,
    validate_against_sampler,
)
from .runner import AppRunner, Breakdown, Comparison, RunResult, compare

__all__ = [
    "ColocationResult",
    "IsolationMode",
    "TenantLoad",
    "run_colocation",
    "DelegationLoadResult",
    "capacity_hz",
    "saturation_sweep",
    "simulate_delegation",
    "NodeSimResult",
    "SimCore",
    "simulate_linux_node_fwq",
    "BspSimResult",
    "NoisyCore",
    "simulate_bsp",
    "validate_against_sampler",
    "RankBinding",
    "bind_ranks",
    "numa_locality_fraction",
    "validate_disjoint",
    "BatchSystem",
    "ContainerSpec",
    "Job",
    "OsChoice",
    "ProvisionedJob",
    "AppRunner",
    "Breakdown",
    "Comparison",
    "RunResult",
    "compare",
]
