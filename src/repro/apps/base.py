"""Bulk-synchronous application model.

The paper's application results (Figs. 5-7) measure how each code's *OS
interaction profile* responds to the two kernels.  A
:class:`WorkloadProfile` captures that profile declaratively:

* **compute** — per-thread work per sync interval (``S`` in Eq. 1) and
  how it scales with node count (strong/weak);
* **communication** — the collective performed each iteration and its
  message size;
* **memory behaviour** — steady-state heap churn (alloc/free per
  iteration, the LULESH effect), working-set size (TLB pressure);
* **init phase** — compute, I/O syscalls and RDMA registrations (the
  GAMERA effect);
* **geometry** — ranks/threads per node on each platform (from the
  paper's artifact appendix);
* **variability** — run-to-run spread producing the paper's error bars
  (large for GeoFEM, §6.4).

The model that turns a profile into seconds lives in
:mod:`repro.runtime.runner`; profiles stay declarative so users can add
applications without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass(frozen=True)
class RankGeometry:
    """MPI geometry on one platform (ranks x threads per node)."""

    ranks_per_node: int
    threads_per_rank: int

    def __post_init__(self) -> None:
        if self.ranks_per_node <= 0 or self.threads_per_rank <= 0:
            raise ConfigurationError("geometry must be positive")

    @property
    def threads_per_node(self) -> int:
        return self.ranks_per_node * self.threads_per_rank


@dataclass(frozen=True)
class InitPhase:
    """One-time startup work per rank."""

    #: Fixed compute/setup seconds per rank.
    compute: float = 0.0
    #: Delegatable I/O syscalls issued (config/mesh reading).
    io_syscalls: int = 0
    #: RDMA registrations: how many regions, how large, and how many
    #: times the set is (re-)registered over the run (multigrid levels x
    #: time steps re-register their communication surfaces).
    reg_count: int = 0
    reg_bytes_each: int = 0
    reg_repeats: int = 1

    def __post_init__(self) -> None:
        if self.compute < 0 or self.io_syscalls < 0:
            raise ConfigurationError("init phase values must be non-negative")
        if self.reg_count < 0 or self.reg_bytes_each < 0 or self.reg_repeats < 1:
            raise ConfigurationError("invalid registration spec")


@dataclass(frozen=True)
class WorkloadProfile:
    """Declarative OS-interaction profile of one application."""

    name: str
    description: str
    #: "strong" (fixed global problem) or "weak" (fixed per-node work).
    scaling: str
    #: Node count the reference values below are quoted at.
    reference_nodes: int
    #: Per-thread compute seconds per sync interval at reference_nodes.
    sync_interval: float
    #: Sync intervals per application step.
    iterations: int
    #: Application steps (GAMERA runs 3; most codes 1 solve).
    steps: int = 1
    #: Collective per iteration: "barrier" | "allreduce" | "halo" |
    #: "halo+allreduce".
    collective: str = "allreduce"
    #: Message bytes per rank per iteration at reference_nodes.
    msg_bytes: int = 8 * 1024
    #: Heap bytes allocated AND freed per thread per iteration at
    #: reference_nodes (glibc returns them to the kernel on Linux;
    #: McKernel's LWK heap retains them — the LULESH mechanism).
    churn_bytes: int = 0
    #: Resident working set per thread at reference_nodes.
    working_set: int = 256 * 1024 * 1024
    #: Memory references per second of compute (TLB pressure).
    refs_per_second: float = 2.0e8
    #: Memory-access locality in [0, 1) for the TLB miss model.
    locality: float = 0.9
    init: InitPhase = field(default_factory=InitPhase)
    #: Platform geometries keyed by machine name fragment ("ofp",
    #: "fugaku"); see :func:`geometry_for`.
    geometry: dict = field(default_factory=dict)
    #: Per-platform churn overrides (machine name fragment -> bytes at
    #: reference_nodes).  The paper's codes have platform-specific
    #: versions with different allocation behaviour (§6.2): GeoFEM's
    #: OFP-optimised build reuses work arrays, while its Fugaku port
    #: reallocates per solver pass.
    churn_override: dict = field(default_factory=dict)
    #: Run-to-run relative standard deviation (error-bar width).
    variability: float = 0.01

    def __post_init__(self) -> None:
        if self.scaling not in ("strong", "weak"):
            raise ConfigurationError(f"unknown scaling {self.scaling!r}")
        if self.reference_nodes <= 0 or self.sync_interval <= 0:
            raise ConfigurationError("reference values must be positive")
        if self.iterations <= 0 or self.steps <= 0:
            raise ConfigurationError("iterations/steps must be positive")
        if self.churn_bytes < 0 or self.working_set <= 0:
            raise ConfigurationError("memory sizes invalid")
        if not 0.0 <= self.locality < 1.0:
            raise ConfigurationError("locality must be in [0, 1)")
        if self.variability < 0:
            raise ConfigurationError("variability must be non-negative")

    # -- scaling rules --------------------------------------------------

    def _shrink(self, n_nodes: int) -> float:
        """Per-thread work factor at ``n_nodes`` relative to reference."""
        if n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        if self.scaling == "weak":
            return 1.0
        return self.reference_nodes / n_nodes

    def sync_interval_at(self, n_nodes: int) -> float:
        return self.sync_interval * self._shrink(n_nodes)

    def msg_bytes_at(self, n_nodes: int) -> int:
        """Strong scaling shrinks halo surfaces with the 2/3 power of
        the per-rank volume."""
        return max(64, int(self.msg_bytes * self._shrink(n_nodes) ** (2.0 / 3.0)))

    def churn_bytes_at(self, n_nodes: int, machine_name: str = "") -> int:
        base = self.churn_bytes
        lname = machine_name.lower()
        for key, value in self.churn_override.items():
            if key in lname:
                base = value
                break
        return int(base * self._shrink(n_nodes))

    def working_set_at(self, n_nodes: int) -> int:
        return max(4096, int(self.working_set * self._shrink(n_nodes)))

    def geometry_for(self, machine_name: str) -> RankGeometry:
        """Geometry for a machine, matched by substring key (defaults to
        4 ranks x 12 threads, the Fugaku convention)."""
        lname = machine_name.lower()
        for key, geo in self.geometry.items():
            if key in lname:
                return geo
        return RankGeometry(ranks_per_node=4, threads_per_rank=12)
