"""LQCD — lattice QCD linear solver (CCS QCD / QWS).

"Benchmarks the performance of a linear equation solver with a large
sparse coefficient matrix ... solves the equation for the O(a)-improved
Wilson-Dirac quarks using the BiCGStab algorithm" [25].  One of the
Fugaku priority applications with platform-optimised versions for both
machines (artifact: fiber-miniapp/ccs-qcd on x86, RIKEN-LQCD/qws on
A64FX).

OS-interaction profile: weak scaling, BiCGStab iterations with halo
exchange + two global reductions per iteration, negligible heap churn,
lattice fits comfortably in large-page TLB reach.  Paper geometry:
OFP 4 ranks x 32 threads; Fugaku 4 x 12.  Results: up to ~25% McKernel
gain at 2k nodes on OFP (Fig. 6a); "almost identical" on Fugaku
(Fig. 7a).
"""

from __future__ import annotations

from ..units import mib
from .base import InitPhase, RankGeometry, WorkloadProfile


def profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="LQCD",
        description="Wilson-Dirac BiCGStab solver, weak scaling",
        scaling="weak",
        reference_nodes=16,
        sync_interval=5e-3,
        iterations=1600,
        collective="halo+allreduce",
        msg_bytes=96 * 1024,
        churn_bytes=0,
        working_set=mib(240),
        refs_per_second=2.0e7,
        locality=0.985,
        init=InitPhase(compute=1.0, io_syscalls=80,
                       reg_count=64, reg_bytes_each=mib(6)),
        geometry={
            "oakforest": RankGeometry(4, 32),
            "fugaku": RankGeometry(4, 12),
            "a64fx": RankGeometry(4, 12),
        },
        variability=0.006,
    )
