"""AMG2013 — parallel algebraic multigrid solver (CORAL suite).

"A parallel algebraic multigrid solver for linear systems arising from
problems on unstructured grids" [21].  OS-interaction profile: weak
scaling, allreduce-dominated V-cycles (dot products in the smoother),
moderate working set, light heap churn from level setup.  The paper
runs it only on OFP (no A64FX-optimised build): McKernel gains up to
~18%, slightly rising with node count (Fig. 5a).
"""

from __future__ import annotations

from ..units import mib
from .base import InitPhase, RankGeometry, WorkloadProfile


def profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="AMG2013",
        description="algebraic multigrid V-cycles, weak scaling (CORAL)",
        scaling="weak",
        reference_nodes=16,
        sync_interval=25e-3,
        iterations=400,
        collective="allreduce",
        msg_bytes=64 * 1024,
        churn_bytes=mib(0.5),
        working_set=mib(300),
        refs_per_second=2.0e7,
        locality=0.98,
        init=InitPhase(compute=2.0, io_syscalls=200,
                       reg_count=64, reg_bytes_each=mib(4)),
        geometry={"oakforest": RankGeometry(16, 16)},
        variability=0.008,
    )
