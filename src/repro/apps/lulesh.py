"""LULESH — Livermore Unstructured Lagrangian Explicit Shock
Hydrodynamics proxy app (CORAL suite).

OS-interaction profile: weak scaling with **heavy per-iteration heap
churn** — LULESH allocates and releases temporary element/nodal arrays
every timestep, and glibc returns them to the kernel, so Linux re-pays
page faults (at base-page granularity under THP, until khugepaged
catches up) plus TLB shootdowns every iteration, while McKernel's LWK
heap retains the memory.  The paper: "the improvement of Lulesh mainly
stems from heap management issues in Linux" [14], with McKernel
reaching ~2x at scale (Fig. 5c).
"""

from __future__ import annotations

from ..units import mib
from .base import InitPhase, RankGeometry, WorkloadProfile


def profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="Lulesh",
        description="shock hydrodynamics with per-step heap churn (CORAL)",
        scaling="weak",
        reference_nodes=8,
        sync_interval=12e-3,
        iterations=500,
        collective="allreduce",
        msg_bytes=32 * 1024,
        churn_bytes=mib(12),
        working_set=mib(220),
        refs_per_second=2.0e7,
        locality=0.98,
        init=InitPhase(compute=1.0, io_syscalls=60,
                       reg_count=32, reg_bytes_each=mib(4)),
        geometry={"oakforest": RankGeometry(8, 32)},
        variability=0.01,
    )
