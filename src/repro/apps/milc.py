"""Milc — MIMD Lattice Computation QCD code (CORAL suite).

"Simulations of four dimensional SU(3) lattice gauge theory" [35].
OS-interaction profile: weak scaling, tight conjugate-gradient
iterations with 4-D halo exchanges plus global sums — a shorter sync
interval than AMG, hence more noise-sensitive.  OFP only; McKernel
gains up to ~22%, growing with scale (Fig. 5b).
"""

from __future__ import annotations

from ..units import mib
from .base import InitPhase, RankGeometry, WorkloadProfile


def profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="Milc",
        description="SU(3) lattice gauge theory CG solver, weak scaling (CORAL)",
        scaling="weak",
        reference_nodes=16,
        sync_interval=15e-3,
        iterations=600,
        collective="halo+allreduce",
        msg_bytes=128 * 1024,
        churn_bytes=0,
        working_set=mib(260),
        refs_per_second=2.5e7,
        locality=0.98,
        init=InitPhase(compute=1.5, io_syscalls=120,
                       reg_count=48, reg_bytes_each=mib(8)),
        geometry={"oakforest": RankGeometry(16, 16)},
        variability=0.008,
    )
