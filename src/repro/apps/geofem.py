"""GeoFEM — 3D linear elasticity by parallel FEM (ICCG solver).

"Solves 3D linear elasticity problems in simple cube geometries ...
Conjugate Gradient solver preconditioned by Incomplete Cholesky
Factorization (ICCG) ... Additive Schwartz Domain Decomposition" [34].
Source obtained directly from Prof. Nakajima (not public).

OS-interaction profile: weak scaling, long ICCG sweeps between
reductions (large sync interval — forward/backward substitution is
serial-ish per block), moderate heap churn from preconditioner work
arrays.  The paper observed *large run-to-run variation even under
McKernel* ("we believe this could be related to the fact that different
measurements run on different nodes") — hence the big ``variability``.
Paper geometry: OFP 16 ranks x 8 threads; Fugaku 4 x 12.  Results: up
to ~6% gain at full-scale OFP (Fig. 6b), ~3% on Fugaku (Fig. 7b).
"""

from __future__ import annotations

from ..units import mib
from .base import InitPhase, RankGeometry, WorkloadProfile


def profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="GeoFEM",
        description="3D elasticity FEM with ICCG solver, weak scaling",
        scaling="weak",
        reference_nodes=16,
        sync_interval=60e-3,
        iterations=250,
        collective="allreduce",
        msg_bytes=48 * 1024,
        # The OFP-optimised build reuses its work arrays (no churn); the
        # Fugaku port reallocates preconditioner arrays per solver pass.
        churn_bytes=0,
        churn_override={"fugaku": mib(32), "a64fx": mib(32)},
        working_set=mib(280),
        refs_per_second=2.0e7,
        locality=0.98,
        init=InitPhase(compute=3.0, io_syscalls=400,
                       reg_count=96, reg_bytes_each=mib(4)),
        geometry={
            "oakforest": RankGeometry(16, 8),
            "fugaku": RankGeometry(4, 12),
            "a64fx": RankGeometry(4, 12),
        },
        variability=0.025,
    )
