"""FWQ — the Fixed Work Quanta noise benchmark (§6.2, LLNL).

FWQ "performs a fixed amount of work in a loop, which contains only
computation and does not access memory nor performs file I/O, it
records the execution time for each loop iteration".  The paper
configures the quantum to ~6.5 ms (largest value below 10 ms on
Fugaku, matching Linux' default timer frequency) and extends FWQ to run
on an arbitrary number of nodes over MPI, measuring all cores
simultaneously and in-situ keeping only the 100 worst nodes.

Both capabilities are reproduced here on top of the noise samplers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..kernel.base import OsInstance
from ..noise.analytic import max_noise_length, noise_lengths, noise_rate
from ..noise.catalog import noise_sources_for
from ..noise.sampler import multi_core_fwq, worst_nodes
from ..noise.source import NoiseSource
from ..units import ms

#: The paper's quantum: ~6.5 ms.
DEFAULT_QUANTUM = 6.5e-3


@dataclass(frozen=True)
class FwqConfig:
    """One FWQ invocation."""

    #: Target work quantum (seconds of pure computation per loop).
    quantum: float = DEFAULT_QUANTUM
    #: Wall-clock length of one measurement, seconds (paper: ~6 minutes).
    duration: float = 360.0
    #: Repetitions (paper: 10 iterations covering one hour).
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.quantum <= 0 or self.duration <= 0 or self.repeats <= 0:
            raise ConfigurationError("FWQ parameters must be positive")
        if self.quantum >= 10e-3:
            raise ConfigurationError(
                "the paper requires the quantum below 10 ms"
            )

    @property
    def iterations_per_run(self) -> int:
        return max(1, int(self.duration / self.quantum))


@dataclass
class FwqResult:
    """Per-iteration timings of one (multi-run) FWQ measurement."""

    quantum: float
    iteration_lengths: np.ndarray  # 1-D, pooled over runs/cores

    @property
    def noise_rate(self) -> float:
        """Eq. 2 metric."""
        return noise_rate(self.iteration_lengths)

    @property
    def max_noise_length(self) -> float:
        """Table 2 metric: T_max - T_min."""
        return max_noise_length(self.iteration_lengths)

    @property
    def noise_lengths(self) -> np.ndarray:
        """Figure 3's series: L_i = T_i - T_min."""
        return noise_lengths(self.iteration_lengths)

    def cdf(self, n_points: int = 256) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of iteration lengths (Figure 4's axes)."""
        lengths = np.sort(self.iteration_lengths)
        idx = np.linspace(0, len(lengths) - 1, n_points).astype(np.int64)
        probs = (idx + 1) / len(lengths)
        return lengths[idx], probs


def run_fwq(
    sources: Sequence[NoiseSource],
    config: FwqConfig,
    rng: np.random.Generator,
) -> FwqResult:
    """Single-core FWQ against an explicit source catalogue.

    All ``repeats`` runs are charged in one batched accumulation
    (:func:`multi_core_fwq` with one "core" per repeat): the event
    draws consume ``rng`` in exactly the order the historical
    per-repeat :func:`fwq_iteration_lengths` loop did, so the pooled
    series is bit-identical — only the per-repeat Python loop and its
    per-repeat charging passes are gone.
    """
    lengths = multi_core_fwq(sources, config.quantum,
                             config.iterations_per_run, config.repeats, rng)
    return FwqResult(quantum=config.quantum,
                     iteration_lengths=lengths.reshape(-1))


def run_fwq_on(
    os_instance: OsInstance,
    config: FwqConfig,
    rng: np.random.Generator,
    include_stragglers: bool = False,
) -> FwqResult:
    """Single-core FWQ under an OS instance's derived catalogue."""
    sources = noise_sources_for(os_instance,
                                include_stragglers=include_stragglers)
    return run_fwq(sources, config, rng)


@dataclass
class FtqResult:
    """Fixed *Time* Quanta output: work completed per fixed window.

    FTQ is FWQ's sibling in the LLNL suite [32]: instead of timing a
    fixed amount of work, it counts work units completed in fixed time
    windows — noise shows up as *missing work*.  Both views are provided
    because FTQ's fixed time base makes spectral analysis of periodic
    noise possible.
    """

    window: float
    work_units: np.ndarray  # units completed per window

    @property
    def max_units(self) -> int:
        return int(self.work_units.max())

    @property
    def lost_work_fraction(self) -> float:
        """Fraction of work capacity lost to noise (Eq. 2's FTQ dual)."""
        peak = self.work_units.max()
        if peak <= 0:
            return 0.0
        return float(1.0 - self.work_units.mean() / peak)

    def noise_windows(self, threshold: float = 0.99) -> int:
        """Windows that lost more than (1 - threshold) of peak work."""
        return int((self.work_units < threshold * self.work_units.max()).sum())


def run_ftq(
    sources: Sequence[NoiseSource],
    rng: np.random.Generator,
    window: float = 1e-3,
    duration: float = 60.0,
    unit_cost: float = 1e-6,
) -> FtqResult:
    """FTQ: count 1 us work units completed per ``window`` under noise.

    Implemented on the same event machinery as FWQ: each window's
    capacity is ``window`` minus the noise landing in it.
    """
    if window <= 0 or duration <= 0 or unit_cost <= 0:
        raise ConfigurationError("FTQ parameters must be positive")
    n_windows = max(1, int(duration / window))
    stolen = np.zeros(n_windows)
    for source in sources:
        starts, durations = source.sample_events(duration, rng)
        if len(starts) == 0:
            continue
        idx = np.minimum((starts / window).astype(np.int64), n_windows - 1)
        np.add.at(stolen, idx, durations)
    available = np.clip(window - stolen, 0.0, window)
    return FtqResult(window=window,
                     work_units=np.floor(available / unit_cost))


@dataclass
class MpiFwqResult:
    """The MPI-parallel FWQ extension's output (Figure 4)."""

    quantum: float
    #: (kept_nodes, iterations) array after worst-node selection.
    node_lengths: np.ndarray
    total_samples_represented: float

    def pooled(self) -> FwqResult:
        return FwqResult(quantum=self.quantum,
                         iteration_lengths=self.node_lengths.ravel())


def run_mpi_fwq(
    os_instance: OsInstance,
    n_nodes: int,
    config: FwqConfig,
    rng: np.random.Generator,
    cores_per_node: int | None = None,
    keep_worst: int = 100,
    max_explicit_nodes: int = 256,
) -> MpiFwqResult:
    """The paper's at-scale FWQ: all cores of ``n_nodes`` measured
    simultaneously, saving only the ``keep_worst`` noisiest nodes.

    Nodes are statistically identical, so at most ``max_explicit_nodes``
    are simulated explicitly (one aggregate core-noise stream per node);
    the result records how many samples the run *represents* so that
    tail extrapolation (:class:`repro.noise.analytic.IterationMixture`)
    can be anchored to it.
    """
    if n_nodes <= 0:
        raise ConfigurationError("n_nodes must be positive")
    sources = noise_sources_for(os_instance, include_stragglers=True)
    if cores_per_node is None:
        cores_per_node = max(1, len(os_instance.app_cpu_ids()))
    explicit = min(n_nodes, max_explicit_nodes)
    n_iter = config.iterations_per_run * config.repeats
    # One representative core per node (cores are iid; pooling per
    # node would only shrink the per-node variance of the mean).  All
    # explicit nodes are charged in a single batched accumulation,
    # bit-identical to the historical per-node loop (multi_core_fwq's
    # draws are node-major, source-minor on the shared stream).
    per_node = multi_core_fwq(sources, config.quantum, n_iter,
                              explicit, rng)
    kept = worst_nodes(per_node, keep_worst)
    return MpiFwqResult(
        quantum=config.quantum,
        node_lengths=kept,
        total_samples_represented=float(n_nodes) * cores_per_node * n_iter,
    )
