"""Workloads: FWQ plus the paper's six applications as BSP profiles."""

from . import amg2013, gamera, geofem, lqcd, lulesh, milc
from .base import InitPhase, RankGeometry, WorkloadProfile
from .fwq import (
    DEFAULT_QUANTUM,
    FtqResult,
    FwqConfig,
    FwqResult,
    MpiFwqResult,
    run_ftq,
    run_fwq,
    run_fwq_on,
    run_mpi_fwq,
)

#: name -> profile factory for every paper application.
ALL_PROFILES = {
    "AMG2013": amg2013.profile,
    "Milc": milc.profile,
    "Lulesh": lulesh.profile,
    "LQCD": lqcd.profile,
    "GeoFEM": geofem.profile,
    "GAMERA": gamera.profile,
}

#: The subsets used per platform in the paper's evaluation (§6.2).
OFP_ONLY_APPS = ("AMG2013", "Milc", "Lulesh")
DUAL_PLATFORM_APPS = ("LQCD", "GeoFEM", "GAMERA")

__all__ = [
    "InitPhase",
    "RankGeometry",
    "WorkloadProfile",
    "FwqConfig",
    "FwqResult",
    "FtqResult",
    "MpiFwqResult",
    "run_ftq",
    "run_fwq",
    "run_fwq_on",
    "run_mpi_fwq",
    "DEFAULT_QUANTUM",
    "ALL_PROFILES",
    "OFP_ONLY_APPS",
    "DUAL_PLATFORM_APPS",
    "amg2013",
    "milc",
    "lulesh",
    "lqcd",
    "geofem",
    "gamera",
]
