"""GAMERA — implicit nonlinear seismic wave propagation (unstructured
low-order FEM, multigrid + mixed-precision CG, matrix-free SpMV).

Received as binary executables from the maintainer (Dr. Fujita); the
profile is constructed from the paper's description and observed OS
sensitivities.

OS-interaction profile: **strong scaling over three application steps**
whose solver re-registers a large RDMA communication surface per
multigrid level and step.  On Fugaku the paper measured McKernel up to
29% ahead at 8k nodes, "significantly better in the first step (out of
three)", with "faster RDMA registration in McKernel due to the LWK
integrated Tofu driver" suspected as a main contributor (§6.4) — under
strong scaling the fixed registration cost grows into the shrinking
compute time, which this profile reproduces.  On OFP, gains (>25% at
half scale, Fig. 6c) are noise-amplification dominated instead, because
THP's compound pages make Linux registration cheap there (see
:mod:`repro.net.rdma`).
"""

from __future__ import annotations

from ..units import gib, mib
from .base import InitPhase, RankGeometry, WorkloadProfile


def profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="GAMERA",
        description="implicit seismic FEM, strong scaling, 3 steps, "
                    "registration-heavy init",
        scaling="strong",
        reference_nodes=1024,
        sync_interval=30e-3,
        iterations=200,
        steps=3,
        collective="halo+allreduce",
        msg_bytes=256 * 1024,
        churn_bytes=mib(8),
        working_set=mib(1400),
        refs_per_second=2.0e7,
        locality=0.98,
        init=InitPhase(
            compute=4.0,
            io_syscalls=600,
            # The communication surface: 512 regions x 16 MiB = 8 GiB
            # per rank, re-registered per multigrid level and step (6x).
            reg_count=512,
            reg_bytes_each=mib(16),
            reg_repeats=6,
        ),
        geometry={
            "oakforest": RankGeometry(8, 8),
            "fugaku": RankGeometry(4, 12),
            "a64fx": RankGeometry(4, 12),
        },
        variability=0.012,
    )
