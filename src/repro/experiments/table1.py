"""TAB1 — Table 1: overview of platforms and Linux runtime settings."""

from __future__ import annotations

from ..hardware.machines import fugaku, oakforest_pacs
from ..kernel.tuning import fugaku_production, ofp_default
from ..units import fmt_bytes
from .report import ExperimentResult, format_table


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate Table 1 from the machine and tuning models (both
    arguments are accepted for registry uniformity; the table is
    deterministic)."""
    ofp = oakforest_pacs()
    fug = fugaku()
    ofp_tune = ofp_default()
    fug_tune = fugaku_production()

    def node_row(attr: str, o, f) -> list:
        return [attr, o, f]

    rows = [
        node_row("CPU model", ofp.node.name, fug.node.name),
        node_row("ISA", ofp.node.arch, fug.node.arch),
        node_row(
            "CPU cores",
            f"{ofp.node.topology.physical_cores}, "
            f"{ofp.node.topology.smt}-way SMT",
            f"{fug.node.topology.physical_cores} "
            f"({fug.node.topology.assistant_cores} assistant), no SMT",
        ),
        node_row(
            "TLB entries (L1/L2)",
            f"{ofp.node.tlb.l1_entries}/{ofp.node.tlb.l2_entries}",
            f"{fug.node.tlb.l1_entries}/{fug.node.tlb.l2_entries}",
        ),
        node_row(
            "Memory",
            " & ".join(
                f"{fmt_bytes(d.size_bytes)} {d.kind.value.upper()}"
                for d in ofp.node.numa
            ),
            f"{fmt_bytes(fug.node.numa.total_bytes())} HBM2",
        ),
        node_row("nohz_full on app cores",
                 "Yes" if ofp_tune.nohz_full else "No",
                 "Yes" if fug_tune.nohz_full else "No"),
        node_row("CPU isolation",
                 "cgroups" if ofp_tune.cgroup_cpu_isolation else "No",
                 "cgroups" if fug_tune.cgroup_cpu_isolation else "No"),
        node_row("IRQ steering",
                 "Routed to OS cores" if ofp_tune.irq_to_assistant
                 else "Balanced across chip",
                 "Routed to OS cores" if fug_tune.irq_to_assistant
                 else "Balanced across chip"),
        node_row("Large page support",
                 ofp_tune.large_pages.value.upper(),
                 fug_tune.large_pages.value.upper()),
        node_row("Peak performance",
                 f"{ofp.peak_pflops:g} PFlops", f"{fug.peak_pflops:g} PFlops"),
        node_row("Compute nodes", f"{ofp.n_nodes:,}", f"{fug.n_nodes:,}"),
        node_row("Interconnect", ofp.interconnect, fug.interconnect),
    ]
    text = format_table(
        ["Attribute", "Oakforest-PACS", "Fugaku"], rows,
        title="Table 1: platforms and Linux runtime settings",
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Overview of platforms and Linux runtime settings",
        data={
            "ofp": {"nodes": ofp.n_nodes, "tlb_l2": ofp.node.tlb.l2_entries},
            "fugaku": {"nodes": fug.n_nodes, "tlb_l2": fug.node.tlb.l2_entries},
        },
        text=text,
        paper_reference={
            "ofp_nodes": 8192,
            "fugaku_nodes": 158976,
            "ofp_tlb_l2": 64,
            "fugaku_tlb_l2": 1024,
        },
    )
