"""Experiment registry: one entry per paper table/figure.

``run_experiment("table2")`` regenerates that artefact; ``run_all``
sweeps everything (the EXPERIMENTS.md generator and the benchmark
harness both drive this registry).
"""

from __future__ import annotations

from typing import Callable

from . import (
    eq1,
    exascale,
    faultsim,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    summary,
    table1,
    table2,
)
from .report import ExperimentResult

#: experiment id -> (title, runner)
EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {
    "table1": ("Platform overview", table1.run),
    "eq1": ("Eq. 1 worked example", eq1.run),
    "table2": ("Noise countermeasure effectiveness", table2.run),
    "fig1": ("Noise impact on BSP apps (conceptual, generated)", fig1.run),
    "fig2": ("IHK/McKernel architecture (live rendering)", fig2.run),
    "fig3": ("FWQ noise time series", fig3.run),
    "fig4": ("FWQ latency CDFs at scale", fig4.run),
    "fig5": ("CORAL apps on OFP", fig5.run),
    "fig6": ("LQCD/GeoFEM/GAMERA on OFP", fig6.run),
    "fig7": ("LQCD/GeoFEM/GAMERA on Fugaku", fig7.run),
    "summary": ("Headline averages", summary.run),
    # Extension (not a paper artefact): the §8 outlook quantified.
    "exascale": ("Projection beyond Fugaku", exascale.run),
    # Extension: §6 operational failures, injected and survived.
    "faults": ("Fault sensitivity at scale", faultsim.run),
}


def run_experiment(experiment_id: str, fast: bool = True, seed: int = 0,
                   jobs: int = 1, cache=None,
                   platform=None) -> ExperimentResult:
    """Run one registered experiment by id.

    ``jobs > 1`` fans the experiment's sweep cells out over worker
    processes; ``cache`` (a :class:`repro.perf.RunCache`) memoizes the
    underlying RunResults.  Both leave the output bit-identical to the
    serial, uncached run.  Defaults inherit any ambient
    :func:`repro.perf.perf_context` (so ``run_all(jobs=4)`` composes).

    ``platform`` (a :class:`repro.platform.PlatformSpec`) re-targets
    the experiment at another platform; only experiments whose runner
    is platform-parameterised accept it.
    """
    engine = _engine_for(jobs, cache)
    return engine.run_experiment(experiment_id, fast=fast, seed=seed,
                                 platform=platform)


def run_all(fast: bool = True, seed: int = 0, jobs: int = 1,
            cache=None) -> dict[str, ExperimentResult]:
    """Run every experiment, in registry order.

    With ``jobs=N`` a single worker pool is shared by all experiments'
    sweeps (fork cost is paid once); ``cache`` deduplicates cells
    repeated across artefacts and invocations.
    """
    from ..engine import ExecutionEngine

    engine = ExecutionEngine.from_options(jobs=jobs, cache=cache)
    return engine.run_experiments(EXPERIMENTS, fast=fast, seed=seed)


def _engine_for(jobs: int, cache):
    """The explicit-knob compatibility shim: default arguments keep
    inheriting the ambient context (so ``run_all(jobs=4)`` composes
    with nested ``run_experiment`` calls exactly as before the
    :class:`~repro.engine.ExecutionEngine` extraction), while any
    explicit knob gets its own engine session."""
    from ..engine import ExecutionEngine

    if jobs != 1 or cache is not None:
        return ExecutionEngine.from_options(jobs=jobs, cache=cache)
    return ExecutionEngine()
