"""Export experiment results to files for plotting and archival.

``pytest benchmarks/`` already writes the paper-style text renderings;
this module additionally exports the machine-readable data: one JSON per
experiment (the full ``data`` dict plus metadata) and one CSV per figure
series, so results drop straight into matplotlib/pandas/gnuplot.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable

from ..errors import ConfigurationError
from .registry import EXPERIMENTS
from .report import ExperimentResult


def _jsonable(value):
    """Coerce numpy scalars/arrays so json.dumps succeeds."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def export_json(result: ExperimentResult, directory: pathlib.Path) -> pathlib.Path:
    """Write one experiment's data + metadata as JSON; returns the path."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.json"
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_reference": _jsonable(result.paper_reference),
        "data": _jsonable(result.data),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def export_series_csv(result: ExperimentResult,
                      directory: pathlib.Path) -> list[pathlib.Path]:
    """For figure-style results (per-app dicts holding ``nodes`` and
    ``relative_performance``), write one CSV per application series."""
    directory.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for app, series in result.data.items():
        if not isinstance(series, dict):
            continue
        nodes = series.get("nodes")
        # A plottable series carries *parallel sequences*; table-style
        # results (e.g. table1) hold scalar "nodes" = the machine's
        # node count and have no per-point series to write.
        if not isinstance(nodes, (list, tuple)) \
                or "relative_performance" not in series:
            continue
        path = directory / f"{result.experiment_id}_{app}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["nodes", "relative_performance", "yerr",
                             "linux_seconds", "mckernel_seconds"])
            for i, nodes in enumerate(series["nodes"]):
                writer.writerow([
                    nodes,
                    series["relative_performance"][i],
                    series.get("yerr", [0.0] * len(series["nodes"]))[i],
                    series.get("linux_seconds", [""] * len(series["nodes"]))[i],
                    series.get("mckernel_seconds",
                               [""] * len(series["nodes"]))[i],
                ])
        written.append(path)
    return written


def export_all(
    directory: str | pathlib.Path,
    ids: Iterable[str] | None = None,
    fast: bool = True,
    seed: int = 0,
    engine=None,
) -> dict[str, list[str]]:
    """Run and export a set of experiments; returns id -> written paths.

    ``engine`` (an :class:`~repro.engine.ExecutionEngine`) selects the
    execution context; the default ambient engine keeps the historical
    behaviour.  The written bytes are identical for any engine — that
    is the whole point of the shared core.
    """
    from ..engine import ExecutionEngine

    if engine is None:
        engine = ExecutionEngine()
    directory = pathlib.Path(directory)
    ids = list(ids) if ids is not None else list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ConfigurationError(f"unknown experiment ids: {unknown}")
    out: dict[str, list[str]] = {}
    for eid in ids:
        result = engine.run_experiment(eid, fast=fast, seed=seed)
        paths = [str(export_json(result, directory))]
        paths += [str(p) for p in export_series_csv(result, directory)]
        (directory / f"{eid}.txt").write_text(result.render() + "\n")
        paths.append(str(directory / f"{eid}.txt"))
        out[eid] = paths
    return out
