"""Terminal figure rendering: the figures as figures.

The experiment harness prints the paper's rows/series; this module
turns those series into axis-labelled ASCII plots so the regenerated
artefacts read like the originals in any terminal and in the committed
benchmark outputs.  No plotting dependency is available offline, and
for CDFs/bar sweeps character resolution is plenty to see the shapes.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ConfigurationError

#: Glyphs assigned to successive series in a multi-line plot.
GLYPHS = "*o+x#@%&"


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.2g}"
    return f"{v:.3g}"


def line_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
) -> str:
    """Render named (xs, ys) series on shared axes.

    ``logx=True`` spaces the x axis logarithmically — right for node
    sweeps over powers of two (Figs. 5-7).
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 16 or height < 4:
        raise ConfigurationError("plot too small")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys) or not xs:
            raise ConfigurationError(f"series {name!r} malformed")
        if logx and any(x <= 0 for x in xs):
            raise ConfigurationError("logx needs positive x values")

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    all_x = [tx(x) for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    # A little headroom so curves don't ride the frame.
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, glyph: str) -> None:
        col = round((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = glyph

    legend = []
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        legend.append(f"{glyph} {name}")
        # Connect points with interpolated samples so lines read as lines.
        for i in range(len(xs) - 1):
            steps = max(2, width // max(1, len(xs) - 1))
            for s in range(steps + 1):
                f = s / steps
                x = 10 ** (tx(xs[i]) * (1 - f) + tx(xs[i + 1]) * f) \
                    if logx else xs[i] * (1 - f) + xs[i + 1] * f
                y = ys[i] * (1 - f) + ys[i + 1] * f
                put(x, y, glyph)
        for x, y in zip(xs, ys):  # emphasise the data points last
            put(x, y, glyph)

    lines = []
    y_top, y_bot = _fmt(y_hi), _fmt(y_lo)
    margin = max(len(y_top), len(y_bot)) + 1
    for r, row in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label:>{margin}} |{''.join(row)}|")
    x_lo_label = _fmt(10 ** x_lo if logx else x_lo)
    x_hi_label = _fmt(10 ** x_hi if logx else x_hi)
    lines.append(f"{'':>{margin}} +{'-' * width}+")
    footer = f"{x_lo_label}{x_label:^{max(0, width - len(x_lo_label) - len(x_hi_label))}}{x_hi_label}"
    lines.append(f"{'':>{margin}}  {footer}")
    lines.append(f"{'':>{margin}}  [{y_label}]  " + "   ".join(legend))
    return "\n".join(lines)


def cdf_plot(
    curves: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 14,
    x_label: str = "iteration length",
) -> str:
    """Convenience wrapper for Fig. 4-style CDFs (y is probability)."""
    return line_plot(curves, width=width, height=height,
                     x_label=x_label, y_label="CDF")
