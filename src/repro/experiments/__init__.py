"""Experiment harness: one module per paper table/figure + registry."""

from .export import export_all, export_json, export_series_csv
from .registry import EXPERIMENTS, run_all, run_experiment
from .report import ExperimentResult, format_series, format_table

__all__ = [
    "export_all",
    "export_json",
    "export_series_csv",
    "EXPERIMENTS",
    "run_all",
    "run_experiment",
    "ExperimentResult",
    "format_series",
    "format_table",
]
