"""FIG5 — Figure 5: CORAL mini-apps on Oakforest-PACS.

AMG2013, Milc and LULESH (x86-only builds, §6.2) across node counts,
McKernel performance normalised to Linux = 1.  Paper shapes: AMG up to
~+18% (slightly rising with scale), Milc up to ~+22%, LULESH up to
~2x, all gains growing as the job scales out.
"""

from __future__ import annotations

from ..platform import PlatformSpec, get_platform
from .appfigs import figure_result, sweep_apps
from .report import ExperimentResult

PAPER_REFERENCE = {
    "AMG2013": "up to ~+18%",
    "Milc": "up to ~+22%",
    "Lulesh": "up to ~2x",
}


def run(fast: bool = True, seed: int = 0,
        platform: PlatformSpec | None = None) -> ExperimentResult:
    if platform is None:
        platform = get_platform("ofp-default")
    counts = [16, 128, 1024, 8192] if fast else [16, 64, 256, 1024, 4096, 8192]
    comps = sweep_apps(
        platform,
        ["AMG2013", "Milc", "Lulesh"],
        counts, n_runs=3 if fast else 5, seed=seed,
    )
    return figure_result(
        "fig5",
        "CORAL application results on Oakforest-PACS (McKernel vs Linux)",
        comps, PAPER_REFERENCE,
    )
