"""Plain-text rendering of experiment outputs.

Every experiment renders to the same shapes the paper prints: tables
with header rows, and series (x, y[, yerr]) blocks for figures.  No
plotting dependency — benches `tee` these to text files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[float],
                  yerr: Sequence[float] | None = None,
                  x_label: str = "x", y_label: str = "y") -> str:
    """One figure series as aligned columns."""
    lines = [f"series: {name}  ({x_label} vs {y_label})"]
    for i, (x, y) in enumerate(zip(xs, ys)):
        err = f"  +/- {yerr[i]:.4g}" if yerr is not None else ""
        lines.append(f"  {str(x):>10}  {y:.4g}{err}")
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Uniform result wrapper: machine-readable data + paper-style text."""

    experiment_id: str
    title: str
    data: dict = field(default_factory=dict)
    text: str = ""
    #: paper-reported reference values for side-by-side display, where
    #: the paper gives concrete numbers.
    paper_reference: dict = field(default_factory=dict)

    def render(self) -> str:
        header = f"=== {self.experiment_id}: {self.title} ==="
        return f"{header}\n{self.text}"
