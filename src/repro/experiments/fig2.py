"""FIG2 — Figure 2: architectural overview of IHK/McKernel.

The paper's Figure 2 is the architecture diagram (Linux + IHK modules
on system cores, McKernel on application cores, proxy processes, IKC,
Docker container integration).  The reproduction renders that diagram
from a *live* booted instance — every box in the output is a real
object in the model, with its actual resource assignment — so the
figure doubles as a structural self-check.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..platform import PlatformSpec, build, get_platform
from ..units import fmt_bytes
from .report import ExperimentResult


def run(fast: bool = True, seed: int = 0,
        platform: PlatformSpec | None = None) -> ExperimentResult:
    if platform is None:
        platform = get_platform("fugaku-mckernel")
    if platform.os_kind != "mckernel":
        raise ConfigurationError(
            "fig2 renders the IHK/McKernel architecture; platform "
            f"{platform.name!r} has os_kind={platform.os_kind!r}")
    # fresh=True: the rendering spawns a live process on the instance,
    # which must not leak pid state into the shared resolution memo.
    resolved = build(platform, fresh=True)
    machine = resolved.machine
    mck = resolved.os_instance
    proc = mck.spawn(memory_scale=0.001)
    proc.syscall("open", "/etc/hosts")  # populate the delegation path

    linux_cpus = mck.system_cpu_ids()
    lwk_cpus = mck.app_cpu_ids()
    part = mck.partition
    width = 66

    def box(lines: list[str]) -> list[str]:
        top = "+" + "-" * (width - 2) + "+"
        out = [top]
        for line in lines:
            out.append("|" + line.ljust(width - 2)[:width - 2] + "|")
        out.append(top)
        return out

    diagram: list[str] = []
    diagram += box([
        " Docker container (user-space customisation, §4.1.1)",
        f"   application binary -> McKernel process pid {proc.pid}",
        f"   proxy process pid {proc.proxy.pid} (Linux side, fd table: "
        f"{proc.proxy.open_fd_count} entries)",
    ])
    diagram.append("            | syscall delegation over IKC "
                   f"(round trip {part.ikc.round_trip * 1e6:.1f} us)")
    diagram.append("            v")
    diagram += box([
        f" Linux (RHEL)                 | McKernel (LWK)",
        f"   CPUs: {linux_cpus}                |   CPUs: "
        f"{lwk_cpus[0]}..{lwk_cpus[-1]} ({len(lwk_cpus)} cores)",
        f"   device drivers, fs, TCS   |   memory: "
        f"{fmt_bytes(part.total_memory())}",
        f"   IHK kernel modules        |   tick-less scheduler, "
        f"{'PicoDriver' if mck.rdma_fast_path else 'no PicoDriver'}",
    ])
    diagram.append("            | IHK: resource partitioning, "
                   "no Linux modification, no reboot")
    diagram.append("            v")
    diagram += box([
        f" {machine.node.name}: "
        f"{machine.node.topology.physical_cores} cores, "
        f"{fmt_bytes(machine.node.numa.total_bytes())} HBM2, "
        f"{machine.interconnect}",
    ])
    proc.exit()

    return ExperimentResult(
        experiment_id="fig2",
        title="Architectural overview of IHK/McKernel (from a live instance)",
        data={
            "linux_cpus": linux_cpus,
            "lwk_cpu_count": len(lwk_cpus),
            "lwk_memory_bytes": part.total_memory(),
            "ikc_round_trip_us": part.ikc.round_trip * 1e6,
            "picodriver": mck.rdma_fast_path,
        },
        text="\n".join(diagram),
        paper_reference={"figure": "architecture diagram (Fig. 2)"},
    )
