"""FIG6 — Figure 6: LQCD, GeoFEM and GAMERA on Oakforest-PACS.

Paper shapes: LQCD gains grow to ~+25% at 2k nodes; GeoFEM reaches
~+6% at full scale with large run-to-run variation; GAMERA exceeds
+25% at half scale (4,096 nodes).
"""

from __future__ import annotations

from ..platform import PlatformSpec, get_platform
from .appfigs import figure_result, sweep_apps
from .report import ExperimentResult

PAPER_REFERENCE = {
    "LQCD": "~+25% at 2k nodes",
    "GeoFEM": "up to ~+6% at full scale, high variance",
    "GAMERA": "> +25% at half scale",
}


def run(fast: bool = True, seed: int = 0,
        platform: PlatformSpec | None = None) -> ExperimentResult:
    if platform is None:
        platform = get_platform("ofp-default")
    n_runs = 3 if fast else 5
    comps = {}
    comps.update(sweep_apps(platform, ["LQCD"],
                            [256, 512, 1024, 2048], n_runs, seed))
    comps.update(sweep_apps(platform, ["GeoFEM"],
                            [16, 128, 1024, 8192] if fast
                            else [16, 64, 256, 1024, 4096, 8192],
                            n_runs, seed))
    comps.update(sweep_apps(platform, ["GAMERA"],
                            [512, 1024, 2048, 4096], n_runs, seed))
    return figure_result(
        "fig6",
        "LQCD / GeoFEM / GAMERA on Oakforest-PACS (McKernel vs Linux)",
        comps, PAPER_REFERENCE,
    )
