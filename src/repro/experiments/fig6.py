"""FIG6 — Figure 6: LQCD, GeoFEM and GAMERA on Oakforest-PACS.

Paper shapes: LQCD gains grow to ~+25% at 2k nodes; GeoFEM reaches
~+6% at full scale with large run-to-run variation; GAMERA exceeds
+25% at half scale (4,096 nodes).
"""

from __future__ import annotations

from ..hardware.machines import oakforest_pacs
from ..kernel.tuning import ofp_default
from .appfigs import figure_result, sweep_apps
from .report import ExperimentResult

PAPER_REFERENCE = {
    "LQCD": "~+25% at 2k nodes",
    "GeoFEM": "up to ~+6% at full scale, high variance",
    "GAMERA": "> +25% at half scale",
}


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    machine = oakforest_pacs()
    tuning = ofp_default()
    n_runs = 3 if fast else 5
    comps = {}
    comps.update(sweep_apps(machine, tuning, ["LQCD"],
                            [256, 512, 1024, 2048], n_runs, seed))
    comps.update(sweep_apps(machine, tuning, ["GeoFEM"],
                            [16, 128, 1024, 8192] if fast
                            else [16, 64, 256, 1024, 4096, 8192],
                            n_runs, seed))
    comps.update(sweep_apps(machine, tuning, ["GAMERA"],
                            [512, 1024, 2048, 4096], n_runs, seed))
    return figure_result(
        "fig6",
        "LQCD / GeoFEM / GAMERA on Oakforest-PACS (McKernel vs Linux)",
        comps, PAPER_REFERENCE,
    )
