"""FIG1 — Figure 1: impact of OS noise on bulk-synchronous applications.

The paper's Figure 1 is the conceptual timeline: ranks compute, one
rank takes an OS-noise hit, and everyone waits at the barrier — the
delay "can be estimated as the maximum length of the noises happening
in the aggregated synchronization interval".

Here the figure is *generated* rather than drawn: four ranks run on
the DES engine, a noise event is injected on one of them mid-interval,
and the emitted timeline (rendered as text) shows exactly the paper's
picture, with the measured interval stretch equal to the injected
noise length.
"""

from __future__ import annotations

import numpy as np

from ..net.mpi import Communicator
from ..sim.engine import Engine
from ..units import ms, to_ms
from .report import ExperimentResult


def _run_timeline(n_ranks: int, n_intervals: int, sync: float,
                  noise_rank: int, noise_interval_idx: int,
                  noise_length: float):
    """Run the BSP section, injecting one noise event; returns per-rank
    segments [(kind, start, end)] and per-interval barrier times."""
    engine = Engine()
    comm = Communicator(engine, n_ranks)
    segments: dict[int, list[tuple[str, float, float]]] = {
        r: [] for r in range(n_ranks)
    }
    barrier_times: list[float] = []

    def rank(r: int):
        for it in range(n_intervals):
            start = engine.now
            yield engine.timeout(sync)
            if r == noise_rank and it == noise_interval_idx:
                segments[r].append(("compute", start, engine.now))
                nstart = engine.now
                yield engine.timeout(noise_length)
                segments[r].append(("noise", nstart, engine.now))
            else:
                segments[r].append(("compute", start, engine.now))
            wait_start = engine.now
            yield from comm.barrier(r)
            if engine.now > wait_start:
                segments[r].append(("wait", wait_start, engine.now))
            if r == 0:
                barrier_times.append(engine.now)

    for r in range(n_ranks):
        engine.process(rank(r), name=f"rank{r}")
    engine.run()
    return segments, barrier_times


def _render(segments, total_time: float, width: int = 68) -> list[str]:
    chars = {"compute": "=", "noise": "#", "wait": "."}
    lines = []
    for r, segs in segments.items():
        row = [" "] * width
        for kind, start, end in segs:
            a = int(start / total_time * (width - 1))
            b = max(a + 1, int(end / total_time * (width - 1)) + 1)
            for i in range(a, min(b, width)):
                row[i] = chars[kind]
        lines.append(f"rank {r}  |{''.join(row)}|")
    return lines


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    sync = ms(1)
    noise_length = ms(0.6)
    segments, barriers = _run_timeline(
        n_ranks=4, n_intervals=5, sync=sync,
        noise_rank=2, noise_interval_idx=2, noise_length=noise_length,
    )
    total = barriers[-1]
    intervals = np.diff([0.0] + barriers)
    lines = ["Figure 1: impact of OS noise on a bulk-synchronous section",
             "(= compute, # OS noise, . barrier wait)", ""]
    lines += _render(segments, total)
    lines += [
        "",
        f"interval lengths (ms): "
        + " ".join(f"{to_ms(t):.2f}" for t in intervals),
        f"one {to_ms(noise_length):.1f} ms noise on one rank stretched "
        f"its interval for ALL ranks by {to_ms(intervals[2] - sync):.1f} ms",
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Impact of OS noise on bulk-synchronous parallel applications",
        data={
            "interval_ms": [to_ms(t) for t in intervals],
            "injected_noise_ms": to_ms(noise_length),
            "delay_ms": to_ms(float(intervals[2]) - sync),
        },
        text="\n".join(lines),
        paper_reference={
            "claim": "delay == max noise length in the interval",
        },
    )
