"""FIG3 — Figure 3: FWQ noise-length time series on Fugaku Linux.

Three panels: (a) all countermeasures enabled, (b) daemon processes
unbound, (c) each remaining technique disabled individually.  Each
series plots L_i = T_i - T_min against sample id (one sample per
~6.5 ms quantum).
"""

from __future__ import annotations

import numpy as np

from ..apps.fwq import FwqConfig
from ..errors import ConfigurationError
from ..noise.analytic import noise_lengths
from ..noise.mitigation import countermeasure_sweep
from ..noise.sampler import fwq_iteration_lengths
from ..platform import PlatformSpec, build, get_platform
from ..sim.rng import fnv1a_64
from ..units import to_us
from .report import ExperimentResult


def run(fast: bool = True, seed: int = 0,
        platform: PlatformSpec | None = None) -> ExperimentResult:
    if platform is None:
        platform = get_platform("a64fx-testbed")
    if platform.os_kind != "linux":
        raise ConfigurationError(
            "fig3 sweeps Linux countermeasures; platform "
            f"{platform.name!r} has os_kind={platform.os_kind!r}")
    config = FwqConfig(duration=120.0 if fast else 360.0)
    series: dict[str, np.ndarray] = {}
    for label, tuning in countermeasure_sweep(platform.resolved_tuning()).items():
        rng = np.random.default_rng([seed, fnv1a_64("fig3/" + label)])
        resolved = build(platform.with_tuning(tuning))
        sources = resolved.noise_sources()
        lengths = fwq_iteration_lengths(
            sources, config.quantum, config.iterations_per_run, rng
        )
        series[label] = noise_lengths(lengths)

    lines = ["Figure 3: FWQ noise-length time series (per-panel summary)",
             f"{'panel (disabled technique)':<32}{'samples':>9}"
             f"{'max L_i (us)':>14}{'samples > 100us':>17}"]
    data = {}
    for label, ls in series.items():
        lines.append(
            f"{label:<32}{len(ls):>9}{to_us(float(ls.max())):>14.2f}"
            f"{int((ls > 100e-6).sum()):>17}"
        )
        # Keep a decimated series for plotting (every 16th sample plus
        # every sample above 100 us, as the paper's dots emphasise).
        idx = np.union1d(np.arange(0, len(ls), 16), np.nonzero(ls > 100e-6)[0])
        data[label] = {
            "sample_id": idx.tolist(),
            "noise_us": [to_us(float(v)) for v in ls[idx]],
            "max_us": to_us(float(ls.max())),
        }
    return ExperimentResult(
        experiment_id="fig3",
        title="Impact of individual noise countermeasures (FWQ time series)",
        data=data,
        text="\n".join(lines),
        paper_reference={
            "all-on max": "~50 us",
            "daemons unbound max": "~20 ms",
            "others": "hundreds of us",
        },
    )
