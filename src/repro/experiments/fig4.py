"""FIG4 — Figure 4: FWQ latency CDFs at scale.

Five curves, as in the paper:

* OFP, 1,024 nodes: Linux vs IHK/McKernel;
* Fugaku: Linux at full scale (158,976 nodes), Linux on 24 racks
  (9,216 nodes), McKernel on 24 racks.

Each configuration runs ten ~6-minute FWQ measurements on every
application core.  The pooled distribution is evaluated with the exact
iteration-length mixture (machine scale enters through the pool's
sample count, which controls how deep into the tail the observed
maximum reaches), and cross-validated against the Monte-Carlo
MPI-FWQ with its worst-100-node in-situ selection.
"""

from __future__ import annotations

import numpy as np

from ..apps.fwq import DEFAULT_QUANTUM, FwqConfig, run_mpi_fwq
from ..hardware.machines import NODES_PER_RACK
from ..noise.analytic import IterationMixture
from ..platform import ResolvedPlatform, build, get_platform
from ..sim.rng import fnv1a_64
from ..units import to_ms
from .report import ExperimentResult, format_table


def _curve(
    resolved: ResolvedPlatform,
    n_nodes: int,
    cores_per_node: int,
    config: FwqConfig,
    seed: int,
    mc_nodes: int,
) -> dict:
    os_instance = resolved.os_instance
    sources = resolved.noise_sources()
    n_iter = config.iterations_per_run * config.repeats
    pool = float(n_nodes) * cores_per_node * n_iter
    if sources:
        mixture = IterationMixture(sources, config.quantum)
        xs, cdf = mixture.cdf_curve(n_points=256, n_samples=pool)
        quantiles = {
            "p50": mixture.quantile(0.5),
            "p999": mixture.quantile(0.999),
            "p999999": mixture.quantile(0.999999),
            "expected_max": mixture.expected_max(pool),
        }
    else:
        xs = np.array([config.quantum, config.quantum])
        cdf = np.array([1.0, 1.0])
        quantiles = {k: config.quantum
                     for k in ("p50", "p999", "p999999", "expected_max")}
    # Monte-Carlo cross-check on an explicit node subset.
    rng = np.random.default_rng([seed, fnv1a_64(os_instance.kind), n_nodes])
    mc = run_mpi_fwq(os_instance, min(n_nodes, mc_nodes), config, rng,
                     cores_per_node=cores_per_node,
                     max_explicit_nodes=mc_nodes)
    mc_max = float(mc.node_lengths.max())
    return {
        "lengths_ms": [to_ms(float(x)) for x in xs],
        "cdf": [float(c) for c in cdf],
        "quantiles_ms": {k: to_ms(v) for k, v in quantiles.items()},
        "mc_observed_max_ms": to_ms(mc_max),
        "pool_samples": pool,
    }


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    config = FwqConfig(
        quantum=DEFAULT_QUANTUM,
        duration=60.0 if fast else 360.0,
        repeats=2 if fast else 10,
    )
    mc_nodes = 24 if fast else 128

    ofp_linux = build(get_platform("ofp-default"))
    ofp_mck = build(get_platform("ofp-mckernel"))
    fug_linux = build(get_platform("fugaku-production"))
    fug_mck = build(get_platform("fugaku-mckernel"))

    racks24 = 24 * NODES_PER_RACK
    curves = {
        "OFP Linux (1,024 nodes)": _curve(
            ofp_linux, 1024, 256, config, seed, mc_nodes),
        "OFP McKernel (1,024 nodes)": _curve(
            ofp_mck, 1024, 256, config, seed, mc_nodes),
        "Fugaku Linux (full scale)": _curve(
            fug_linux, fug_linux.machine.n_nodes, 48, config, seed,
            mc_nodes),
        "Fugaku Linux (24 racks)": _curve(
            fug_linux, racks24, 48, config, seed + 1, mc_nodes),
        "Fugaku McKernel (24 racks)": _curve(
            fug_mck, racks24, 48, config, seed, mc_nodes),
    }

    rows = []
    for name, c in curves.items():
        q = c["quantiles_ms"]
        rows.append([
            name,
            f"{q['p50']:.2f}",
            f"{q['p999']:.2f}",
            f"{q['expected_max']:.2f}",
            f"{c['mc_observed_max_ms']:.2f}",
        ])
    text = format_table(
        ["Configuration", "P50 (ms)", "P99.9 (ms)",
         "expected max (ms)", "MC max (ms, subset)"],
        rows,
        title="Figure 4: FWQ latency distribution tails "
              f"(quantum {to_ms(config.quantum):.1f} ms)",
    )
    # The tail view (1 - CDF, log x): where the five curves separate.
    from .asciiplot import line_plot

    tail_curves = {}
    for name, c in curves.items():
        xs = [x for x in c["lengths_ms"] if x > 0]
        sf = [max(1e-12, 1.0 - v) for v in c["cdf"][: len(xs)]]
        # Plot log10 of the survival probability against length.
        tail_curves[name] = (xs, [np.log10(s) for s in sf])
    text += "\n\n" + line_plot(
        tail_curves, x_label="iteration length (ms)",
        y_label="log10 P(length > x)", height=14,
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="FWQ latency CDF on OFP and Fugaku, Linux vs McKernel",
        data=curves,
        text=text,
        paper_reference={
            "ofp_linux_max_ms": 24.0,
            "ofp_mckernel_max_ms": "< 7",
            "fugaku_linux_full_max_ms": 10.0,
            "fugaku_24rack_vs_mckernel": "only slightly worse",
        },
    )
