"""EQ1 — the §2 worked example of the noise-delay estimate.

"OS noise could slow down an application with N = 100,000 threads with
S = 250 us synchronization interval by 20% with a machine with only one
noise group with L1 = 1 ms and I1 = 500 s."

The experiment evaluates Eq. 1 in closed form and cross-checks it with
the Monte-Carlo barrier-delay sampler (which draws actual max-order
statistics instead of the paper's upper-bound estimate), plus the
full-Fugaku observation that even a once-per-600 s noise hits some
thread essentially every interval at N = 7,630,848.
"""

from __future__ import annotations

import numpy as np

from ..noise.analytic import NoiseGroup, eq1_delay
from ..noise.sampler import BarrierDelaySampler
from ..noise.source import NoiseSource, Occurrence
from ..sim.distributions import Fixed
from ..units import ms, us
from .report import ExperimentResult, format_table


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    n_threads = 100_000
    sync = us(250)
    group = NoiseGroup(length=ms(1), interval=500.0)
    analytic = eq1_delay([group], sync, n_threads)

    source = NoiseSource(
        name="eq1-example",
        interval=group.interval,
        duration=Fixed(group.length),
        occurrence=Occurrence.POISSON,
    )
    sampler = BarrierDelaySampler([source], sync, n_threads)
    rng = np.random.default_rng(seed)
    n_intervals = 20_000 if fast else 200_000
    mc = sampler.expected_slowdown(n_intervals, rng)

    # Full-Fugaku hit probability for a 600 s noise (§6.3 discussion).
    full_n = 7_630_848
    p_hit = 1.0 - (1.0 - sync / 600.0) ** full_n

    rows = [
        ["Eq. 1 closed form", f"{analytic * 100:.1f}%"],
        ["Monte-Carlo sampler", f"{mc * 100:.1f}%"],
        ["Paper's figure", "20%"],
        ["P(hit) @ full Fugaku, I=600s", f"{p_hit:.4f}"],
    ]
    return ExperimentResult(
        experiment_id="eq1",
        title="Noise delay estimate worked example (Eq. 1)",
        data={
            "analytic": analytic,
            "monte_carlo": mc,
            "full_fugaku_hit_probability": p_hit,
        },
        text=format_table(["Quantity", "Value"], rows),
        paper_reference={"slowdown": 0.20, "hit_probability": "close to 1"},
    )
