"""TAB2 — Table 2: effectiveness of individual noise-elimination
techniques, measured with FWQ on the 16-node A64FX testbed (§6.3).

For each row, one countermeasure is disabled against the fully-tuned
baseline and FWQ (~6.5 ms quanta) reports the maximum noise length and
the Eq. 2 noise rate.
"""

from __future__ import annotations

import numpy as np

from ..apps.fwq import FwqConfig, run_fwq
from ..errors import ConfigurationError
from ..noise.mitigation import TABLE2_PAPER, countermeasure_sweep
from ..noise.sampler import multi_core_fwq
from ..platform import PlatformSpec, build, get_platform
from ..sim.rng import fnv1a_64
from ..units import to_us
from .report import ExperimentResult, format_table


def run(fast: bool = True, seed: int = 0,
        platform: PlatformSpec | None = None) -> ExperimentResult:
    """``fast`` samples 4 cores x ~10 minutes per row; the full mode
    samples 16 cores x 1 hour (closer to the paper's pooled volume)."""
    if platform is None:
        platform = get_platform("a64fx-testbed")
    if platform.os_kind != "linux":
        raise ConfigurationError(
            "table2 sweeps Linux countermeasures; platform "
            f"{platform.name!r} has os_kind={platform.os_kind!r}")
    config = FwqConfig(duration=600.0 if fast else 3600.0)
    n_cores = 4 if fast else 16
    rows = []
    data: dict[str, dict] = {}
    base_tuning = platform.resolved_tuning()
    for label, tuning in countermeasure_sweep(base_tuning).items():
        rng = np.random.default_rng([seed, fnv1a_64(label)])
        resolved = build(platform.with_tuning(tuning))
        sources = resolved.noise_sources()
        lengths = multi_core_fwq(
            sources, config.quantum, config.iterations_per_run,
            n_cores, rng,
        ).ravel()
        # One reduction pass each for min/max, then in-place noise-rate
        # arithmetic: `lengths` is a fresh buffer (ravel of the batch
        # result), so (L - t_min) / t_min reuses it instead of
        # materialising two temporaries the size of the pooled series.
        t_min = float(lengths.min())
        max_noise = float(lengths.max()) - t_min
        np.subtract(lengths, t_min, out=lengths)
        np.divide(lengths, t_min, out=lengths)
        rate = float(lengths.mean())
        paper_max, paper_rate = TABLE2_PAPER[label]
        rows.append([
            label,
            f"{to_us(max_noise):.2f}",
            f"{rate:.2e}",
            f"{paper_max:.2f}",
            f"{paper_rate:.2e}",
        ])
        data[label] = {
            "max_noise_us": to_us(max_noise),
            "noise_rate": rate,
            "paper_max_us": paper_max,
            "paper_rate": paper_rate,
        }
    text = format_table(
        ["Disabled technique", "Max noise (us)", "Noise rate",
         "Paper max (us)", "Paper rate"],
        rows,
        title="Table 2: effectiveness of individual noise elimination "
              "techniques (FWQ, A64FX testbed)",
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Effectiveness of individual noise elimination techniques",
        data=data,
        text=text,
        paper_reference=dict(TABLE2_PAPER),
    )
