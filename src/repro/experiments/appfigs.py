"""Shared machinery for the application figures (Figs. 5-7).

Each figure is a node-count sweep of Linux-normalised McKernel
performance for a set of applications on one *platform* — a
declarative :class:`~repro.platform.spec.PlatformSpec` resolved
through :func:`repro.platform.build`, so a figure can be re-run on a
user-defined machine purely from JSON.
"""

from __future__ import annotations

from ..platform import PlatformSpec, sweep_platform_apps
from ..runtime.runner import Comparison
from .asciiplot import line_plot
from .report import ExperimentResult, format_series, format_table


def sweep_apps(
    platform: PlatformSpec,
    apps: list[str],
    node_counts: list[int],
    n_runs: int,
    seed: int,
    jobs: int | None = None,
    cache=None,
) -> dict[str, list[Comparison]]:
    """Linux-vs-McKernel comparisons for every (app, node count).

    Both OS personalities are derived from ``platform`` and the full
    (app, OS, n_nodes) cell grid is flattened into one
    :func:`repro.perf.execute_cells` fan-out so a parallel context
    keeps all workers busy across application boundaries; results are
    reassembled in (app, node count) order, bit-identical to a serial
    sweep.
    """
    return sweep_platform_apps(platform, apps, node_counts, n_runs,
                               seed, jobs=jobs, cache=cache)


def figure_result(
    experiment_id: str,
    title: str,
    comparisons: dict[str, list[Comparison]],
    paper_reference: dict,
) -> ExperimentResult:
    blocks = []
    data: dict[str, dict] = {}
    rows = []
    for app, comps in comparisons.items():
        xs = [c.n_nodes for c in comps]
        ys = [c.relative_performance for c in comps]
        yerr = [
            (c.linux.std_time / c.linux.mean_time
             + c.mckernel.std_time / c.mckernel.mean_time) * c.relative_performance
            for c in comps
        ]
        blocks.append(format_series(
            f"{app} (McKernel relative to Linux=1.0)", xs, ys, yerr,
            x_label="nodes", y_label="relative perf",
        ))
        data[app] = {
            "nodes": xs,
            "relative_performance": ys,
            "yerr": yerr,
            "linux_seconds": [c.linux.mean_time for c in comps],
            "mckernel_seconds": [c.mckernel.mean_time for c in comps],
        }
        best = max(comps, key=lambda c: c.relative_performance)
        rows.append([app, f"{best.n_nodes}",
                     f"+{best.speedup_percent:.1f}%"])
    summary = format_table(["Application", "at nodes", "peak McKernel gain"],
                           rows, title="peak gains")
    plot = line_plot(
        {app: (d["nodes"], d["relative_performance"])
         for app, d in data.items()},
        x_label="nodes", y_label="McKernel rel. perf (Linux = 1)",
        logx=True,
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        data=data,
        text="\n\n".join(blocks + [plot, summary]),
        paper_reference=paper_reference,
    )
