"""FAULTS — extension experiment: job survival at pre-exascale node
counts, Linux vs McKernel.

Not a paper artefact — the reliability companion to the ``exascale``
projection.  §6 recounts what actually broke in production: node
health daemons OOM-killing proxy processes, wedged IKC doorbells,
plain node failures whose frequency grows with job size.  This
experiment drives the batch scheduler (:mod:`repro.runtime.batchsched`)
through a fixed synthetic job mix under one seeded
:class:`~repro.faults.FaultSpec` while scaling the machine, and
reports **job success rate** and **effective utilization** (goodput:
only completed jobs' payload node-seconds count; prologues,
checkpoint writes, daemon stalls and aborted attempts count zero).

The fault exposure is OS-asymmetric, mirroring the paper's
architecture: daemon stalls hit Linux jobs only (the LWK runs no
daemons), proxy crashes hit McKernel jobs only, node failures and OOM
kills hit both, and McKernel pays its per-job boot prologue on every
restart.  Everything is driven by the in-process DES, so the result is
bit-identical for any ``--jobs`` value and across repeated runs.
"""

from __future__ import annotations

from ..faults import FaultSpec
from ..runtime.batchsched import BatchJob, BatchScheduler
from ..runtime.job import OsChoice
from ..sim.engine import Engine
from .report import ExperimentResult, format_table

#: The per-node fault environment, scale-invariant by construction:
#: rates are per node-hour, so doubling the machine doubles the draw.
BASE_FAULTS = FaultSpec(
    node_mtbf_hours=8000.0,          # ~1 failure / node-year
    oom_per_node_hour=4e-6,
    proxy_crash_per_node_hour=2e-5,  # McKernel jobs only
    daemon_stall_per_node_hour=5e-4,  # Linux jobs only
    daemon_stall_seconds=30.0,
    max_retries=3,
    backoff_base=60.0,
    checkpoint_interval=1800.0,
    checkpoint_cost=60.0,
)


def _workload(n_nodes: int) -> list[BatchJob]:
    """A deterministic mixed queue filling the machine several times
    over: capability jobs (half machine), mid-size, and small fillers."""
    jobs = []
    for i in range(3):
        jobs.append(BatchJob(
            f"cap{i}", n_nodes // 2, runtime=7200.0, estimate=8000.0))
    for i in range(6):
        jobs.append(BatchJob(
            f"mid{i}", n_nodes // 4, runtime=3600.0 * (1 + i % 2),
            estimate=3600.0 * (1 + i % 2) + 600.0))
    for i in range(4):
        jobs.append(BatchJob(
            f"small{i}", max(1, n_nodes // 16), runtime=1800.0,
            estimate=2400.0))
    return jobs


def _run_os(os_choice: OsChoice, n_nodes: int, faults: FaultSpec) -> dict:
    engine = Engine()
    sched = BatchScheduler(engine, total_nodes=n_nodes, faults=faults)
    for job in _workload(n_nodes):
        job.os_choice = os_choice
        sched.submit(job)
    makespan = engine.run()
    report = sched.fault_report()
    report["effective_utilization"] = sched.effective_utilization(makespan)
    report["makespan_hours"] = makespan / 3600.0
    return report


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    node_counts = [512, 2048] if fast else [512, 2048, 8192, 32768]
    faults = BASE_FAULTS.with_(seed=seed)

    data: dict = {"fault_spec": faults.to_dict(), "node_counts": node_counts,
                  "by_os": {}}
    rows = []
    for os_choice in (OsChoice.LINUX, OsChoice.MCKERNEL):
        per_scale = []
        for n in node_counts:
            report = _run_os(os_choice, n, faults)
            per_scale.append(report)
            rows.append([
                os_choice.value, n,
                f"{report['success_rate'] * 100:.1f}%",
                f"{report['effective_utilization'] * 100:.1f}%",
                report["retries"],
                f"{report['lost_payload_seconds'] / 3600.0:.2f}",
            ])
        data["by_os"][os_choice.value] = per_scale

    text = format_table(
        ["OS", "Nodes", "Success", "Eff. util", "Retries", "Lost (h)"],
        rows,
        title="Extension: job survival under injected faults "
              f"(seeded spec, mtbf={faults.node_mtbf_hours:.0f} h/node; "
              "goodput counts completed payload only)",
    )
    return ExperimentResult(
        experiment_id="faults",
        title="Fault sensitivity at scale (Linux vs McKernel)",
        data=data,
        text=text,
        paper_reference={
            "claim": "§6: production failures (daemon OOM kills, proxy "
                     "process deaths) dominated McKernel's operational "
                     "cost; frequency grows with job size x walltime",
        },
    )
