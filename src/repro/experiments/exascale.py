"""EXA — extension experiment: projecting the comparison beyond Fugaku.

Not a paper artefact — the quantified version of its §8 outlook.  The
conclusion argues the LWK's residual advantage comes from noise terms
that grow with thread count (Eq. 1), so the natural question is: at
what scale does even the *highly tuned* Linux fall behind again?

The experiment holds Fugaku's production tuning fixed and scales the
machine (hypothetical 2x/4x/8x node counts, same node design), running
the LQCD and GeoFEM profiles, plus the FWQ noise floor: the residual
sar noise that costs ~0.5% at 8k nodes compounds toward the max-length
ceiling as N grows.
"""

from __future__ import annotations

from ..platform import PlatformSpec, compare_platforms, get_platform
from .report import ExperimentResult, format_table


def run(fast: bool = True, seed: int = 0,
        platform: PlatformSpec | None = None) -> ExperimentResult:
    if platform is None:
        platform = get_platform("fugaku-production")
    base = platform.resolved_machine()
    scales = [1, 2, 4] if fast else [1, 2, 4, 8]

    rows = []
    data: dict[str, dict] = {}
    for app in ("LQCD", "GeoFEM"):
        gains = []
        for scale in scales:
            n_nodes = base.n_nodes * scale
            scaled = platform.with_machine(
                n_nodes=n_nodes, name=f"{base.name}-x{scale}")
            comp = compare_platforms(scaled, app, [n_nodes],
                                     n_runs=3 if fast else 5,
                                     seed=seed)[0]
            gains.append(comp.speedup_percent)
        data[app] = {
            "scale_factors": scales,
            "node_counts": [base.n_nodes * s for s in scales],
            "mckernel_gain_percent": gains,
        }
        rows.append([app] + [f"{g:+.1f}%" for g in gains])
    text = format_table(
        ["Application"] + [f"{s}x Fugaku" for s in scales],
        rows,
        title="Extension: full-machine McKernel gain vs hypothetical "
              "machine scale (production Linux tuning held fixed)",
    )
    return ExperimentResult(
        experiment_id="exascale",
        title="Projection beyond Fugaku (§8 outlook, quantified)",
        data=data,
        text=text,
        paper_reference={
            "claim": "LWKs 'have the potential to outperform Linux at "
                     "extreme scale' — the gap should reopen with N",
        },
    )
