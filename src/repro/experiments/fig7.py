"""FIG7 — Figure 7: LQCD, GeoFEM and GAMERA on Fugaku.

Paper shapes against the *highly tuned* Linux: LQCD performs almost
identically on the two kernels; GeoFEM shows ~+3% roughly independent
of scale; only GAMERA's gain grows with node count, reaching ~+29% at
8k nodes (init-phase RDMA registration, §6.4).  Measurements go up to
24 racks' worth of nodes, as in the paper.
"""

from __future__ import annotations

from ..platform import PlatformSpec, get_platform
from .appfigs import figure_result, sweep_apps
from .report import ExperimentResult

PAPER_REFERENCE = {
    "LQCD": "almost identical",
    "GeoFEM": "~+3%, roughly constant",
    "GAMERA": "up to +29% at 8k nodes",
}


def run(fast: bool = True, seed: int = 0,
        platform: PlatformSpec | None = None) -> ExperimentResult:
    if platform is None:
        platform = get_platform("fugaku-production")
    counts = [512, 2048, 8192] if fast else [512, 1024, 2048, 4096, 8192]
    comps = sweep_apps(
        platform,
        ["LQCD", "GeoFEM", "GAMERA"],
        counts, n_runs=3 if fast else 5, seed=seed,
    )
    return figure_result(
        "fig7",
        "LQCD / GeoFEM / GAMERA on Fugaku (McKernel vs highly tuned Linux)",
        comps, PAPER_REFERENCE,
    )
