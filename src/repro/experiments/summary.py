"""AVG — the headline claim.

"On Fugaku we observe an average of 4% speedup across all our
experiments, with a few exceptions where the LWK outperforms Linux by
up to 29%" — while on the moderately tuned OFP, McKernel consistently
and significantly outperforms Linux (up to ~2x).
"""

from __future__ import annotations

import numpy as np

from . import fig5, fig6, fig7
from .report import ExperimentResult, format_table


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    fug = fig7.run(fast=fast, seed=seed)
    ofp5 = fig5.run(fast=fast, seed=seed)
    ofp6 = fig6.run(fast=fast, seed=seed)

    def gains(result) -> list[float]:
        out = []
        for app_data in result.data.values():
            out.extend(
                (r - 1.0) * 100.0 for r in app_data["relative_performance"]
            )
        return out

    fugaku_gains = gains(fug)
    ofp_gains = gains(ofp5) + gains(ofp6)
    rows = [
        ["Fugaku mean gain", f"{np.mean(fugaku_gains):+.1f}%", "~+4%"],
        ["Fugaku max gain", f"{np.max(fugaku_gains):+.1f}%", "+29%"],
        ["OFP mean gain", f"{np.mean(ofp_gains):+.1f}%", "consistently positive"],
        ["OFP max gain", f"{np.max(ofp_gains):+.1f}%", "~+100% (2x, LULESH)"],
        ["Fugaku measurements", f"{len(fugaku_gains)}", ""],
        ["OFP measurements", f"{len(ofp_gains)}", ""],
    ]
    return ExperimentResult(
        experiment_id="summary",
        title="Headline comparison: LWK vs moderately/highly tuned Linux",
        data={
            "fugaku_mean_gain_percent": float(np.mean(fugaku_gains)),
            "fugaku_max_gain_percent": float(np.max(fugaku_gains)),
            "ofp_mean_gain_percent": float(np.mean(ofp_gains)),
            "ofp_max_gain_percent": float(np.max(ofp_gains)),
        },
        text=format_table(["Quantity", "Measured", "Paper"], rows,
                          title="Headline results"),
        paper_reference={"fugaku_mean": "+4%", "fugaku_max": "+29%"},
    )
