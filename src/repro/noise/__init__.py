"""OS noise: sources, samplers, analytic models, countermeasures."""

from .analytic import (
    IterationMixture,
    NoiseGroup,
    eq1_delay,
    groups_from_sources,
    max_noise_length,
    noise_lengths,
    noise_rate,
)
from .catalog import (
    khugepaged_source,
    noise_sources_for,
    straggler_source,
    total_duty_cycle,
)
from .injection import (
    InjectionSpec,
    SensitivityPoint,
    inject_and_measure,
    sensitivity_sweep,
)
from .mitigation import TABLE2_PAPER, TABLE2_ROWS, countermeasure_sweep
from .spectral import SpectralPeak, find_periodic_noise, noise_spectrum
from .sampler import (
    BarrierDelaySampler,
    fwq_iteration_lengths,
    multi_core_fwq,
    worst_nodes,
)
from .source import NoiseSource, Occurrence, irq_source, tick_source

__all__ = [
    "IterationMixture",
    "NoiseGroup",
    "eq1_delay",
    "groups_from_sources",
    "max_noise_length",
    "noise_lengths",
    "noise_rate",
    "khugepaged_source",
    "noise_sources_for",
    "straggler_source",
    "total_duty_cycle",
    "TABLE2_PAPER",
    "TABLE2_ROWS",
    "countermeasure_sweep",
    "InjectionSpec",
    "SensitivityPoint",
    "inject_and_measure",
    "sensitivity_sweep",
    "SpectralPeak",
    "find_periodic_noise",
    "noise_spectrum",
    "BarrierDelaySampler",
    "fwq_iteration_lengths",
    "multi_core_fwq",
    "worst_nodes",
    "NoiseSource",
    "Occurrence",
    "irq_source",
    "tick_source",
]
