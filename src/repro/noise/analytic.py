"""Closed-form noise models: Eq. 1, Eq. 2, and the at-scale FWQ tail.

The paper's analytic apparatus is reproduced exactly:

* **Eq. 1** — expected relative delay of a bulk-synchronous application
  from grouped noise statistics;
* **Eq. 2** — the noise *rate* metric of Table 2;
* ``max_noise_length`` — Table 2's other metric, T_max - T_min;
* :class:`IterationMixture` — the exact iteration-length distribution of
  FWQ under a source catalogue, which is how the Figure 4 CDF is
  evaluated at the full 158,976-node scale where direct simulation of
  ~4e11 iterations is impossible on any machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .source import NoiseSource, Occurrence


# ----------------------------------------------------------------------
# Eq. 1
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class NoiseGroup:
    """One group of noises as in Eq. 1: length L_i, interval I_i."""

    length: float
    interval: float

    def __post_init__(self) -> None:
        if self.length < 0 or self.interval <= 0:
            raise ConfigurationError("need length >= 0 and interval > 0")


def eq1_delay(groups: Sequence[NoiseGroup], sync_interval: float,
              n_threads: int) -> float:
    """Eq. 1: estimated relative delay of a bulk-synchronous app.

        max_i ( (1 - (1 - S/I_i)^N) * L_i / S )

    Returns the relative slowdown (0.2 == 20%).  ``S/I`` is clamped to 1
    (a noise more frequent than the sync interval hits every interval).
    """
    if sync_interval <= 0:
        raise ConfigurationError("sync_interval must be positive")
    if n_threads <= 0:
        raise ConfigurationError("n_threads must be positive")
    worst = 0.0
    for g in groups:
        p_single = min(1.0, sync_interval / g.interval)
        # (1-p)^N underflows for large N; use expm1/log1p.
        if p_single >= 1.0:
            p_any = 1.0
        else:
            p_any = -math.expm1(n_threads * math.log1p(-p_single))
        worst = max(worst, p_any * g.length / sync_interval)
    return worst


def groups_from_sources(sources: Sequence[NoiseSource]) -> list[NoiseGroup]:
    """Lower a source catalogue to Eq. 1 groups, using each source's
    maximum length (the paper's conservative convention: delay is
    estimated from the *max* noise length per group)."""
    return [NoiseGroup(length=s.max_length, interval=s.interval)
            for s in sources]


# ----------------------------------------------------------------------
# Eq. 2 and Table 2 metrics
# ----------------------------------------------------------------------

def noise_rate(iteration_lengths: np.ndarray) -> float:
    """Eq. 2: sum((T_i - T_min) / T_min) / n over FWQ iterations."""
    t = np.asarray(iteration_lengths, dtype=float)
    if t.size == 0:
        raise ConfigurationError("no iterations")
    t_min = t.min()
    if t_min <= 0:
        raise ConfigurationError("iteration lengths must be positive")
    return float(((t - t_min) / t_min).mean())


def max_noise_length(iteration_lengths: np.ndarray) -> float:
    """Table 2's maximum noise length: T_max - T_min."""
    t = np.asarray(iteration_lengths, dtype=float)
    if t.size == 0:
        raise ConfigurationError("no iterations")
    return float(t.max() - t.min())


def noise_lengths(iteration_lengths: np.ndarray) -> np.ndarray:
    """Figure 3's per-sample noise length: L_i = T_i - T_min."""
    t = np.asarray(iteration_lengths, dtype=float)
    return t - t.min()


# ----------------------------------------------------------------------
# Iteration-length mixture (Figure 4 at scale)
# ----------------------------------------------------------------------

class IterationMixture:
    """Exact distribution of one FWQ iteration's length under a noise
    catalogue.

    An iteration of work time ``t_work`` is delayed by each source that
    fires during it.  With per-iteration hit probabilities ``p_k`` (all
    << 1 for calibrated catalogues) the survival function of the total
    length X is, to first order in the p's,

        P(X > t_work + y) = 1 - prod_k (1 - p_k * S_k(y))

    where ``S_k`` is source k's duration survival.  The product form is
    kept (not the linearised sum) so the expression stays a valid
    probability even for ticks with p == 1.
    """

    def __init__(self, sources: Sequence[NoiseSource], t_work: float) -> None:
        if t_work <= 0:
            raise ConfigurationError("t_work must be positive")
        self.sources = list(sources)
        self.t_work = t_work
        self._probs = np.array(
            [self._hit_probability(s) for s in self.sources]
        )

    def _hit_probability(self, s: NoiseSource) -> float:
        if s.occurrence is Occurrence.PERIODIC:
            return min(1.0, self.t_work / s.interval)
        return -math.expm1(-self.t_work / s.interval)

    # -- distribution ------------------------------------------------------

    def survival(self, lengths: np.ndarray | float) -> np.ndarray:
        """P(iteration length > x), vectorized over x (scalar in ->
        scalar out)."""
        arr = np.asarray(lengths, dtype=float)
        x = np.atleast_1d(arr)
        y = x - self.t_work
        log_none = np.zeros_like(y)
        for p, s in zip(self._probs, self.sources):
            sf = s.duration.survival(np.maximum(y, 0.0))
            log_none += np.log1p(-np.clip(p * sf, 0.0, 1.0 - 1e-18))
        out = np.where(y < 0, 1.0, -np.expm1(log_none))
        return out if arr.ndim else float(out[0])

    def quantile(self, q: float) -> float:
        """Iteration length at cumulative probability ``q`` (bisection on
        the survival function)."""
        if not 0.0 <= q < 1.0:
            raise ConfigurationError("q must be in [0, 1)")
        target = 1.0 - q
        lo = self.t_work
        hi = self.t_work + max(
            (s.max_length for s in self.sources), default=0.0
        )
        if hi <= lo or float(self.survival(lo)) <= target:
            return lo
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if float(self.survival(mid)) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def expected_max(self, n_samples: float) -> float:
        """Iteration length at the 1 - 1/n quantile — the length one
        expects to *observe* as the maximum when pooling ``n_samples``
        iterations (how machine scale stretches the Fig. 4 tail)."""
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        return self.quantile(1.0 - 1.0 / n_samples)

    def cdf_curve(self, n_points: int = 512,
                  n_samples: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(lengths, cdf) arrays for plotting/reporting the Fig. 4 curve.
        With ``n_samples`` the x-range is clipped at the expected
        observed maximum for that pool size."""
        if n_points < 2:
            raise ConfigurationError("n_points must be >= 2")
        x_max = (
            self.expected_max(n_samples)
            if n_samples is not None
            else self.t_work + max(
                (s.max_length for s in self.sources), default=0.0
            )
        )
        x_max = max(x_max, self.t_work * (1.0 + 1e-9))
        x = np.linspace(self.t_work, x_max, n_points)
        cdf = 1.0 - self.survival(x)
        return x, cdf

    def mean_overhead(self) -> float:
        """Expected extra time per iteration (sums exactly, no max)."""
        return sum(
            p * s.duration.mean for p, s in zip(self._probs, self.sources)
        )
