"""Synthetic noise injection — the Ferreira/Hoefler methodology.

The paper grounds its noise analysis in prior injection studies: "the
ratio of the maximum noise length to the synchronization interval ...
has been shown in the past through simulations as well as kernel level
noise injection [10, 22]".  This module provides that instrument for
the simulator: inject a *controlled* noise signature (length L, interval
I, per-core or global) on top of any OS configuration and measure the
application-level response — producing the classic sensitivity curves
(slowdown vs noise length / frequency / pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sim.distributions import Fixed
from .analytic import NoiseGroup, eq1_delay
from .sampler import BarrierDelaySampler
from .source import NoiseSource, Occurrence


@dataclass(frozen=True)
class InjectionSpec:
    """One synthetic noise signature, as in the injection papers."""

    length: float    # L: duration of each injected event
    interval: float  # I: period between events on one core
    periodic: bool = False  # periodic (FTQ-style detector bait) or Poisson

    def __post_init__(self) -> None:
        if self.length <= 0 or self.interval <= 0:
            raise ConfigurationError("length and interval must be positive")
        if self.length >= self.interval:
            raise ConfigurationError(
                "injected noise cannot exceed its own period"
            )

    def as_source(self) -> NoiseSource:
        return NoiseSource(
            name=f"injected(L={self.length:g},I={self.interval:g})",
            interval=self.interval,
            duration=Fixed(self.length),
            occurrence=(Occurrence.PERIODIC if self.periodic
                        else Occurrence.POISSON),
        )

    @property
    def duty_cycle(self) -> float:
        return self.length / self.interval


@dataclass(frozen=True)
class SensitivityPoint:
    """Measured application response to one injection."""

    spec: InjectionSpec
    measured_slowdown: float
    eq1_estimate: float

    @property
    def absorbed(self) -> bool:
        """True when the application absorbed the noise (slowdown well
        under the injected duty would predict from serialisation)."""
        return self.measured_slowdown < 2.0 * self.spec.duty_cycle


def inject_and_measure(
    spec: InjectionSpec,
    sync_interval: float,
    n_threads: int,
    rng: np.random.Generator,
    ambient: Sequence[NoiseSource] = (),
    n_intervals: int = 600,
) -> SensitivityPoint:
    """Inject one signature on top of ``ambient`` noise and measure the
    BSP slowdown, alongside the Eq. 1 estimate for the same signature."""
    sources = list(ambient) + [spec.as_source()]
    sampler = BarrierDelaySampler(sources, sync_interval, n_threads)
    base = BarrierDelaySampler(list(ambient), sync_interval, n_threads) \
        if ambient else None
    delay = float(sampler.sample(n_intervals, rng).mean())
    if base is not None:
        delay -= float(base.sample(n_intervals, rng).mean())
    measured = max(0.0, delay) / sync_interval
    estimate = eq1_delay(
        [NoiseGroup(length=spec.length, interval=spec.interval)],
        sync_interval, n_threads,
    )
    return SensitivityPoint(spec=spec, measured_slowdown=measured,
                            eq1_estimate=estimate)


def sensitivity_sweep(
    lengths: Sequence[float],
    interval: float,
    sync_interval: float,
    n_threads: int,
    rng: np.random.Generator,
) -> list[SensitivityPoint]:
    """The classic curve: fixed interval, sweep the noise length.

    Shows the regime change the injection literature reports: noise
    shorter than the sync slack is absorbed; once events serialise whole
    intervals the slowdown grows like L/S (Eq. 1's ceiling).
    """
    return [
        inject_and_measure(InjectionSpec(length=l, interval=interval),
                           sync_interval, n_threads, rng)
        for l in lengths
    ]
