"""Lowering an OS configuration to its noise-source catalogue.

This is the bridge between the structural kernel models and the
statistical samplers: given an :class:`~repro.kernel.base.OsInstance`,
produce the :class:`~repro.noise.source.NoiseSource` list one of its
*application* cores experiences.

Environment-specific extras:

* **OFP / THP** — with transparent huge pages, ``khugepaged``'s
  collapse/compaction stalls hit application cores; together with the
  unconfined daemons this produces the heavy tail the paper observed on
  OFP (FWQ iterations up to ~24 ms against a 6.5 ms quantum, Fig. 4a).
* **Node-level stragglers** — at full scale, rare per-node events
  (filesystem hiccups, management-plane bursts) dominate the observed
  maximum.  They are included as an ultra-low-duty source so that
  pooling more nodes exposes a longer tail, which is exactly the
  full-scale-vs-24-rack difference in Fig. 4b.
"""

from __future__ import annotations

from ..kernel.base import OsInstance
from ..kernel.linux import LinuxKernel
from ..kernel.tuning import LargePagePolicy
from ..sim.distributions import LogNormalCapped, Pareto
from ..units import ms, us
from .source import NoiseSource, Occurrence, irq_source, tick_source


def khugepaged_source() -> NoiseSource:
    """THP background collapse + direct-compaction stalls (OFP).

    Heavy-tailed but with a fast-decaying index: typical collapse scans
    cost tens of microseconds; direct compaction under fragmentation
    reaches the multi-millisecond stalls that contribute to OFP's FWQ
    tail (Fig. 4a).
    """
    return NoiseSource(
        name="khugepaged",
        interval=240.0,
        duration=Pareto(lo=us(60.0), hi=ms(17.5), alpha=2.6),
        occurrence=Occurrence.POISSON,
    )


def churn_compaction_source(churn_bytes_per_iter: int) -> NoiseSource:
    """Direct-compaction / collapse stalls *triggered by the app's own
    heap churn* under THP.

    An application that frees and reallocates memory every iteration
    keeps khugepaged and the compaction machinery busy; occasionally an
    allocation takes a direct-compaction stall.  This is the
    scale-growing half of the LULESH effect: the stall hits one rank,
    and at a barrier everyone waits (the deterministic half — refaulting
    the churned bytes — is priced in the runner).  Stall frequency
    scales with churn volume.
    """
    if churn_bytes_per_iter <= 0:
        raise ValueError("churn_bytes_per_iter must be positive")
    # Calibration anchor: 16 MiB of churn per iteration produces one
    # direct-compaction stall every ~8 s on that rank; frequency scales
    # linearly with churn volume.
    interval = 8.0 * (16 * 1024 * 1024) / churn_bytes_per_iter
    return NoiseSource(
        name="thp-churn-compaction",
        interval=max(0.25, interval),
        duration=Pareto(lo=us(200.0), hi=ms(17.5), alpha=2.5),
        occurrence=Occurrence.POISSON,
    )


def straggler_source(scale: str = "fugaku") -> NoiseSource:
    """Rare node-level service events (filesystem hiccups, management
    plane).  Duty is negligible (~5e-9); only the extreme tail matters,
    and only when pooling many node-hours: one event per ~50 node-hours
    means the 16-node testbed (Table 2) virtually never sees one, a
    24-rack hour sees ~180 (observed max ~5-6 ms), and the full machine
    sees ~3,200 (observed max ~10 ms) — the Fig. 4b full-scale-vs-24-rack
    difference.  Modelled per core: interval = 50 h x 48 cores."""
    if scale == "ofp":
        # OFP nodes run more unconfined services; stragglers are more
        # frequent and longer (Fig. 4a: iterations up to ~24 ms).
        return NoiseSource(
            name="node-straggler",
            interval=200.0 * 3600.0,
            duration=LogNormalCapped(median=ms(1.6), sigma=0.95, cap=ms(17.5)),
        )
    # Calibrated so the pooled expected max lands at the paper's Fig. 4b
    # values: ~3.5 ms of noise (10 ms iterations) at full scale, ~2 ms
    # (8.5 ms) on 24 racks.
    return NoiseSource(
        name="node-straggler",
        interval=50.0 * 3600.0 * 48,
        duration=LogNormalCapped(median=ms(0.245), sigma=0.823, cap=ms(3.6)),
    )


def hw_contention_source(arch: str = "aarch64") -> NoiseSource:
    """Residual hardware-sharing noise on McKernel cores.

    §4.2.2 distinguishes kernel noise from delays where "the execution
    time increases due to hardware sharing or internal contention in
    the hardware" with no extra instructions retired.  McKernel runs no
    background tasks, but shares silicon — and how much that costs is a
    *hardware* property:

    * **KNL (x86_64)**: 4-way SMT means the measurement thread shares
      its physical core's pipelines; bursts up to ~0.5 ms explain why
      the paper's OFP McKernel FWQ tail approaches (but stays under)
      7 ms against the 6.5 ms quantum (Fig. 4a).
    * **A64FX (aarch64)**: no SMT, sector-partitioned L2, per-CMG
      memory — contention is an order of magnitude smaller, and
      crucially *below* Linux's own residual (sar's 50 µs bursts), so
      the LWK never becomes the noisier kernel at any scale.

    (Linux sees the same hardware contention, but its calibrated task
    catalogue already subsumes it — Table 2 was measured on real silicon
    and cannot distinguish the two.)
    """
    if arch == "x86_64":
        return NoiseSource(
            name="hw-contention",
            interval=120.0,
            duration=LogNormalCapped(median=us(60.0), sigma=0.7,
                                     cap=us(500.0)),
        )
    return NoiseSource(
        name="hw-contention",
        interval=300.0,
        duration=LogNormalCapped(median=us(8.0), sigma=0.5, cap=us(40.0)),
    )


def noise_sources_for(
    os_instance: OsInstance, include_stragglers: bool = True
) -> list[NoiseSource]:
    """The complete per-app-core noise catalogue of one OS instance.

    ``include_stragglers=False`` drops the rare node-level events — used
    by the Table 2 / Figure 3 experiments, which characterise *kernel*
    noise on a 16-node testbed where (with ~1 event per 50 node-hours)
    stragglers essentially never occur anyway but would randomly distort
    a seeded short run.
    """
    sources: list[NoiseSource] = []

    # 1. System tasks that reach application cores.
    for task in os_instance.noise_tasks_on_app_cores():
        sources.append(
            NoiseSource(
                name=task.name,
                interval=task.interval,
                duration=task.duration,
                occurrence=Occurrence.POISSON,
            )
        )

    # 2. The scheduler tick.
    rate = os_instance.tick_rate_on_app_cores()
    if rate > 0:
        sources.append(tick_source(rate))

    # 3. Device IRQ load (Linux only; McKernel takes no device IRQs on
    #    LWK cores — drivers live on the Linux side).
    if isinstance(os_instance, LinuxKernel):
        irq_rate = os_instance.irq_rate_on_app_cores()
        if irq_rate > 0:
            load = os_instance.irq_load_on_app_cores()
            sources.append(
                irq_source(rate_hz=irq_rate, handler_cost=load / irq_rate)
            )
        # 4. THP housekeeping.
        if os_instance.tuning.large_pages is LargePagePolicy.THP:
            sources.append(khugepaged_source())
        # 5. Node-level stragglers (any Linux environment).
        if include_stragglers:
            scale = "ofp" if os_instance.node.arch == "x86_64" else "fugaku"
            sources.append(straggler_source(scale))
    else:
        # 6. McKernel: no kernel activity at all, only hardware sharing.
        sources.append(hw_contention_source(os_instance.node.arch))

    return sources


def total_duty_cycle(sources: list[NoiseSource]) -> float:
    """Aggregate fraction of core time stolen — Eq. 2's asymptote."""
    return sum(s.duty_cycle for s in sources)
