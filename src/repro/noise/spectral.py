"""Spectral analysis of FTQ traces — finding *periodic* noise.

The FTQ half of the LLNL benchmark exists because its fixed time base
permits Fourier analysis: a periodic interferer (a timer tick, a
monitoring daemon on a fixed cadence) appears as a spectral line at its
frequency in the per-window completed-work series.  This is how OS
developers localise tick/daemon noise without tracing; the noise-audit
workflow uses it as a cross-check on the ftrace path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # avoid the apps <-> noise import cycle at runtime
    from ..apps.fwq import FtqResult


@dataclass(frozen=True)
class SpectralPeak:
    """One detected periodic component."""

    frequency_hz: float
    period_s: float
    power_ratio: float  # peak power / median noise floor


def noise_spectrum(result: FtqResult) -> tuple[np.ndarray, np.ndarray]:
    """(frequencies, power) of the lost-work series.

    Uses the mean-removed work series so the DC term doesn't mask
    everything; frequencies run up to the Nyquist rate 1/(2*window).
    """
    series = result.work_units.astype(float)
    if len(series) < 8:
        raise ConfigurationError("need at least 8 FTQ windows")
    detrended = series - series.mean()
    spectrum = np.abs(np.fft.rfft(detrended)) ** 2
    freqs = np.fft.rfftfreq(len(series), d=result.window)
    return freqs[1:], spectrum[1:]  # drop DC


def find_periodic_noise(
    result: FtqResult,
    threshold: float = 12.0,
    max_peaks: int = 5,
) -> list[SpectralPeak]:
    """Detect periodic interferers as spectral lines ``threshold``x above
    the median noise floor.

    A periodic pulse train produces a harmonic comb (every multiple of
    its rate, comparable power), so peaks are scanned *lowest frequency
    first*: the first line above threshold is a fundamental, and its
    harmonic comb is suppressed before looking for further interferers.
    """
    if threshold <= 1.0:
        raise ConfigurationError("threshold must exceed 1.0")
    freqs, power = noise_spectrum(result)
    peak_power = float(power.max())
    if peak_power <= 0.0:
        return []  # perfectly clean trace
    # Median off-line power; for a pure periodic signal every off-comb
    # bin is numerically zero, so bound the floor away from 0 relative
    # to the peak (anything 1e9x below the strongest line is floor).
    floor = max(float(np.median(power)), peak_power * 1e-9)
    peaks: list[SpectralPeak] = []
    suppressed = np.zeros(len(power), dtype=bool)
    # Candidate bins above threshold, ascending in frequency — the only
    # bins the historical full scan could ever stop at (everything else
    # fails the ratio test), so walking just these is bit-identical.
    candidates = np.flatnonzero(power >= threshold * floor)
    for idx in candidates:
        if len(peaks) >= max_peaks:
            break
        if suppressed[idx]:
            continue
        # Refine to the strongest bin in the local leakage neighbourhood.
        lo = max(0, int(idx) - 2)
        hi = min(len(power), int(idx) + 3)
        best = lo + int(np.argmax(power[lo:hi]))
        fundamental = freqs[best]
        peaks.append(SpectralPeak(
            frequency_hz=float(fundamental),
            period_s=float(1.0 / fundamental),
            power_ratio=float(power[best] / floor),
        ))
        _suppress_comb(suppressed, freqs, float(fundamental))
    return peaks


def _suppress_comb(suppressed: np.ndarray, freqs: np.ndarray,
                   fundamental: float) -> None:
    """Mark ±2 bins around every harmonic of ``fundamental``.

    Vectorized over all harmonics at once: for each multiple
    ``k * fundamental`` the nearest bin is located with searchsorted
    (freqs ascend), with the historical argmin tie-break — equal
    distances resolve to the lower bin.
    """
    n = len(freqs)
    ks = np.arange(1.0, np.floor((freqs[-1] + 1e-12) / fundamental) + 1.0)
    if len(ks) == 0:
        return
    targets = ks * fundamental
    right = np.searchsorted(freqs, targets)
    left = np.maximum(right - 1, 0)
    right = np.minimum(right, n - 1)
    # np.argmin(|freqs - t|) returns the first minimal index, so a tie
    # between the two neighbours goes to the left one (<=, not <).
    nearest = np.where(
        np.abs(freqs[left] - targets) <= np.abs(freqs[right] - targets),
        left, right)
    for off in range(-2, 3):
        suppressed[np.clip(nearest + off, 0, n - 1)] = True
