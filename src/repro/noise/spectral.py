"""Spectral analysis of FTQ traces — finding *periodic* noise.

The FTQ half of the LLNL benchmark exists because its fixed time base
permits Fourier analysis: a periodic interferer (a timer tick, a
monitoring daemon on a fixed cadence) appears as a spectral line at its
frequency in the per-window completed-work series.  This is how OS
developers localise tick/daemon noise without tracing; the noise-audit
workflow uses it as a cross-check on the ftrace path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # avoid the apps <-> noise import cycle at runtime
    from ..apps.fwq import FtqResult


@dataclass(frozen=True)
class SpectralPeak:
    """One detected periodic component."""

    frequency_hz: float
    period_s: float
    power_ratio: float  # peak power / median noise floor


def noise_spectrum(result: FtqResult) -> tuple[np.ndarray, np.ndarray]:
    """(frequencies, power) of the lost-work series.

    Uses the mean-removed work series so the DC term doesn't mask
    everything; frequencies run up to the Nyquist rate 1/(2*window).
    """
    series = result.work_units.astype(float)
    if len(series) < 8:
        raise ConfigurationError("need at least 8 FTQ windows")
    detrended = series - series.mean()
    spectrum = np.abs(np.fft.rfft(detrended)) ** 2
    freqs = np.fft.rfftfreq(len(series), d=result.window)
    return freqs[1:], spectrum[1:]  # drop DC


def find_periodic_noise(
    result: FtqResult,
    threshold: float = 12.0,
    max_peaks: int = 5,
) -> list[SpectralPeak]:
    """Detect periodic interferers as spectral lines ``threshold``x above
    the median noise floor.

    A periodic pulse train produces a harmonic comb (every multiple of
    its rate, comparable power), so peaks are scanned *lowest frequency
    first*: the first line above threshold is a fundamental, and its
    harmonic comb is suppressed before looking for further interferers.
    """
    if threshold <= 1.0:
        raise ConfigurationError("threshold must exceed 1.0")
    freqs, power = noise_spectrum(result)
    peak_power = float(power.max())
    if peak_power <= 0.0:
        return []  # perfectly clean trace
    # Median off-line power; for a pure periodic signal every off-comb
    # bin is numerically zero, so bound the floor away from 0 relative
    # to the peak (anything 1e9x below the strongest line is floor).
    floor = max(float(np.median(power)), peak_power * 1e-9)
    peaks: list[SpectralPeak] = []
    suppressed = np.zeros(len(power), dtype=bool)
    for idx in range(len(power)):  # ascending frequency
        if len(peaks) >= max_peaks:
            break
        if suppressed[idx]:
            continue
        ratio = power[idx] / floor
        if ratio < threshold:
            continue
        # Refine to the strongest bin in the local leakage neighbourhood.
        lo = max(0, idx - 2)
        hi = min(len(power), idx + 3)
        best = lo + int(np.argmax(power[lo:hi]))
        fundamental = freqs[best]
        peaks.append(SpectralPeak(
            frequency_hz=float(fundamental),
            period_s=float(1.0 / fundamental),
            power_ratio=float(power[best] / floor),
        ))
        # Suppress the whole harmonic comb of this fundamental.
        k = 1
        while k * fundamental <= freqs[-1] + 1e-12:
            h = int(np.argmin(np.abs(freqs - k * fundamental)))
            suppressed[max(0, h - 2):h + 3] = True
            k += 1
    return peaks
