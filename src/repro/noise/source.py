"""Noise sources: the sampling-level representation of OS interference.

A :class:`NoiseSource` is what the FWQ sampler and the analytic models
consume: an occurrence process (periodic with phase jitter, or Poisson)
plus a duration distribution.  System tasks, timer ticks, and IRQ load
are all lowered to this one representation by
:mod:`repro.noise.catalog`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..sim.distributions import Distribution, Fixed


class Occurrence(enum.Enum):
    """Temporal pattern of a noise source."""

    PERIODIC = "periodic"  # fixed interval with uniform phase (timer ticks)
    POISSON = "poisson"    # memoryless arrivals (daemon wakeups, IRQs)


@dataclass(frozen=True)
class NoiseSource:
    """One source of delay on an application core."""

    name: str
    #: Mean seconds between events on one core.
    interval: float
    duration: Distribution
    occurrence: Occurrence = Occurrence.POISSON

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"{self.name}: interval must be positive")

    @property
    def duty_cycle(self) -> float:
        """Mean fraction of core time stolen: E[duration] / interval.

        Identity used throughout: for FWQ with quantum ``t`` and run of
        ``n`` iterations, Eq. 2's noise rate converges to the sum of the
        visible sources' duty cycles (each event of length ``L`` inflates
        exactly the iterations it overlaps by ``L`` total, so
        sum((T_i - T_min)/T_min)/n -> (events * E[L]) / (n * t) = duty).
        """
        return self.duration.mean / self.interval

    @property
    def max_length(self) -> float:
        """Largest single-event delay this source can produce."""
        return self.duration.upper

    def sample_events(
        self, horizon: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw the events on one core over ``[0, horizon)``.

        Returns ``(start_times, durations)``, both sorted by start time.
        """
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.occurrence is Occurrence.PERIODIC:
            phase = rng.uniform(0.0, self.interval)
            starts = np.arange(phase, horizon, self.interval)
        else:
            n = rng.poisson(horizon / self.interval)
            starts = np.sort(rng.uniform(0.0, horizon, n))
        durations = self.duration.sample(rng, len(starts))
        return starts, durations


def tick_source(tick_hz: float, tick_cost: float = 2.5e-6) -> NoiseSource:
    """The periodic scheduler tick as a noise source."""
    if tick_hz <= 0:
        raise ConfigurationError("tick_hz must be positive")
    return NoiseSource(
        name="timer-tick",
        interval=1.0 / tick_hz,
        duration=Fixed(tick_cost),
        occurrence=Occurrence.PERIODIC,
    )


def irq_source(rate_hz: float, handler_cost: float,
               name: str = "device-irq") -> NoiseSource:
    """Device interrupt load on one core as a noise source."""
    if rate_hz <= 0:
        raise ConfigurationError("rate_hz must be positive")
    if handler_cost <= 0:
        raise ConfigurationError("handler_cost must be positive")
    return NoiseSource(
        name=name,
        interval=1.0 / rate_hz,
        duration=Fixed(handler_cost),
        occurrence=Occurrence.POISSON,
    )
