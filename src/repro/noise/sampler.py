"""Vectorized Monte-Carlo samplers for noise timelines.

Two samplers cover the paper's measurement modes:

* :func:`fwq_iteration_lengths` — one core's FWQ run: per-iteration
  elapsed times with every noise event charged to the iteration it
  lands in (Figures 3, 4 at simulatable scale; Table 2);
* :class:`BarrierDelaySampler` — per-sync-interval delay of an N-thread
  bulk-synchronous application: the max over all threads of the noise
  each suffers in one interval, drawn exactly via binomial hit counts +
  the order-statistic inverse-CDF trick (no per-thread state), which is
  what makes N = 7,630,848 (full Fugaku) tractable.

Everything here is NumPy-vectorized per the HPC-Python guides: no
per-event Python loops on the hot paths.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .source import NoiseSource, Occurrence

#: Shared zero-length placeholder for trials a source never hit.
_EMPTY = np.empty(0)


def fwq_iteration_lengths(
    sources: Sequence[NoiseSource],
    t_work: float,
    n_iterations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Simulate one core running FWQ: ``n_iterations`` quanta of
    ``t_work`` seconds of pure computation, delayed by noise events.

    Events are generated per source over the nominal horizon and charged
    to the iteration whose work window contains their start.  Since the
    calibrated catalogues have duty cycles <= 1e-3 the nominal-time
    approximation (iteration i spans [i*t_work, (i+1)*t_work)) distorts
    event placement by under 0.1% — negligible against the paper's
    run-to-run variation.
    """
    if t_work <= 0:
        raise ConfigurationError("t_work must be positive")
    if n_iterations <= 0:
        raise ConfigurationError("n_iterations must be positive")
    lengths = np.full(n_iterations, t_work, dtype=float)
    horizon = n_iterations * t_work
    for source in sources:
        starts, durations = source.sample_events(horizon, rng)
        if len(starts) == 0:
            continue
        idx = np.minimum(
            (starts / t_work).astype(np.int64), n_iterations - 1
        )
        np.add.at(lengths, idx, durations)
    return lengths


def multi_core_fwq(
    sources: Sequence[NoiseSource],
    t_work: float,
    n_iterations: int,
    n_cores: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """FWQ on many cores simultaneously (the paper's MPI-parallel FWQ
    extension).  Returns an ``(n_cores, n_iterations)`` array.  Cores
    are statistically independent: each gets its own event draws."""
    if n_cores <= 0:
        raise ConfigurationError("n_cores must be positive")
    if t_work <= 0:
        raise ConfigurationError("t_work must be positive")
    if n_iterations <= 0:
        raise ConfigurationError("n_iterations must be positive")
    horizon = n_iterations * t_work
    # Event draws stay in core-major, source-minor order — the exact
    # RNG stream of per-core fwq_iteration_lengths calls — but the
    # charging is batched into a single accumulation over a flat
    # (n_cores * n_iterations) timeline.  np.add.at applies updates
    # sequentially per slot, and each slot belongs to one (core,
    # source-ordered) chunk, so the float accumulation order — hence
    # every bit of the result — is unchanged.
    idx_chunks: list[np.ndarray] = []
    dur_chunks: list[np.ndarray] = []
    for core in range(n_cores):
        base = core * n_iterations
        for source in sources:
            starts, durations = source.sample_events(horizon, rng)
            if len(starts) == 0:
                continue
            idx = np.minimum(
                (starts / t_work).astype(np.int64), n_iterations - 1
            )
            idx_chunks.append(idx + base)
            dur_chunks.append(durations)
    flat = np.full(n_cores * n_iterations, t_work, dtype=float)
    if idx_chunks:
        np.add.at(flat, np.concatenate(idx_chunks),
                  np.concatenate(dur_chunks))
    return flat.reshape(n_cores, n_iterations)


def worst_nodes(
    per_node_lengths: np.ndarray, keep: int
) -> np.ndarray:
    """The paper's in-situ reduction: keep only the ``keep`` worst nodes
    (largest total noise duration) from a (nodes, iterations) array."""
    if per_node_lengths.ndim != 2:
        raise ConfigurationError("expected a (nodes, iterations) array")
    if keep <= 0:
        raise ConfigurationError("keep must be positive")
    totals = per_node_lengths.sum(axis=1)
    keep = min(keep, per_node_lengths.shape[0])
    idx = np.argpartition(totals, -keep)[-keep:]
    return per_node_lengths[idx]


class BarrierDelaySampler:
    """Per-sync-interval delay of an N-thread BSP application.

    For each source k and interval, the number of threads hit is
    ``m ~ Binomial(N, p_k)`` with ``p_k`` the single-thread hit
    probability over one sync interval ``S``.  The interval's delay
    contribution from source k is the largest of the ``m`` event
    durations — drawn directly as ``F_k^{-1}(U^{1/m})``.  Contributions
    of different sources add (they delay different threads; at a barrier
    the sums are dominated by the max term, and adding them is the
    conservative composition).
    """

    def __init__(
        self,
        sources: Sequence[NoiseSource],
        sync_interval: float,
        n_threads: int,
    ) -> None:
        if sync_interval <= 0:
            raise ConfigurationError("sync_interval must be positive")
        if n_threads <= 0:
            raise ConfigurationError("n_threads must be positive")
        self.sources = list(sources)
        self.sync_interval = sync_interval
        self.n_threads = n_threads
        self._probs = [self._hit_probability(s) for s in self.sources]

    def _hit_probability(self, s: NoiseSource) -> float:
        if s.occurrence is Occurrence.PERIODIC:
            return min(1.0, self.sync_interval / s.interval)
        return -math.expm1(-self.sync_interval / s.interval)

    def sample(self, n_intervals: int, rng: np.random.Generator) -> np.ndarray:
        """Delays (seconds) for ``n_intervals`` consecutive sync
        intervals of the whole N-thread application."""
        if n_intervals <= 0:
            raise ConfigurationError("n_intervals must be positive")
        delays = np.zeros(n_intervals, dtype=float)
        for p, s in zip(self._probs, self.sources):
            counts = rng.binomial(self.n_threads, p, n_intervals)
            delays += s.duration.sample_max(rng, counts)
        return delays

    def sample_batch(
        self, n_intervals: int, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Delays for many independent trials at once: row ``t`` of the
        returned ``(len(rngs), n_intervals)`` array is bit-identical to
        ``self.sample(n_intervals, rngs[t])``.

        Each trial's generator is consumed in exactly the order
        :meth:`sample` would consume it (per source: one binomial draw,
        then one uniform draw — skipped when no thread is hit), so the
        per-trial RNG streams are untouched.  What *is* batched is the
        expensive part: the inverse-CDF evaluation of the
        order-statistic maxima, which is elementwise and therefore
        bit-stable under concatenation, runs once per source over all
        trials instead of once per (source, trial).
        """
        if n_intervals <= 0:
            raise ConfigurationError("n_intervals must be positive")
        n_trials = len(rngs)
        if n_trials == 0:
            return np.zeros((0, n_intervals), dtype=float)
        delays = np.zeros((n_trials, n_intervals), dtype=float)
        for p, s in zip(self._probs, self.sources):
            masks: list[np.ndarray] = []
            us: list[np.ndarray] = []
            hits: list[np.ndarray] = []
            for rng in rngs:
                counts = rng.binomial(self.n_threads, p, n_intervals)
                pos = counts > 0
                n_pos = int(pos.sum())
                if n_pos:  # sample_max draws uniforms only when hit
                    us.append(rng.uniform(0.0, 1.0, n_pos))
                    hits.append(counts[pos])
                else:
                    us.append(_EMPTY)
                masks.append(pos)
            if not hits:
                continue
            # u ** (1 / counts) and the inverse CDF are elementwise, so
            # one fused evaluation over all trials is bit-identical to
            # the per-trial calls sample() makes.
            flat_q = np.concatenate(us) ** (1.0 / np.concatenate(hits))
            values = s.duration.quantile(flat_q)
            offset = 0
            for t, pos in enumerate(masks):
                n_pos = len(us[t])
                if n_pos:
                    delays[t, pos] += values[offset:offset + n_pos]
                    offset += n_pos
        return delays

    def mean_delay(self, n_intervals: int, rng: np.random.Generator) -> float:
        """Convenience: mean per-interval delay over a sampled run."""
        return float(self.sample(n_intervals, rng).mean())

    def expected_slowdown(self, n_intervals: int,
                          rng: np.random.Generator) -> float:
        """Relative slowdown of the BSP section: mean delay / S."""
        return self.mean_delay(n_intervals, rng) / self.sync_interval
