"""Countermeasure sweeps: the configurations behind Table 2 / Figure 3.

Table 2 evaluates each noise-elimination technique by disabling it
alone against a baseline with everything enabled.  This module produces
that configuration matrix and names the rows exactly as the paper does.
"""

from __future__ import annotations

from ..kernel.tuning import Countermeasure, LinuxTuning

#: Paper row label -> countermeasure whose disabling produces that row.
TABLE2_ROWS: dict[str, Countermeasure | None] = {
    "None": None,
    "Daemon process": Countermeasure.DAEMON_BINDING,
    "Unbound kworker tasks": Countermeasure.KWORKER_BINDING,
    "blk-mq worker tasks": Countermeasure.BLKMQ_BINDING,
    "PMU counter reads": Countermeasure.PMU_STOP,
    "CPU-global flush instruction": Countermeasure.TLB_LOCAL_PATCH,
}


def countermeasure_sweep(base: LinuxTuning) -> dict[str, LinuxTuning]:
    """Map each Table 2 row label to its tuning configuration.

    ``base`` should be the fully-tuned environment
    (:func:`repro.kernel.tuning.fugaku_production`); the "None" row is
    ``base`` itself ("None" = no technique disabled).
    """
    sweep: dict[str, LinuxTuning] = {}
    for label, cm in TABLE2_ROWS.items():
        sweep[label] = base if cm is None else base.disable(cm)
    return sweep


#: Paper-reported Table 2 values, used by tests/benches to check shape:
#: row label -> (max noise length in us, noise rate).
TABLE2_PAPER: dict[str, tuple[float, float]] = {
    "None": (50.44, 3.79e-6),
    "Daemon process": (20346.98, 9.94e-4),
    "Unbound kworker tasks": (266.34, 4.58e-6),
    "blk-mq worker tasks": (387.91, 4.58e-6),
    "PMU counter reads": (103.09, 8.27e-6),
    "CPU-global flush instruction": (90.2, 3.87e-6),
}
