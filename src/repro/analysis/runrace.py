"""One-command race analysis: ``repro analyze race <experiment>``.

:func:`analyze_races` runs a registered experiment under an ambient
:class:`~repro.analysis.race.RaceDetector` — prefixed, like traced
runs, with the :func:`repro.obs.runtrace.capture_node_slice` slice of
simulated node life so the detector always observes real IKC rings,
memcg charge accounting, scheduler runqueues and run-cache writes
even behind purely analytic experiments.

The sweep executes serially (``jobs=1``) with a fresh in-memory run
cache: worker processes cannot ship detector state back to the
parent, and the memory cache tier is exactly what exposes divergent
same-key writes.  Everything is seeded, so the resulting report is
byte-identical across repeat runs — the property the CI race-smoke
step asserts.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry
from ..obs.runtrace import capture_node_slice
from ..obs.tracer import Tracer, tracing
from .race import RaceDetector, detecting

__all__ = ["RaceRun", "analyze_races"]


@dataclass
class RaceRun:
    """One experiment's result together with its race report."""

    experiment_id: str
    seed: int
    fast: bool
    result: object               # the ExperimentResult
    detector: RaceDetector

    @property
    def clean(self) -> bool:
        return not self.detector.violations

    def report(self) -> str:
        head = (f"{self.experiment_id} (seed {self.seed}, "
                f"{'fast' if self.fast else 'full'}): ")
        return head + "\n" + self.detector.report()

    def write(self, path: str) -> str:
        """Write the canonical JSON race report (CI artifact)."""
        p = pathlib.Path(path)
        p.write_text(self.detector.to_json() + "\n", encoding="utf-8")
        return str(p)


def _exercise_kernel_resources() -> None:
    """Drive the hooked kernel components the node slice does not reach
    directly — CFS and cooperative runqueues, memcg charge accounting
    (including a rejected over-limit charge and the hugetlb-surplus
    path) — so every ``repro analyze race`` run observes all four
    resource classes.  Fully deterministic: no RNG, fixed inputs."""
    from ..errors import CgroupLimitExceeded
    from ..kernel.cgroup import MemoryController
    from ..kernel.scheduler import (
        CfsScheduler,
        CooperativeScheduler,
        SchedTask,
    )

    cfs = CfsScheduler(cpu_id=0, nohz_full=True)
    cfs.enqueue(SchedTask(task_id=1, name="app", weight=2.0))
    cfs.enqueue(SchedTask(task_id=2, name="daemon"))
    cfs.run_slice(horizon=0.1)
    cfs.dequeue(2)
    cfs.dequeue(1)

    lwk = CooperativeScheduler(cpu_id=1)
    lwk.enqueue(SchedTask(task_id=3, name="rank0"))
    lwk.enqueue(SchedTask(task_id=4, name="rank1"))
    lwk.account(0.01)
    lwk.yield_cpu()
    lwk.account(0.01)
    lwk.dequeue(4)
    lwk.dequeue(3)

    memcg = MemoryController(limit_bytes=1 << 20,
                             charge_surplus_hugetlb=True)
    memcg.charge(1 << 16)
    memcg.charge(1 << 12, surplus_hugetlb=True)
    try:
        memcg.charge(1 << 21)
    except CgroupLimitExceeded:
        pass
    memcg.uncharge(1 << 12, surplus_hugetlb=True)
    memcg.uncharge(1 << 16)


def analyze_races(experiment_id: str, fast: bool = True, seed: int = 0,
                  node_slice: bool = True,
                  detector: RaceDetector | None = None) -> RaceRun:
    """Run one registered experiment with race detection on.

    A throwaway tracer is installed alongside the detector purely so
    the node slice (which is tracer-gated) executes; its events are
    discarded.  The run uses a fresh memory-only run cache so cache
    coherence is checked without touching the user's disk tier.
    """
    from ..experiments.registry import run_experiment
    from ..perf.cache import RunCache
    from ..perf.context import perf_context

    if detector is None:
        detector = RaceDetector()
    metrics = MetricsRegistry()
    with detecting(detector):
        with tracing(Tracer()):
            with perf_context(jobs=1, cache=RunCache(), counters=metrics):
                if node_slice:
                    _exercise_kernel_resources()
                    capture_node_slice(seed)
                result = run_experiment(experiment_id, fast=fast,
                                        seed=seed)
    return RaceRun(experiment_id=experiment_id, seed=seed, fast=fast,
                   result=result, detector=detector)
