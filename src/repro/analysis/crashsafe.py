"""Crash-consistency static analyzer: the CC-rule family.

PRs 7-9 accumulated a durability protocol the same way the paper's
kernels accumulate on-disk/IPC invariants: ``O_EXCL`` claim creates,
``O_APPEND`` single-write appends, tmp→fsync→``os.replace``
publication, a hand-maintained crash-point catalogue
(:mod:`repro.chaos.hooks`), fsck repairs keyed to each crash window.
Until now those protocols were enforced by convention and by the chaos
soak actually hitting them.  This module machine-checks them the way
``DET001``–``DET010`` machine-check determinism — an AST pass plus the
per-function CFG/dataflow layer in :mod:`repro.analysis.cfg`:

``CC001``
    every raw ``os.write``/``cz.write`` in durability-critical code
    (``repro/service/``, ``repro/obs/spool.py``, ``repro/perf/cache.py``)
    uses a sanctioned idiom: ``O_APPEND`` single-write, ``O_EXCL``
    create, or mkstemp→write→``os.replace``.
``CC002``
    in the tmp-publish idiom, an ``os.fsync(fd)`` must dominate the
    ``os.replace``/``os.rename`` on **all** CFG paths (``durable``
    gates are assumed true — the rule checks the durable
    configuration).
``CC003``–``CC006``
    catalogue coherence: every hook names a registered crash point
    (CC003); ``CRASH_SITE_REGISTRY`` matches the live call sites
    exactly, so a deleted hook or unregistered new hook fails the gate
    (CC004); torn-write capability matches ``WRITE_SITES`` exactly
    (CC005); the ``docs/CHAOS.md`` catalogue table matches
    ``CRASH_POINTS`` including the ``(write site)`` markers (CC006).
``CC007``
    no bare-``except`` / ``except Exception`` / ``except
    BaseException`` frame enclosing a crash point may absorb
    :class:`~repro.errors.CrashInjected` (or silently eat an injected
    io-error) unless it re-raises or names ``CrashInjected``
    explicitly.
``CC008``
    ``os.open`` descriptors and heartbeat threads are released on
    every path out of the function, exceptional exits included.
``CC009``
    every journal record ``type`` emitted anywhere has a fold handler
    in the queue fold (``table``), the fleet aggregator (``rollups``),
    and fsck keeps replaying through ``queue.table()``.

CLI: ``repro analyze crash [paths...]`` — canonical-JSON report with
``--json``, shared suppression-baseline mechanism
(``analysis/crash_baseline.json``), exit 0 clean / 1 findings / 2
usage error.  See ``docs/ANALYSIS.md`` for the catalogue and the
sanctioned idioms.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..errors import ConfigurationError
from .baseline import Baseline
from .cfg import CFG, build_cfg
from .linter import LintReport, canonical_path, iter_python_files
from .rules import Finding, LintRule, register_rules

__all__ = [
    "CC_RULES",
    "ChaosCatalogue",
    "ChaosUsage",
    "CrashReport",
    "DEFAULT_CRASH_BASELINE_PATH",
    "DEFAULT_DURABILITY_PREFIXES",
    "chaos_coherence_findings",
    "collect_scan",
    "crash_findings",
    "crash_report",
    "default_catalogue",
    "discover_docs",
    "docs_catalogue_findings",
    "journal_fold_findings",
    "run_crash",
]

CC_RULES: tuple[LintRule, ...] = (
    LintRule(
        "CC001",
        "raw filesystem write outside the sanctioned durability idioms",
        "write through one of the sanctioned idioms: a single os.write "
        "on an O_APPEND descriptor, an O_CREAT|O_EXCL create, or "
        "tempfile.mkstemp -> write -> fsync -> os.replace; anything "
        "else needs a justified crash_baseline.json entry",
    ),
    LintRule(
        "CC002",
        "tmp-publish rename not dominated by fsync on every path",
        "call os.fsync(fd) after the last write and before "
        "os.replace/os.rename on every CFG path (an 'if durable:' "
        "gate is fine — the rule assumes durable=True)",
    ),
    LintRule(
        "CC003",
        "chaos hook names an unregistered crash point",
        "pass a string literal naming an entry of CRASH_POINTS "
        "(repro/chaos/hooks.py), or register the new point there and "
        "in docs/CHAOS.md",
    ),
    LintRule(
        "CC004",
        "crash-point catalogue / call-site registry drift",
        "keep CRASH_SITE_REGISTRY (repro/chaos/hooks.py) exactly "
        "matching the get_chaos() call sites: every registered point "
        "needs its call site live at the registered scope, and every "
        "call site must be registered",
    ),
    LintRule(
        "CC005",
        "crash-point capability mismatch with WRITE_SITES",
        "wrap in-flight write(2)s with cz.write(fd, data, site) "
        "exactly at WRITE_SITES and use cz.on(site) everywhere else; "
        "update WRITE_SITES when a site changes shape",
    ),
    LintRule(
        "CC006",
        "docs/CHAOS.md catalogue table out of sync with CRASH_POINTS",
        "keep one table row per CRASH_POINTS entry, write sites "
        "annotated '(write site)' in the window column",
    ),
    LintRule(
        "CC007",
        "broad exception handler can absorb an injected crash",
        "catch the narrowest type (a ReproError subclass / OSError), "
        "name CrashInjected explicitly when the handler must see "
        "crashes, or re-raise with a bare 'raise'; a swallowing "
        "'except Exception' also hides injected io-errors",
    ),
    LintRule(
        "CC008",
        "os.open descriptor or worker thread not released on every path",
        "close the fd / join the thread in a 'finally' so exceptional "
        "exits release it too",
    ),
    LintRule(
        "CC009",
        "journal record type emitted without a fold handler",
        "handle the type in JobQueue.table and "
        "FleetAggregator.rollups (and keep fsck replaying via "
        "queue.table()); an unhandled record silently drops out of "
        "every folded view",
    ),
)

register_rules(CC_RULES)

#: The packaged crash-consistency baseline covering src/repro itself.
DEFAULT_CRASH_BASELINE_PATH = pathlib.Path(__file__).with_name(
    "crash_baseline.json")

#: Canonical-path prefixes holding durability-critical code: CC001 and
#: CC002 apply only here (the rest of the rules scan everything).
DEFAULT_DURABILITY_PREFIXES = (
    "repro/service/",
    "repro/obs/spool.py",
    "repro/perf/cache.py",
)

#: Names assumed true when checking CFG dominance (the rules check the
#: durable configuration; ``durable=False`` is a sanctioned escape
#: hatch for tests).
ASSUME_TRUE = ("durable",)

#: Canonical path the catalogue-level findings anchor on.
CATALOGUE_PATH = "repro/chaos/hooks.py"

#: Method attr -> receiver-name hints marking calls that reach a crash
#: point in another module (CC007's "crash-point frame" test when the
#: hook itself is out of view).
_DURABLE_CALLS: dict[str, tuple[str, ...]] = {
    "append": ("journal",),
    "put": ("cache",),
    "submit": ("queue",),
    "claim_next": ("queue",),
    "heartbeat": ("queue",),
    "complete": ("queue",),
    "break_lease": ("queue",),
    "mark_running": ("queue",),
    "fail_attempt": ("queue",),
    "requeue": ("queue",),
    "run_specs": ("engine",),
    "export_experiments": ("engine",),
    "emit": ("spool", "telemetry"),
    "event": ("spool", "telemetry"),
    "segment": ("spool", "telemetry"),
}

_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


@dataclass(frozen=True)
class ChaosCatalogue:
    """The registered chaos surface the coherence rules check against
    (defaults to the live :mod:`repro.chaos.hooks` catalogue)."""

    points: tuple[str, ...]
    write_sites: frozenset[str]
    #: site -> sorted ``path::scope`` strings of its call sites.
    registry: dict[str, tuple[str, ...]]


def default_catalogue() -> ChaosCatalogue:
    from ..chaos.hooks import (CRASH_POINTS, CRASH_SITE_REGISTRY,
                               WRITE_SITES)
    return ChaosCatalogue(points=tuple(CRASH_POINTS),
                          write_sites=frozenset(WRITE_SITES),
                          registry=dict(CRASH_SITE_REGISTRY))


@dataclass(frozen=True)
class ChaosUsage:
    """One ``cz.on(...)`` / ``cz.write(...)`` call site."""

    site: str
    kind: str  # "on" | "write"
    literal: bool
    path: str
    scope: str
    line: int
    col: int
    snippet: str

    def key(self) -> tuple[str, str]:
        return (self.site, f"{self.path}::{self.scope}")


@dataclass(frozen=True)
class JournalEmit:
    """One ``journal.append({'type': <literal>, ...})`` call site."""

    rtype: str
    literal: bool
    path: str
    scope: str
    line: int
    col: int
    snippet: str


@dataclass(frozen=True)
class FoldDef:
    """One fold function over the journal record stream."""

    kind: str  # "queue" (def table) | "fleet" (def rollups)
    handled: frozenset[str]
    path: str
    scope: str
    line: int
    snippet: str


@dataclass
class ScanData:
    """Everything one pass over a tree collects."""

    findings: list[Finding] = field(default_factory=list)
    usages: list[ChaosUsage] = field(default_factory=list)
    emits: list[JournalEmit] = field(default_factory=list)
    folds: list[FoldDef] = field(default_factory=list)
    #: (canonical path, replays-via-queue.table) per fsck module seen.
    fsck_modules: list[tuple[str, bool]] = field(default_factory=list)
    files_checked: int = 0


# -- per-file analysis -------------------------------------------------


class _FileScan:
    """One file's crash-consistency pass: local rules (CC001, CC002,
    CC007, CC008) plus the raw material for the tree-level rules."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 durability_prefixes: Sequence[str]) -> None:
        self.path = path
        self.tree = tree
        self._lines = source.splitlines()
        self.durable_scope = any(
            path.startswith(p) or p == "" for p in durability_prefixes)
        self.findings: list[Finding] = []
        self.usages: list[ChaosUsage] = []
        self.emits: list[JournalEmit] = []
        self.folds: list[FoldDef] = []
        self.table_call = False
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    self._aliases[local] = (
                        alias.name if alias.asname
                        else alias.name.split(".", 1)[0])
            elif isinstance(node, ast.ImportFrom):
                module = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{module}.{alias.name}"
        #: function name -> its body directly evaluates a chaos hook
        #: (for CC007's one-level same-file transitive test).
        self._direct_chaos: dict[str, bool] = {}

    # -- plumbing ------------------------------------------------------

    def _qual(self, node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self._qual(node.value)
            return f"{base}.{node.attr}" if base else ""
        return ""

    def _raw(self, node: ast.AST) -> str:
        """Dotted receiver text without alias resolution (``self.queue``
        stays ``self.queue``)."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            base = self._raw(node.value)
            return f"{base}.{node.attr}" if base else ""
        return ""

    def _snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 1)
        if 1 <= line <= len(self._lines):
            return self._lines[line - 1].strip()
        return ""

    def _emit(self, rule_id: str, node: ast.AST, scope: str,
              message: str) -> None:
        self.findings.append(Finding(
            rule_id=rule_id, path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            scope=scope, snippet=self._snippet(node), message=message))

    # -- traversal -----------------------------------------------------

    def run(self) -> None:
        for func, scope in self._functions(self.tree):
            self._direct_chaos[func.name] = False
        for func, scope in self._functions(self.tree):
            self._scan_function_collections(func, scope)
        for func, scope in self._functions(self.tree):
            self._scan_function_rules(func, scope)
        if self.path.endswith("fsck.py"):
            self.table_call = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "table"
                for node in ast.walk(self.tree))

    def _functions(self, tree: ast.Module
                   ) -> "list[tuple[ast.AST, str]]":
        out: list[tuple[ast.AST, str]] = []

        def walk(node: ast.AST, scope: "list[str]") -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    name = scope + [child.name]
                    out.append((child, ".".join(name)))
                    walk(child, name)
                elif isinstance(child, ast.ClassDef):
                    walk(child, scope + [child.name])
                else:
                    walk(child, scope)

        walk(tree, [])
        return out

    def _own_statements(self, func: ast.AST) -> "list[ast.stmt]":
        """Every statement of ``func`` excluding nested def bodies."""
        out: list[ast.stmt] = []

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    continue
                if isinstance(child, ast.stmt):
                    out.append(child)
                walk(child)

        walk(func)
        return out

    def _own_calls(self, func: ast.AST) -> "list[ast.Call]":
        # _own_statements lists nested statements too, so dedupe: a
        # call inside `if` inside `try` is reachable from three stmts.
        # AST nodes are identity-hashable, so they key the set directly.
        seen: "set[ast.AST]" = set()
        out: list[ast.Call] = []
        for stmt in self._own_statements(func):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and node not in seen:
                    seen.add(node)
                    out.append(node)
        return out

    def _chaos_vars(self, func: ast.AST) -> "set[str]":
        names: set[str] = set()
        for stmt in self._own_statements(func):
            if isinstance(stmt, ast.Assign) and \
                    isinstance(stmt.value, ast.Call):
                q = self._qual(stmt.value.func)
                if q.endswith("get_chaos"):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    # -- collection pass (usages, emits, folds) ------------------------

    def _scan_function_collections(self, func: ast.AST,
                                   scope: str) -> None:
        chaos_vars = self._chaos_vars(func)
        for call in self._own_calls(func):
            fn = call.func
            if isinstance(fn, ast.Attribute) and \
                    isinstance(fn.value, ast.Name) and \
                    fn.value.id in chaos_vars and \
                    fn.attr in ("on", "write"):
                site_arg: Optional[ast.expr] = None
                if fn.attr == "on" and call.args:
                    site_arg = call.args[0]
                elif fn.attr == "write":
                    if len(call.args) >= 3:
                        site_arg = call.args[2]
                    else:
                        site_arg = next(
                            (kw.value for kw in call.keywords
                             if kw.arg == "site"), None)
                literal = (isinstance(site_arg, ast.Constant)
                           and isinstance(site_arg.value, str))
                self.usages.append(ChaosUsage(
                    site=site_arg.value if literal else "<non-literal>",
                    kind=fn.attr, literal=literal, path=self.path,
                    scope=scope, line=call.lineno, col=call.col_offset,
                    snippet=self._snippet(call)))
                self._direct_chaos[getattr(func, "name", "")] = True
            if isinstance(fn, ast.Attribute) and fn.attr == "append":
                recv = self._raw(fn.value)
                if recv.split(".")[-1] == "journal" and call.args:
                    self._collect_emit(call, scope)

        if func.name in ("table", "rollups"):
            self._collect_fold(func, scope)

    def _collect_emit(self, call: ast.Call, scope: str) -> None:
        record = call.args[0]
        if not isinstance(record, ast.Dict):
            return
        for key, value in zip(record.keys, record.values):
            if isinstance(key, ast.Constant) and key.value == "type":
                literal = (isinstance(value, ast.Constant)
                           and isinstance(value.value, str))
                self.emits.append(JournalEmit(
                    rtype=value.value if literal else "<non-literal>",
                    literal=literal, path=self.path, scope=scope,
                    line=call.lineno, col=call.col_offset,
                    snippet=self._snippet(call)))

    def _collect_fold(self, func: ast.AST, scope: str) -> None:
        handled: set[str] = set()
        for stmt in self._own_statements(func):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Compare):
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.Constant) and \
                                isinstance(sub.value, str):
                            handled.add(sub.value)
                elif isinstance(node, ast.Dict) and \
                        func.name == "rollups":
                    for key in node.keys:
                        if isinstance(key, ast.Constant) and \
                                isinstance(key.value, str):
                            handled.add(key.value)
        self.folds.append(FoldDef(
            kind="queue" if func.name == "table" else "fleet",
            handled=frozenset(handled), path=self.path, scope=scope,
            line=func.lineno, snippet=self._snippet(func)))

    # -- rule pass (CC001/CC002/CC007/CC008) ---------------------------

    def _scan_function_rules(self, func: ast.AST, scope: str) -> None:
        stmts = self._own_statements(func)
        parent_stmt = self._stmt_map(func, stmts)
        cfg = build_cfg(func, assume_true=ASSUME_TRUE)
        if self.durable_scope:
            self._check_durability(func, scope, stmts, parent_stmt, cfg)
        self._check_handlers(func, scope)
        self._check_releases(func, scope, stmts, parent_stmt, cfg)

    def _stmt_map(self, func: ast.AST, stmts: "list[ast.stmt]"
                  ) -> "dict[ast.AST, ast.stmt]":
        """expr node (identity-keyed) -> the innermost statement
        carrying it."""
        owner: "dict[ast.AST, ast.stmt]" = {}

        def claim(stmt: ast.stmt, node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    continue  # the child statement claims its own
                owner[child] = stmt
                claim(stmt, child)

        for stmt in stmts:
            owner[stmt] = stmt
            claim(stmt, stmt)
        return owner

    def _call_stmt_nodes(self, calls: "Iterable[ast.Call]",
                         parent_stmt: "dict[ast.AST, ast.stmt]",
                         cfg: CFG) -> "list[int]":
        nodes: list[int] = []
        for call in calls:
            stmt = parent_stmt.get(call)
            if stmt is not None:
                nodes.extend(cfg.nodes_for(stmt))
        return nodes

    def _check_durability(self, func: ast.AST, scope: str,
                          stmts: "list[ast.stmt]",
                          parent_stmt: "dict[ast.AST, ast.stmt]",
                          cfg: CFG) -> None:
        calls = self._own_calls(func)
        chaos_vars = self._chaos_vars(func)
        origins = self._fd_origins(stmts)
        replaces = [c for c in calls
                    if self._qual(c.func) in ("os.replace", "os.rename")]
        fsyncs = [c for c in calls if self._qual(c.func) == "os.fsync"]
        tmp_published = False
        for call in calls:
            fd_name = self._fd_write_target(call, chaos_vars)
            if fd_name is None:
                continue
            origin = origins.get(fd_name)
            if origin == "append" or origin == "excl":
                continue
            if origin == "mkstemp":
                if replaces:
                    tmp_published = True
                    continue
                self._emit("CC001", call, scope,
                           f"write to mkstemp fd {fd_name!r} is never "
                           "published with os.replace — the tmp file "
                           "is the final artifact")
                continue
            self._emit("CC001", call, scope,
                       f"raw write to fd {fd_name!r} uses no sanctioned "
                       "durability idiom (O_APPEND single-write, "
                       "O_EXCL create, or mkstemp→fsync→replace)")
        if tmp_published:
            fsync_nodes = self._call_stmt_nodes(fsyncs, parent_stmt, cfg)
            for replace in replaces:
                for node in self._call_stmt_nodes([replace],
                                                  parent_stmt, cfg):
                    if not cfg.cut_dominates(fsync_nodes, node):
                        self._emit(
                            "CC002", replace, scope,
                            "os.replace publishes a tmp file on a path "
                            "with no dominating os.fsync — a crash "
                            "after the rename can surface an empty or "
                            "torn entry")

    def _fd_origins(self, stmts: "list[ast.stmt]") -> "dict[str, str]":
        """fd variable name -> 'append' | 'excl' | 'open' | 'mkstemp'."""
        origins: dict[str, str] = {}
        for stmt in stmts:
            if not isinstance(stmt, ast.Assign) or \
                    not isinstance(stmt.value, ast.Call):
                continue
            q = self._qual(stmt.value.func)
            if q == "os.open":
                flags = stmt.value.args[1] if len(stmt.value.args) > 1 \
                    else None
                flag_names = {n.attr for n in ast.walk(flags)
                              if isinstance(n, ast.Attribute)} \
                    if flags is not None else set()
                kind = "open"
                if "O_APPEND" in flag_names:
                    kind = "append"
                elif "O_EXCL" in flag_names:
                    kind = "excl"
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        origins[target.id] = kind
            elif q == "tempfile.mkstemp":
                for target in stmt.targets:
                    if isinstance(target, ast.Tuple) and target.elts \
                            and isinstance(target.elts[0], ast.Name):
                        origins[target.elts[0].id] = "mkstemp"
        return origins

    def _fd_write_target(self, call: ast.Call,
                         chaos_vars: "set[str]") -> Optional[str]:
        """The fd variable a write call targets, or None when the call
        is not an fd write (``os.write(fd, ...)`` or the chaos wrapper
        ``cz.write(fd, data, site)``)."""
        fn = call.func
        if self._qual(fn) == "os.write" and call.args and \
                isinstance(call.args[0], ast.Name):
            return call.args[0].id
        if isinstance(fn, ast.Attribute) and fn.attr == "write" and \
                isinstance(fn.value, ast.Name) and \
                fn.value.id in chaos_vars and call.args and \
                isinstance(call.args[0], ast.Name):
            return call.args[0].id
        return None

    # -- CC007 ---------------------------------------------------------

    def _check_handlers(self, func: ast.AST, scope: str) -> None:
        chaos_vars = self._chaos_vars(func)
        for stmt in self._own_statements(func):
            if not isinstance(stmt, ast.Try):
                continue
            region = stmt.body + stmt.orelse
            if not self._region_reaches_crash_point(region, chaos_vars):
                continue
            for handler in stmt.handlers:
                broad = self._broad_handler(handler)
                if broad is None:
                    continue
                if self._names_crash_injected(handler):
                    continue
                if any(isinstance(n, ast.Raise) and n.exc is None
                       for body in handler.body
                       for n in ast.walk(body)):
                    continue
                self._emit(
                    "CC007", handler, scope,
                    f"{broad} handler encloses a crash-point frame: it "
                    "absorbs CrashInjected (bare/BaseException) or "
                    "eats an injected io-error without attribution")

    def _region_reaches_crash_point(self, region: "list[ast.stmt]",
                                    chaos_vars: "set[str]") -> bool:
        for stmt in region:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                fn = node.func
                if isinstance(fn, ast.Attribute):
                    if isinstance(fn.value, ast.Name) and \
                            fn.value.id in chaos_vars and \
                            fn.attr in ("on", "write"):
                        return True
                    hints = _DURABLE_CALLS.get(fn.attr)
                    if hints is not None:
                        recv = self._raw(fn.value).lower()
                        if any(h in recv for h in hints):
                            return True
                    # same-file method call one level deep
                    if self._direct_chaos.get(fn.attr):
                        return True
                elif isinstance(fn, ast.Name) and \
                        self._direct_chaos.get(fn.id):
                    return True
        return False

    def _broad_handler(self, handler: ast.ExceptHandler
                       ) -> Optional[str]:
        if handler.type is None:
            return "bare 'except:'"
        names = []
        types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
            else [handler.type]
        for t in types:
            names.append(self._qual(t).rsplit(".", 1)[-1])
        broad = sorted(set(names) & _BROAD_HANDLERS)
        if broad:
            return f"'except {broad[0]}'"
        return None

    def _names_crash_injected(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return False
        types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
            else [handler.type]
        return any(self._qual(t).rsplit(".", 1)[-1] == "CrashInjected"
                   for t in types)

    # -- CC008 ---------------------------------------------------------

    def _check_releases(self, func: ast.AST, scope: str,
                        stmts: "list[ast.stmt]",
                        parent_stmt: "dict[ast.AST, ast.stmt]",
                        cfg: CFG) -> None:
        calls = self._own_calls(func)
        # descriptors
        for stmt in stmts:
            if not isinstance(stmt, ast.Assign) or \
                    not isinstance(stmt.value, ast.Call) or \
                    self._qual(stmt.value.func) != "os.open":
                continue
            targets = [t for t in stmt.targets
                       if isinstance(t, ast.Name)]
            if not targets:
                continue
            fd_name = targets[0].id
            closes = [c for c in calls
                      if self._qual(c.func) == "os.close" and c.args
                      and isinstance(c.args[0], ast.Name)
                      and c.args[0].id == fd_name]
            self._require_release(
                "fd", fd_name, stmt, closes, parent_stmt, cfg, scope,
                missing=f"os.open fd {fd_name!r} is never closed in "
                        "this function",
                leaky=f"os.open fd {fd_name!r} is not closed on every "
                      "path (an exceptional exit leaks it); close in "
                      "a 'finally'")
        # worker threads
        for stmt in stmts:
            if not isinstance(stmt, ast.Assign) or \
                    not isinstance(stmt.value, ast.Call):
                continue
            q = self._qual(stmt.value.func)
            if not q.endswith("threading.Thread") and q != "Thread":
                continue
            targets = [t for t in stmt.targets
                       if isinstance(t, ast.Name)]
            if not targets:
                continue
            tname = targets[0].id
            starts = [c for c in calls
                      if isinstance(c.func, ast.Attribute)
                      and c.func.attr == "start"
                      and isinstance(c.func.value, ast.Name)
                      and c.func.value.id == tname]
            if not starts:
                continue
            joins = [c for c in calls
                     if isinstance(c.func, ast.Attribute)
                     and c.func.attr == "join"
                     and isinstance(c.func.value, ast.Name)
                     and c.func.value.id == tname]
            anchor_stmt = parent_stmt.get(starts[0])
            self._require_release(
                "thread", tname, anchor_stmt or stmt, joins,
                parent_stmt, cfg, scope,
                missing=f"thread {tname!r} is started but never "
                        "joined — a crash leaves the beater running",
                leaky=f"thread {tname!r} is not joined on every path "
                      "out of the function; join in a 'finally'")

    def _require_release(self, kind: str, name: str,
                         acquire_stmt: ast.stmt,
                         releases: "list[ast.Call]",
                         parent_stmt: "dict[ast.AST, ast.stmt]",
                         cfg: CFG, scope: str, missing: str,
                         leaky: str) -> None:
        if not releases:
            self._emit("CC008", acquire_stmt, scope, missing)
            return
        release_nodes = self._call_stmt_nodes(releases, parent_stmt, cfg)
        starts: set[int] = set()
        for node in cfg.nodes_for(acquire_stmt):
            starts |= cfg.normal_successors(node)
        if not cfg.always_passes_through(starts, release_nodes,
                                         ignore_cleanup_exc=True):
            self._emit("CC008", acquire_stmt, scope, leaky)


# -- tree-level rules --------------------------------------------------


def chaos_coherence_findings(usages: Sequence[ChaosUsage],
                             catalogue: ChaosCatalogue
                             ) -> "list[Finding]":
    """CC003/CC004/CC005 over the collected call sites.  Pure function
    of its inputs, so tests can replay it minus one usage or with a
    mutated catalogue."""
    findings: list[Finding] = []
    points = set(catalogue.points)

    def catalogue_finding(rule: str, site: str, message: str) -> Finding:
        return Finding(rule_id=rule, path=CATALOGUE_PATH, line=1, col=0,
                       scope="CRASH_POINTS", snippet=site,
                       message=message)

    known: list[ChaosUsage] = []
    for usage in usages:
        if not usage.literal:
            findings.append(Finding(
                rule_id="CC003", path=usage.path, line=usage.line,
                col=usage.col, scope=usage.scope, snippet=usage.snippet,
                message="chaos hook site must be a string literal so "
                        "the catalogue stays statically checkable"))
        elif usage.site not in points:
            findings.append(Finding(
                rule_id="CC003", path=usage.path, line=usage.line,
                col=usage.col, scope=usage.scope, snippet=usage.snippet,
                message=f"chaos hook names {usage.site!r}, which is "
                        "not a registered crash point"))
        else:
            known.append(usage)

    used_sites = {u.site for u in known}
    used_pairs = {u.key() for u in known}
    registered_pairs = {(site, where)
                        for site, wheres in catalogue.registry.items()
                        for where in wheres}

    for site in sorted(points - used_sites):
        findings.append(catalogue_finding(
            "CC004", site,
            f"registered crash point {site!r} has no live call site — "
            "the chaos surface silently shrank"))
    for site, where in sorted(registered_pairs - used_pairs):
        if site in points - used_sites:
            continue  # already reported as fully dead above
        findings.append(catalogue_finding(
            "CC004", site,
            f"CRASH_SITE_REGISTRY expects {site!r} at {where}, but no "
            "hook is there"))
    for usage in known:
        if usage.key() not in registered_pairs:
            findings.append(Finding(
                rule_id="CC004", path=usage.path, line=usage.line,
                col=usage.col, scope=usage.scope, snippet=usage.snippet,
                message=f"chaos hook for {usage.site!r} at "
                        f"{usage.key()[1]} is not in "
                        "CRASH_SITE_REGISTRY"))

    for usage in known:
        is_write_site = usage.site in catalogue.write_sites
        if usage.kind == "write" and not is_write_site:
            findings.append(Finding(
                rule_id="CC005", path=usage.path, line=usage.line,
                col=usage.col, scope=usage.scope, snippet=usage.snippet,
                message=f"{usage.site!r} is wrapped as a write site "
                        "but is not in WRITE_SITES (torn-write "
                        "capability mismatch)"))
        elif usage.kind == "on" and is_write_site:
            findings.append(Finding(
                rule_id="CC005", path=usage.path, line=usage.line,
                col=usage.col, scope=usage.scope, snippet=usage.snippet,
                message=f"{usage.site!r} is in WRITE_SITES but hooked "
                        "with cz.on() — the in-flight write(2) is not "
                        "wrapped, so torn-write schedules can never "
                        "fire"))
    return findings


_DOC_ROW = re.compile(r"^\|\s*`([a-z_.]+\.[a-z_.]+)`\s*\|(.*)$")


def docs_catalogue_findings(docs_path: "str | pathlib.Path",
                            catalogue: ChaosCatalogue
                            ) -> "list[Finding]":
    """CC006: the ``docs/CHAOS.md`` catalogue table must list exactly
    ``CRASH_POINTS``, write sites annotated ``(write site)``."""
    docs_path = pathlib.Path(docs_path)
    try:
        text = docs_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read chaos docs {docs_path}: {exc}")
    label = docs_path.name
    rows: dict[str, str] = {}
    for line in text.splitlines():
        match = _DOC_ROW.match(line.strip())
        if match:
            rows.setdefault(match.group(1), match.group(2))
    findings: list[Finding] = []
    points = set(catalogue.points)

    def doc_finding(site: str, message: str) -> Finding:
        return Finding(rule_id="CC006", path=f"docs/{label}", line=1,
                       col=0, scope="catalogue-table", snippet=site,
                       message=message)

    for site in sorted(points - set(rows)):
        findings.append(doc_finding(
            site, f"crash point {site!r} is missing from the {label} "
                  "catalogue table"))
    for site in sorted(set(rows) - points):
        findings.append(doc_finding(
            site, f"{label} documents {site!r}, which is not a "
                  "registered crash point"))
    for site in sorted(points & set(rows)):
        documented_write = "write site" in rows[site]
        if documented_write != (site in catalogue.write_sites):
            expect = ("a write site" if site in catalogue.write_sites
                      else "a control-flow site")
            findings.append(doc_finding(
                site, f"{label} write-site marker for {site!r} is "
                      f"wrong — the catalogue registers it as {expect}"))
    return findings


def journal_fold_findings(emits: Sequence[JournalEmit],
                          folds: Sequence[FoldDef],
                          fsck_modules: Sequence[tuple[str, bool]]
                          ) -> "list[Finding]":
    """CC009: every emitted record type folds everywhere."""
    findings: list[Finding] = []
    by_type: dict[str, JournalEmit] = {}
    for emit in emits:
        if not emit.literal:
            findings.append(Finding(
                rule_id="CC009", path=emit.path, line=emit.line,
                col=emit.col, scope=emit.scope, snippet=emit.snippet,
                message="journal record 'type' must be a string "
                        "literal so fold coverage is statically "
                        "checkable"))
        else:
            by_type.setdefault(emit.rtype, emit)
    if not by_type:
        return findings

    for kind, label in (("queue", "queue fold (def table)"),
                        ("fleet", "fleet fold (def rollups)")):
        kind_folds = [f for f in folds if f.kind == kind]
        if not kind_folds:
            emit = by_type[sorted(by_type)[0]]
            findings.append(Finding(
                rule_id="CC009", path=emit.path, line=emit.line,
                col=emit.col, scope=emit.scope, snippet=emit.snippet,
                message=f"journal records are emitted but no {label} "
                        "exists in the scanned tree"))
            continue
        for fold in kind_folds:
            for rtype in sorted(set(by_type) - fold.handled):
                emit = by_type[rtype]
                findings.append(Finding(
                    rule_id="CC009", path=fold.path, line=fold.line,
                    col=0, scope=fold.scope, snippet=fold.snippet,
                    message=f"record type {rtype!r} (emitted at "
                            f"{emit.path}:{emit.line}) has no handler "
                            f"in the {label}"))
    for path, replays in fsck_modules:
        if not replays:
            findings.append(Finding(
                rule_id="CC009", path=path, line=1, col=0,
                scope="<module>", snippet="",
                message="fsck no longer replays the journal through "
                        "queue.table() — repairs would fold records "
                        "with their own, divergent logic"))
    return findings


# -- driver ------------------------------------------------------------


def collect_scan(paths: Sequence["str | pathlib.Path"],
                 durability_prefixes: Sequence[str]
                 = DEFAULT_DURABILITY_PREFIXES) -> ScanData:
    """Run the per-file pass over every ``.py`` under ``paths``."""
    data = ScanData()
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise ConfigurationError(f"{path}: not parseable: {exc}")
        scan = _FileScan(canonical_path(path), source, tree,
                         durability_prefixes)
        scan.run()
        data.files_checked += 1
        data.findings.extend(scan.findings)
        data.usages.extend(scan.usages)
        data.emits.extend(scan.emits)
        data.folds.extend(scan.folds)
        if scan.path.endswith("fsck.py"):
            data.fsck_modules.append((scan.path, scan.table_call))
    return data


def discover_docs(paths: Sequence["str | pathlib.Path"]
                  ) -> Optional[pathlib.Path]:
    """``docs/CHAOS.md`` next to (or above) the scan targets, if any."""
    for raw in paths:
        base = pathlib.Path(raw).resolve()
        if base.is_file():
            base = base.parent
        for candidate in [base, *list(base.parents)[:5]]:
            docs = candidate / "docs" / "CHAOS.md"
            if docs.is_file():
                return docs
    return None


def crash_findings(paths: Sequence["str | pathlib.Path"],
                   catalogue: Optional[ChaosCatalogue] = None,
                   docs_path: "str | pathlib.Path | None" = None,
                   durability_prefixes: Sequence[str]
                   = DEFAULT_DURABILITY_PREFIXES,
                   only_rules: Optional[Sequence[str]] = None,
                   notes: Optional[list] = None
                   ) -> "tuple[list[Finding], int]":
    """All CC findings over ``paths``; returns ``(findings,
    files_checked)``.  ``only_rules`` restricts to a rule subset (the
    per-rule fixtures use this); ``notes`` (a list, appended in place)
    collects non-finding diagnostics such as a skipped docs check."""
    cat = catalogue if catalogue is not None else default_catalogue()
    data = collect_scan(paths, durability_prefixes=durability_prefixes)
    findings = list(data.findings)
    findings += chaos_coherence_findings(data.usages, cat)
    findings += journal_fold_findings(data.emits, data.folds,
                                      data.fsck_modules)
    if docs_path is None:
        docs_path = discover_docs(paths)
    if docs_path is not None:
        findings += docs_catalogue_findings(docs_path, cat)
    elif notes is not None:
        notes.append("docs/CHAOS.md not found near the scan targets; "
                     "catalogue-table check (CC006) skipped")
    if only_rules is not None:
        wanted = set(only_rules)
        findings = [f for f in findings if f.rule_id in wanted]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id,
                                 f.message))
    return findings, data.files_checked


@dataclass
class CrashReport(LintReport):
    """A lint report plus the crash analyzer's skip notes."""

    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [super().render()]
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        payload = super().to_dict()
        payload["notes"] = list(self.notes)
        return payload


def crash_report(paths: Sequence["str | pathlib.Path"],
                 baseline: Optional[Baseline] = None,
                 catalogue: Optional[ChaosCatalogue] = None,
                 docs_path: "str | pathlib.Path | None" = None,
                 durability_prefixes: Sequence[str]
                 = DEFAULT_DURABILITY_PREFIXES) -> CrashReport:
    """The full analyzer run: findings minus the baseline."""
    report = CrashReport()
    findings, report.files_checked = crash_findings(
        paths, catalogue=catalogue, docs_path=docs_path,
        durability_prefixes=durability_prefixes, notes=report.notes)
    for finding in findings:
        if baseline is not None and baseline.suppresses(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries()
    return report


def run_crash(paths: Optional[Sequence[str]] = None,
              baseline_path: Optional[str] = None,
              no_baseline: bool = False,
              output_format: str = "text",
              docs: Optional[str] = None,
              prune_baseline: bool = False,
              out=None) -> int:
    """Shared body of ``repro analyze crash``.

    Exit codes: 0 clean, 1 unsuppressed findings (or baseline entries
    pruned), 2 usage error (argparse).  The JSON report is canonical —
    sorted keys, fixed separators — so CI can byte-compare it.
    """
    from ..obs.export import canonical_json
    from .linter import default_lint_paths

    if out is None:  # bind at call time so stream capture works
        out = sys.stdout
    baseline = None
    if not no_baseline:
        source = pathlib.Path(baseline_path) if baseline_path \
            else DEFAULT_CRASH_BASELINE_PATH
        if source.exists():
            baseline = Baseline.load(source)
        elif baseline_path:
            raise ConfigurationError(
                f"baseline {baseline_path!r} not found")
    targets = list(paths) if paths else default_lint_paths()
    report = crash_report(targets, baseline=baseline, docs_path=docs)
    pruned = 0
    if prune_baseline and baseline is not None \
            and report.stale_baseline:
        pruned = baseline.write_pruned()
        report.notes.append(
            f"pruned {pruned} stale baseline entr"
            f"{'y' if pruned == 1 else 'ies'} from {baseline.source}")
    if output_format == "json":
        print(canonical_json(report.to_dict()), file=out)
    else:
        print(report.render(), file=out)
    return 0 if report.clean and not pruned else 1
