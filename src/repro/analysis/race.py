"""Simulated-resource race detector.

The simulator's concurrency is *simulated* — DES processes, sweep
cells, delegated syscalls — so the host's thread sanitizers see
nothing.  :class:`RaceDetector` is a lockdep-style checker over the
simulation's own shared resources (IKC rings, memcg charge accounting,
scheduler runqueues, the run cache), fed by hooks threaded through the
components exactly like the :mod:`repro.obs` tracer hooks: each hook
reads the ambient detector (:func:`get_race_detector`) and bails on
``None``, so a run without a detector installed pays one global read
per operation and allocates nothing.

Checks, per resource class:

* **ownership** — :meth:`acquire`/:meth:`release` track exclusive
  holders; conflicting acquisition, releasing an unheld resource, and
  writes under another actor's hold are violations.  Acquisition
  order feeds a lockdep graph; a cycle is a ``lock-order-inversion``.
* **epoch writes** — :meth:`write` with ``exclusive=True`` binds the
  resource to its first writer; any later write by a different actor
  without holding it is an unordered ``cross-owner-write`` (two
  simulated CPUs mutating one runqueue).
* **lost updates** — :meth:`rmw_begin`/:meth:`rmw_commit` bracket
  read-modify-write sections (cgroup charge accounting); a commit
  whose observed epoch is stale proves an interleaved writer whose
  update would be silently overwritten.
* **IKC FIFO** — :meth:`ikc_post`/:meth:`ikc_deliver` assert each
  channel's exactly-once, in-order contract: double delivery,
  delivery of a never-posted sequence, and send/recv inversions.
* **cache coherence** — :meth:`cache_put` requires every write of one
  content key to carry the same payload digest; divergence means two
  "identical" cells computed different results — the exact
  determinism regression this subsystem exists to catch.

Everything the detector records and reports is derived from simulated
operations in program order, so a seeded run produces a byte-identical
report every time (at fixed ``--jobs``; worker processes run with the
parent's detector absent, which is why ``repro analyze race`` drives
the sweep serially).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "RaceViolation", "RaceDetector", "get_race_detector", "detecting",
]


@dataclass(frozen=True)
class RaceViolation:
    """One detected ordering/ownership/coherence violation."""

    kind: str
    resource: str
    actor: str
    detail: str
    epoch: int

    def render(self) -> str:
        actor = f" actor={self.actor}" if self.actor else ""
        return (f"[{self.kind}] {self.resource}{actor} "
                f"@e{self.epoch}: {self.detail}")


class RaceDetector:
    """Tracks simulated-resource operations and collects violations."""

    def __init__(self) -> None:
        self.epoch = 0
        self.violations: list[RaceViolation] = []
        #: resource -> holding actor (exclusive holds only).
        self._held: dict[str, str] = {}
        #: actor -> stack of resources currently held.
        self._hold_stack: dict[str, list[str]] = {}
        #: lockdep graph: resource -> resources acquired while held.
        self._order_edges: dict[str, set[str]] = {}
        #: resource -> (epoch, actor) of the last write.
        self._last_write: dict[str, tuple[int, str]] = {}
        #: exclusive resources -> actor bound by first write.
        self._bound: dict[str, str] = {}
        self._ikc_posted: dict[str, set[int]] = {}
        self._ikc_delivered: dict[str, set[int]] = {}
        self._ikc_last_delivered: dict[str, int] = {}
        self._cache_digests: dict[str, str] = {}
        #: object identity -> (label, strong ref); the ref pins the
        #: object so a recycled allocation address can never alias two
        #: distinct resources.  id() here is an in-process identity
        #: key only — it never reaches the report.
        self._labels: dict[int, tuple[str, object]] = {}
        self._label_counts: dict[str, int] = {}
        self._event_counts: dict[str, int] = {}

    # -- identity ------------------------------------------------------

    def resource_for(self, obj: object, kind: str) -> str:
        """Deterministic label for a component instance: ``kind#N``
        with N assigned in first-observation order (which is itself
        deterministic in a seeded run)."""
        entry = self._labels.get(id(obj))
        if entry is not None:
            return entry[0]
        n = self._label_counts.get(kind, 0)
        self._label_counts[kind] = n + 1
        label = f"{kind}#{n}"
        self._labels[id(obj)] = (label, obj)
        return label

    # -- bookkeeping ---------------------------------------------------

    def _tick(self, resource: str) -> int:
        self.epoch += 1
        self._event_counts[resource] = \
            self._event_counts.get(resource, 0) + 1
        return self.epoch

    def _flag(self, kind: str, resource: str, actor: str,
              detail: str) -> None:
        self.violations.append(RaceViolation(
            kind=kind, resource=resource, actor=actor,
            detail=detail, epoch=self.epoch))

    @property
    def events(self) -> int:
        return sum(self._event_counts.values())

    # -- ownership / lockdep -------------------------------------------

    def acquire(self, resource: str, actor: str) -> None:
        self._tick(resource)
        holder = self._held.get(resource)
        if holder == actor:
            self._flag("double-acquire", resource, actor,
                       "actor already holds this resource")
        elif holder is not None:
            self._flag("conflicting-acquire", resource, actor,
                       f"held by {holder}; simulated actors never "
                       "block, so this acquisition cannot be exclusive")
        # Lockdep: an edge held -> resource for everything the actor
        # already holds; a pre-existing reverse path is an inversion.
        for held in self._hold_stack.get(actor, []):
            if held != resource and self._reachable(resource, held):
                self._flag("lock-order-inversion", resource, actor,
                           f"acquired after {held}, but {held} has "
                           f"been acquired after {resource} elsewhere")
            self._order_edges.setdefault(held, set()).add(resource)
        self._held[resource] = actor
        self._hold_stack.setdefault(actor, []).append(resource)

    def release(self, resource: str, actor: str) -> None:
        self._tick(resource)
        if self._held.get(resource) != actor:
            self._flag("release-unheld", resource, actor,
                       "released a resource this actor does not hold")
            return
        del self._held[resource]
        stack = self._hold_stack.get(actor, [])
        if resource in stack:
            stack.remove(resource)

    def _reachable(self, src: str, dst: str) -> bool:
        seen = set()
        frontier = [src]
        while frontier:
            node = frontier.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(sorted(self._order_edges.get(node, ())))
        return False

    # -- shared-state writes -------------------------------------------

    def write(self, resource: str, actor: str,
              exclusive: bool = False) -> None:
        epoch = self._tick(resource)
        holder = self._held.get(resource)
        if holder is not None and holder != actor:
            self._flag("write-while-held", resource, actor,
                       f"written while exclusively held by {holder}")
        if exclusive:
            bound = self._bound.setdefault(resource, actor)
            if bound != actor and holder != actor:
                self._flag("cross-owner-write", resource, actor,
                           f"resource is owned by {bound}; writing "
                           "without acquiring it is an unordered "
                           "cross-CPU update")
        self._last_write[resource] = (epoch, actor)

    def read(self, resource: str, actor: str = "") -> int:
        """Record a read; returns the epoch of the last write seen
        (0 when the resource was never written)."""
        self._tick(resource)
        return self._last_write.get(resource, (0, ""))[0]

    # -- read-modify-write sections ------------------------------------

    def rmw_begin(self, resource: str, actor: str = "") -> int:
        """Open an RMW section; the returned token captures the write
        epoch the section's read observed."""
        return self.read(resource, actor)

    def rmw_commit(self, resource: str, actor: str = "",
                   token: int = 0) -> None:
        epoch = self._tick(resource)
        last_epoch, last_actor = self._last_write.get(resource, (0, ""))
        if last_epoch != token:
            self._flag("lost-update", resource, actor,
                       f"commit based on epoch {token} but "
                       f"{last_actor or 'another actor'} wrote at "
                       f"epoch {last_epoch}; that update would be "
                       "silently overwritten")
        self._last_write[resource] = (epoch, actor)

    # -- IKC channels --------------------------------------------------

    def ikc_post(self, resource: str, seq: int) -> None:
        self._tick(resource)
        posted = self._ikc_posted.setdefault(resource, set())
        if seq in posted:
            self._flag("ikc-duplicate-post", resource, "",
                       f"sequence {seq} posted twice")
        posted.add(seq)

    def ikc_deliver(self, resource: str, seq: int) -> None:
        self._tick(resource)
        delivered = self._ikc_delivered.setdefault(resource, set())
        if seq not in self._ikc_posted.get(resource, ()):
            self._flag("ikc-phantom-delivery", resource, "",
                       f"sequence {seq} delivered but never posted")
        if seq in delivered:
            self._flag("ikc-double-delivery", resource, "",
                       f"sequence {seq} delivered twice (duplicated "
                       "doorbell / re-posted ring slot)")
        else:
            last = self._ikc_last_delivered.get(resource)
            if last is not None and seq < last:
                self._flag("ikc-inversion", resource, "",
                           f"sequence {seq} delivered after {last}; "
                           "the ring is FIFO")
            self._ikc_last_delivered[resource] = max(
                seq, last if last is not None else seq)
        delivered.add(seq)

    # -- run cache -----------------------------------------------------

    def cache_read(self, resource: str, key: str) -> None:
        self._tick(resource)

    def cache_put(self, resource: str, key: str, digest: str) -> None:
        self._tick(resource)
        prior = self._cache_digests.get(key)
        if prior is not None and prior != digest:
            self._flag("cache-divergent-write", resource, "",
                       f"key {key[:16]}... written with digest "
                       f"{digest[:12]} after {prior[:12]}; identical "
                       "cells must produce identical results")
        self._cache_digests[key] = digest

    # -- reporting -----------------------------------------------------

    def resource_counts(self) -> dict[str, int]:
        return {name: self._event_counts[name]
                for name in sorted(self._event_counts)}

    def unreleased(self) -> list[tuple[str, str]]:
        """(resource, actor) pairs still held at the end of a run —
        reported informationally (a run may legitimately end mid-hold
        only if the component never completes, which the clean
        experiments never do)."""
        return sorted(self._held.items())

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "resources": self.resource_counts(),
            "violations": [vars(v) for v in self.violations],
            "unreleased": [list(pair) for pair in self.unreleased()],
        }

    def to_json(self) -> str:
        """Canonical report JSON (sorted keys, fixed separators) —
        byte-identical across repeat runs of the same seed."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def report(self) -> str:
        lines = [
            f"race report: {len(self.violations)} violation(s), "
            f"{self.events} event(s) over "
            f"{len(self._event_counts)} resource(s)"
        ]
        counts = self.resource_counts()
        if counts:
            lines.append("resources:")
            for name, count in counts.items():
                lines.append(f"  {name:<28} {count} event(s)")
        if self.violations:
            lines.append("violations:")
            for violation in self.violations:
                lines.append("  " + violation.render())
        for resource, actor in self.unreleased():
            lines.append(f"note: {resource} still held by {actor} "
                         "at end of run")
        return "\n".join(lines)


#: The ambient detector; ``None`` disables every hook.
_DETECTOR: Optional[RaceDetector] = None


def get_race_detector() -> Optional[RaceDetector]:
    """The installed detector, or ``None`` when detection is off.

    Hook call sites mirror the tracer's shape — ``rd =
    get_race_detector()`` / ``if rd is not None: ...`` — so a run
    without a detector costs one module-global read per operation.
    """
    return _DETECTOR


@contextmanager
def detecting(detector: Optional[RaceDetector] = None
              ) -> Iterator[RaceDetector]:
    """Install ``detector`` (a fresh one by default) for the block;
    the previous ambient state is restored on exit, so nested analysis
    scopes never leak."""
    global _DETECTOR
    if detector is None:
        detector = RaceDetector()
    previous = _DETECTOR
    _DETECTOR = detector
    try:
        yield detector
    finally:
        _DETECTOR = previous
