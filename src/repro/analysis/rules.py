"""Determinism-sanitizer rule catalog and AST checkers.

Every invariant this repository stakes its output on — byte-identical
renders across seeds, ``--jobs`` values and cache tiers — reduces to a
short list of *source-level* disciplines: no wall clocks in simulation
code, no unseeded global RNG, no filesystem-order or set-order
iteration feeding output, no process-salted identities in keys.  Each
discipline is one :class:`LintRule` here, checked by a single AST pass
(:class:`FileChecker`) over each file.

Rules are identified by stable IDs (``DET001``..) so findings can be
suppressed individually via the checked-in baseline
(:mod:`repro.analysis.baseline`) and referenced from commit messages
and docs (see ``docs/ANALYSIS.md`` for the full catalog with
rationale and examples).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = ["ALL_RULES_BY_ID", "LintRule", "Finding", "RULES",
           "RULES_BY_ID", "FileChecker", "register_rules"]


@dataclass(frozen=True)
class LintRule:
    """One determinism discipline: stable ID, summary, and fix-it."""

    rule_id: str
    title: str
    fixit: str


RULES: tuple[LintRule, ...] = (
    LintRule(
        "DET001",
        "wall-clock call in simulation code",
        "derive timestamps from the DES engine clock, a cost-model "
        "accumulation, or Tracer.advance(); wall time may only be read "
        "by baselined measurement plumbing",
    ),
    LintRule(
        "DET002",
        "unseeded / global RNG use",
        "thread an explicit np.random.default_rng(seed) (or "
        "repro.sim.rng stream) through the call chain; never the "
        "process-global random/np.random state",
    ),
    LintRule(
        "DET003",
        "filesystem iteration in OS-dependent order",
        "wrap os.listdir/glob/iterdir results in sorted(...) before "
        "anything consumes their order",
    ),
    LintRule(
        "DET004",
        "iteration over an unordered set (or dict view in an "
        "exporter/key scope)",
        "iterate sorted(the_set) so downstream output and cache keys "
        "are independent of hash-bucket order",
    ),
    LintRule(
        "DET005",
        "mutable default argument",
        "default to None (or dataclasses.field(default_factory=...)) "
        "and allocate per call; shared defaults leak state between "
        "calls",
    ),
    LintRule(
        "DET006",
        "completion-order harvest of parallel results",
        "iterate futures in submission order (as the perf executor "
        "does); as_completed/imap_unordered order wall-clock "
        "scheduling into results, breaking float-accumulation "
        "reproducibility",
    ),
    LintRule(
        "DET007",
        "frozen dataclass field missing from its to_dict()",
        "serialize every declared field (or rename the method): a "
        "field absent from the canonical JSON silently drops out of "
        "fingerprints and cache keys",
    ),
    LintRule(
        "DET008",
        "exception class not rooted in repro.errors",
        "derive library exceptions from repro.errors.ReproError (or a "
        "subclass) so callers can catch library failures without "
        "masking programming errors",
    ),
    LintRule(
        "DET009",
        "process-salted identity (builtin hash()/id()) in library code",
        "hash() is salted per process (PYTHONHASHSEED) and id() "
        "differs every run; use hashlib/fnv1a_64 or an explicit key "
        "for anything that can reach output or a cache key",
    ),
    LintRule(
        "DET010",
        "json.dumps feeding a digest without sort_keys=True",
        "pass sort_keys=True (and fixed separators) when the dump is "
        "encoded/hashed: dict insertion order is not part of the "
        "content identity",
    ),
)

RULES_BY_ID = {rule.rule_id: rule for rule in RULES}

#: Every registered rule across families (DET here, CC in
#: :mod:`repro.analysis.crashsafe`).  Baseline validation and
#: :meth:`Finding.render` consult this so findings from any family
#: resolve to their catalogue entry.
ALL_RULES_BY_ID: dict[str, LintRule] = dict(RULES_BY_ID)


def register_rules(rules: "tuple[LintRule, ...]") -> None:
    """Add a rule family to the shared registry (idempotent; a
    conflicting re-registration of an existing id is an error)."""
    for rule in rules:
        existing = ALL_RULES_BY_ID.get(rule.rule_id)
        if existing is not None and existing != rule:
            raise ValueError(
                f"rule id {rule.rule_id!r} already registered with a "
                "different definition")
        ALL_RULES_BY_ID[rule.rule_id] = rule


@dataclass(frozen=True)
class Finding:
    """One rule hit at one source location.

    The baseline key (:meth:`key`) deliberately excludes line/column so
    intentional suppressions survive unrelated edits above them.
    """

    rule_id: str
    path: str
    line: int
    col: int
    scope: str
    snippet: str
    message: str

    def key(self) -> tuple[str, str, str, str]:
        return (self.rule_id, self.path, self.scope, self.snippet)

    def render(self) -> str:
        rule = ALL_RULES_BY_ID.get(self.rule_id) or LintRule(
            self.rule_id, "unregistered rule", "register the rule")
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"[{self.scope}] {self.message}\n"
                f"    {self.snippet}\n"
                f"    fix: {rule.fixit}")


#: Fully-qualified callables that read the host wall clock (DET001).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``random`` module-level functions that mutate/read global state
#: (DET002).  Methods on an explicit Generator/Random instance never
#: resolve to these fully-qualified names, so they stay legal.
_GLOBAL_RANDOM = frozenset({
    "random." + name for name in (
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "seed", "getrandbits", "gauss",
        "normalvariate", "expovariate", "betavariate", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "lognormvariate", "binomialvariate", "randbytes",
    )
})

#: ``numpy.random`` attributes that are *not* the legacy global-state
#: API and therefore allowed (DET002).
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Module-level filesystem enumerators (DET003); method names are
#: matched separately.
_FS_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_FS_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Builtins whose result is independent of argument order, so feeding
#: them an unsorted enumeration is safe.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "len", "sum", "max", "min", "any", "all",
    "set", "frozenset",
})
_TRANSPARENT_WRAPPERS = frozenset({"list", "tuple"})

#: Builtin exception roots that library classes must not derive from
#: directly (DET008) — the hierarchy roots in repro/errors.py instead.
_BUILTIN_EXCEPTIONS = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "LookupError", "ArithmeticError", "RuntimeError",
    "OSError", "IOError", "AttributeError", "NotImplementedError",
    "StopIteration", "SystemError",
})

#: Function-name fragments marking scopes whose iteration order reaches
#: an exporter or content key (tightens DET004 to also cover dict
#: views there).
_SINK_SCOPE_FRAGMENTS = ("export", "json", "canonical", "fingerprint",
                         "to_dict", "cache_key", "render")

#: Digest sinks for DET010: a ``json.dumps`` whose result reaches one
#: of these (or ``.encode()``) must sort its keys.
_DIGEST_FRAGMENTS = ("sha256", "sha1", "sha512", "md5", "blake2",
                     "fnv1a", "hashlib")


class FileChecker(ast.NodeVisitor):
    """Single-pass checker running every rule over one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self._lines = source.splitlines()
        self.findings: list[Finding] = []
        self._scope: list[str] = []
        #: local name -> fully-qualified origin, from import statements.
        self._aliases: dict[str, str] = {}
        #: child node id -> parent node, for upward context checks.
        self._parents: dict[int, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node

    # -- plumbing ------------------------------------------------------

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self._lines):
            snippet = self._lines[line - 1].strip()
        self.findings.append(Finding(
            rule_id=rule_id, path=self.path, line=line, col=col,
            scope=".".join(self._scope) or "<module>",
            snippet=snippet, message=message))

    def _qual(self, node: ast.AST) -> str:
        """Dotted name of an expression, import aliases resolved
        (``np.random.seed`` -> ``numpy.random.seed``); "" when the
        expression is not a plain dotted name."""
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self._qual(node.value)
            return f"{base}.{node.attr}" if base else ""
        return ""

    def _in_sink_scope(self) -> bool:
        return any(fragment in part.lower()
                   for part in self._scope
                   for fragment in _SINK_SCOPE_FRAGMENTS)

    def _order_safe(self, node: ast.AST) -> bool:
        """Is this enumeration consumed only by an order-insensitive
        builtin (possibly through list()/tuple() or a comprehension)?"""
        cur: ast.AST = node
        for _ in range(8):
            parent = self._parents.get(id(cur))
            if parent is None:
                return False
            if isinstance(parent, ast.Call) and parent.func is not cur:
                name = self._qual(parent.func).rsplit(".", 1)[-1]
                if name in _ORDER_INSENSITIVE:
                    return True
                if name in _TRANSPARENT_WRAPPERS:
                    cur = parent
                    continue
                return False
            if isinstance(parent, (ast.comprehension, ast.GeneratorExp,
                                   ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.Starred)):
                cur = parent
                continue
            return False
        return False

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self._qual(node.func) in ("set", "frozenset")
        return False

    def _is_dict_view(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("keys", "values", "items")
                and not node.args and not node.keywords)

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            self._aliases[local] = (alias.name if alias.asname
                                    else alias.name.split(".", 1)[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = ("." * node.level) + (node.module or "")
        for alias in node.names:
            local = alias.asname or alias.name
            self._aliases[local] = f"{module}.{alias.name}"
        self.generic_visit(node)

    # -- scope ---------------------------------------------------------

    def _visit_scoped(self, node, name: str) -> None:
        self._scope.append(name)
        try:
            self.generic_visit(node)
        finally:
            self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._check_mutable_defaults(node)
        self._visit_scoped(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_exception_root(node)
        self._check_frozen_to_dict(node)
        self._visit_scoped(node, node.name)

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for comp in node.generators:
            self._check_unordered_iter(comp.iter)
        self.generic_visit(node)

    visit_GeneratorExp = _visit_comprehension
    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # -- rule bodies ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        q = self._qual(node.func)

        if q in _WALL_CLOCK:  # DET001
            self._emit("DET001", node,
                       f"{q}() reads the host wall clock; simulated "
                       "output must not depend on it")

        if q in _GLOBAL_RANDOM:  # DET002
            self._emit("DET002", node,
                       f"{q}() uses the process-global RNG state")
        elif q.startswith("numpy.random."):
            attr = q.split(".", 2)[2].split(".", 1)[0]
            if attr not in _NP_RANDOM_ALLOWED:
                self._emit("DET002", node,
                           f"{q}() is the legacy global-state numpy "
                           "RNG API")

        is_fs = q in _FS_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_METHODS)
        if is_fs and not self._order_safe(node):  # DET003
            label = q or node.func.attr
            self._emit("DET003", node,
                       f"{label}() enumerates the filesystem "
                       "in OS-dependent order")

        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "join" and node.args
                and self._is_set_expr(node.args[0])):  # DET004
            self._emit("DET004", node,
                       "join over a set concatenates in hash order")

        if (q == "concurrent.futures.as_completed"
                or q.endswith(".as_completed") or q == "as_completed"
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "imap_unordered")):  # DET006
            self._emit("DET006", node,
                       "results harvested in completion order vary "
                       "with host scheduling")

        if q in ("hash", "id"):  # DET009
            self._emit("DET009", node,
                       f"builtin {q}() is process-specific "
                       "(salted hash / allocation address)")

        if q == "json.dumps":  # DET010
            self._check_digest_dumps(node)

        self.generic_visit(node)

    def _check_unordered_iter(self, it: ast.AST) -> None:
        """DET004: loop/comprehension source is an unordered set — or,
        in exporter/key scopes, a dict view (whose insertion order is
        construction-path dependent)."""
        if self._is_set_expr(it):
            self._emit("DET004", it,
                       "iteration over a set visits hash order")
        elif self._is_dict_view(it) and self._in_sink_scope():
            self._emit("DET004", it,
                       f"dict .{it.func.attr}() order reaches an "
                       "exporter/content key; sort explicitly")

    def _check_mutable_defaults(self, node) -> None:
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call):
                mutable = self._qual(default.func) in (
                    "list", "dict", "set", "bytearray")
            if mutable:  # DET005
                self._emit("DET005", default,
                           "mutable default is shared across calls")

    def _check_exception_root(self, node: ast.ClassDef) -> None:
        if self.path.endswith("errors.py"):
            return  # the hierarchy roots live here by design
        for base in node.bases:
            name = self._qual(base).rsplit(".", 1)[-1]
            if name in _BUILTIN_EXCEPTIONS:  # DET008
                self._emit("DET008", node,
                           f"class {node.name} derives from builtin "
                           f"{name}, bypassing the repro.errors "
                           "hierarchy")

    def _check_frozen_to_dict(self, node: ast.ClassDef) -> None:
        """DET007: a frozen dataclass with a ``to_dict`` must reference
        every public field in it (as ``self.<field>`` or a string key),
        else the field is silently absent from canonical JSON."""
        if not any(self._is_frozen_dataclass(d) for d in node.decorator_list):
            return
        to_dict = next((item for item in node.body
                        if isinstance(item, ast.FunctionDef)
                        and item.name == "to_dict"), None)
        if to_dict is None:
            return
        for sub in ast.walk(to_dict):
            if isinstance(sub, ast.Call):
                name = self._qual(sub.func).rsplit(".", 1)[-1]
                if name in ("fields", "asdict", "astuple"):
                    return  # exhaustive by construction
        fields = []
        for item in node.body:
            if (isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and not item.target.id.startswith("_")
                    and "ClassVar" not in ast.dump(item.annotation)):
                fields.append(item.target.id)
        referenced: set[str] = set()
        for sub in ast.walk(to_dict):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                referenced.add(sub.value)
            elif (isinstance(sub, ast.Attribute)
                  and isinstance(sub.value, ast.Name)
                  and sub.value.id == "self"):
                referenced.add(sub.attr)
        missing = sorted(set(fields) - referenced)
        if missing:
            self._emit("DET007", node,
                       f"to_dict() of frozen dataclass {node.name} "
                       f"never references field(s): {', '.join(missing)}")

    def _is_frozen_dataclass(self, decorator: ast.AST) -> bool:
        if not isinstance(decorator, ast.Call):
            return False
        if self._qual(decorator.func).rsplit(".", 1)[-1] != "dataclass":
            return False
        return any(kw.arg == "frozen"
                   and isinstance(kw.value, ast.Constant)
                   and kw.value.value is True
                   for kw in decorator.keywords)

    def _check_digest_dumps(self, node: ast.Call) -> None:
        sorts = any(kw.arg == "sort_keys"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords)
        if sorts:
            return
        cur: ast.AST = node
        for _ in range(4):
            parent = self._parents.get(id(cur))
            if parent is None:
                return
            if (isinstance(parent, ast.Attribute)
                    and parent.attr == "encode"):
                self._emit("DET010", node,
                           "json.dumps(...).encode() without "
                           "sort_keys=True makes the digest depend on "
                           "dict insertion order")
                return
            if isinstance(parent, ast.Call) and parent.func is not cur:
                q = self._qual(parent.func).lower()
                if any(fragment in q for fragment in _DIGEST_FRAGMENTS):
                    self._emit("DET010", node,
                               "json.dumps fed to a digest without "
                               "sort_keys=True")
                    return
            cur = parent
