"""Static analysis for the simulator's one non-negotiable invariant:
byte-identical output across seeds, ``--jobs`` values and cache tiers.

Two instruments, one subsystem:

* the **determinism sanitizer** (:mod:`repro.analysis.rules`,
  :mod:`repro.analysis.linter`) — an AST lint pass with ~10 custom
  rules (wall clocks, global RNG, filesystem/set iteration order,
  process-salted identities, ...) and a checked-in suppression
  baseline (:mod:`repro.analysis.baseline`);
* the **simulated-resource race detector**
  (:mod:`repro.analysis.race`, :mod:`repro.analysis.runrace`) — a
  lockdep-style ordering/ownership/coherence checker over the
  simulation's own shared resources (IKC rings, memcg accounting,
  runqueues, the run cache), fed by tracer-style ambient hooks.

CLI: ``repro analyze lint [paths...]`` and ``repro analyze race
<experiment>``; the ``repro-lint`` console script is the same gate CI
runs.  See ``docs/ANALYSIS.md`` for the rule catalog and report
formats.
"""

from .baseline import DEFAULT_BASELINE_PATH, Baseline, BaselineEntry
from .linter import LintReport, lint_paths
from .race import (
    RaceDetector,
    RaceViolation,
    detecting,
    get_race_detector,
)
from .rules import RULES, Finding, LintRule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_PATH",
    "Finding",
    "LintReport",
    "LintRule",
    "RULES",
    "RaceDetector",
    "RaceViolation",
    "detecting",
    "get_race_detector",
    "lint_paths",
]
