"""Static analysis for the simulator's one non-negotiable invariant:
byte-identical output across seeds, ``--jobs`` values and cache tiers.

Two instruments, one subsystem:

* the **determinism sanitizer** (:mod:`repro.analysis.rules`,
  :mod:`repro.analysis.linter`) — an AST lint pass with ~10 custom
  rules (wall clocks, global RNG, filesystem/set iteration order,
  process-salted identities, ...) and a checked-in suppression
  baseline (:mod:`repro.analysis.baseline`);
* the **simulated-resource race detector**
  (:mod:`repro.analysis.race`, :mod:`repro.analysis.runrace`) — a
  lockdep-style ordering/ownership/coherence checker over the
  simulation's own shared resources (IKC rings, memcg accounting,
  runqueues, the run cache), fed by tracer-style ambient hooks;
* the **crash-consistency analyzer**
  (:mod:`repro.analysis.crashsafe`, CC001–CC009 on the per-function
  CFG layer in :mod:`repro.analysis.cfg`) — durability-idiom
  dataflow, chaos-catalogue coherence, crash-absorption and
  resource-release checks, journal-fold coverage.

CLI: ``repro analyze lint [paths...]``, ``repro analyze crash
[paths...]``, ``repro analyze rules`` and ``repro analyze race
<experiment>``; the ``repro-lint`` console script is the same gate CI
runs.  See ``docs/ANALYSIS.md`` for the rule catalogs and report
formats.
"""

from .baseline import DEFAULT_BASELINE_PATH, Baseline, BaselineEntry
from .cfg import CFG, build_cfg, function_cfgs
from .crashsafe import (
    CC_RULES,
    DEFAULT_CRASH_BASELINE_PATH,
    CrashReport,
    crash_report,
    run_crash,
)
from .linter import LintReport, lint_paths
from .race import (
    RaceDetector,
    RaceViolation,
    detecting,
    get_race_detector,
)
from .rules import ALL_RULES_BY_ID, RULES, Finding, LintRule

__all__ = [
    "ALL_RULES_BY_ID",
    "Baseline",
    "BaselineEntry",
    "CC_RULES",
    "CFG",
    "CrashReport",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CRASH_BASELINE_PATH",
    "Finding",
    "LintReport",
    "LintRule",
    "RULES",
    "RaceDetector",
    "RaceViolation",
    "build_cfg",
    "crash_report",
    "detecting",
    "function_cfgs",
    "get_race_detector",
    "lint_paths",
    "run_crash",
]
