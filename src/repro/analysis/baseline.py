"""Checked-in suppression baseline for the determinism sanitizer.

The merged tree must lint clean (``repro analyze lint src/repro``
exits 0), yet a handful of hits are *intentional* — e.g. the perf
counters' wall-clock timer measures host execution by design.  Those
live in ``analysis/baseline.json`` next to this module, each with a
one-line justification, and are reported as suppressed rather than
failing the gate.

Baseline entries match on ``(rule, path, scope, snippet)`` — never on
line numbers — so edits elsewhere in a file don't invalidate them,
while any change to the offending line itself surfaces the finding
again for re-review.  Entries that no longer match anything are
reported as stale so the baseline can only shrink, not rot.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from ..errors import ConfigurationError
from .rules import ALL_RULES_BY_ID, Finding

__all__ = ["BaselineEntry", "Baseline", "DEFAULT_BASELINE_PATH"]

#: The packaged baseline covering src/repro itself.
DEFAULT_BASELINE_PATH = pathlib.Path(__file__).with_name("baseline.json")

_REQUIRED = ("rule", "path", "scope", "snippet", "justification")


@dataclass(frozen=True)
class BaselineEntry:
    """One intentional, justified rule hit."""

    rule: str
    path: str
    scope: str
    snippet: str
    justification: str

    def key(self) -> tuple[str, str, str, str]:
        return (self.rule, self.path, self.scope, self.snippet)


class Baseline:
    """A set of suppressions plus bookkeeping of which ones matched."""

    def __init__(self, entries: list[BaselineEntry],
                 source: str = "<memory>",
                 extra: dict | None = None) -> None:
        self.source = source
        self.entries = list(entries)
        #: Non-``entries`` payload keys (e.g. a ``comment``), preserved
        #: verbatim when the file is rewritten by ``--prune-baseline``.
        self.extra = dict(extra or {})
        self._by_key = {}
        for entry in self.entries:
            if entry.key() in self._by_key:
                raise ConfigurationError(
                    f"baseline {source}: duplicate entry for "
                    f"{entry.key()!r}")
            self._by_key[entry.key()] = entry
        self._used: set[tuple[str, str, str, str]] = set()

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        path = pathlib.Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ConfigurationError(f"cannot read baseline {path}: {exc}")
        except ValueError as exc:
            raise ConfigurationError(f"baseline {path}: invalid JSON: {exc}")
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ConfigurationError(
                f"baseline {path}: expected an object with 'entries'")
        entries = []
        for i, raw in enumerate(payload["entries"]):
            missing = [k for k in _REQUIRED if k not in raw]
            if missing:
                raise ConfigurationError(
                    f"baseline {path}: entry {i} missing {missing}")
            if raw["rule"] not in ALL_RULES_BY_ID:
                raise ConfigurationError(
                    f"baseline {path}: entry {i} names unknown rule "
                    f"{raw['rule']!r}")
            entries.append(BaselineEntry(
                rule=raw["rule"], path=raw["path"], scope=raw["scope"],
                snippet=raw["snippet"],
                justification=raw["justification"]))
        extra = {k: v for k, v in payload.items() if k != "entries"}
        return cls(entries, source=str(path), extra=extra)

    def suppresses(self, finding: Finding) -> bool:
        entry = self._by_key.get(finding.key())
        if entry is None:
            return False
        self._used.add(entry.key())
        return True

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched no finding this run (candidates for
        removal — the offending code was fixed or moved)."""
        return [e for e in self.entries if e.key() not in self._used]

    def write_pruned(self, path: "str | pathlib.Path | None" = None
                     ) -> int:
        """Rewrite the baseline file keeping only entries that matched
        a finding this run; returns the number of entries dropped.
        Non-entry payload keys are preserved verbatim.  Only meaningful
        after a lint run has exercised :meth:`suppresses`."""
        target = pathlib.Path(path) if path is not None \
            else pathlib.Path(self.source)
        stale = {e.key() for e in self.stale_entries()}
        keep = [e for e in self.entries if e.key() not in stale]
        payload = dict(self.extra)
        payload["entries"] = [
            {"rule": e.rule, "path": e.path, "scope": e.scope,
             "snippet": e.snippet, "justification": e.justification}
            for e in keep]
        target.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
        return len(stale)
