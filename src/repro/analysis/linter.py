"""Determinism sanitizer driver: files in, deterministic report out.

``repro analyze lint [paths...]`` (or the ``repro-lint`` console
script) parses every ``.py`` file under the given paths, runs the
:mod:`repro.analysis.rules` catalog over each, subtracts the
checked-in baseline, and renders findings sorted by location — the
same bytes on every machine, which is what lets CI diff the gate's
output.

Exit codes: ``0`` clean (possibly with baselined suppressions), ``1``
at least one unsuppressed finding, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ConfigurationError
from .baseline import DEFAULT_BASELINE_PATH, Baseline
from .rules import RULES, RULES_BY_ID, FileChecker, Finding

__all__ = ["LintReport", "lint_paths", "canonical_path", "main"]

#: Path segment that anchors canonical finding paths: anything inside
#: the installed/checked-out ``repro`` package reports as
#: ``repro/<subpath>`` regardless of where the tree lives on disk, so
#: baseline entries are machine-independent.
_PACKAGE_MARKER = "/repro/"


def canonical_path(path: pathlib.Path) -> str:
    """Stable, machine-independent identity of a linted file."""
    p = path.resolve().as_posix()
    if _PACKAGE_MARKER in p:
        return "repro/" + p.rsplit(_PACKAGE_MARKER, 1)[1]
    try:
        return path.resolve().relative_to(
            pathlib.Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Sequence[str | pathlib.Path]
                      ) -> list[pathlib.Path]:
    """Every ``.py`` file under ``paths``, sorted (the linter applies
    its own DET003 discipline to itself)."""
    out: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(path)
        else:
            raise ConfigurationError(f"lint target {raw!r} not found")
    return out


def lint_file(path: pathlib.Path) -> list[Finding]:
    """All rule hits in one file (baseline not applied)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ConfigurationError(f"{path}: not parseable: {exc}")
    checker = FileChecker(canonical_path(path), source, tree)
    checker.visit(tree)
    return checker.findings


@dataclass
class LintReport:
    """Outcome of one lint run: surviving findings + suppressions."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed by baseline) "
            f"across {self.files_checked} file(s)")
        for entry in self.stale_baseline:
            lines.append(
                f"stale baseline entry (matched nothing): "
                f"{entry.rule} {entry.path} [{entry.scope}] "
                f"{entry.snippet!r}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": [vars(f) for f in self.findings],
            "suppressed": [vars(f) for f in self.suppressed],
            "stale_baseline": [vars(e) for e in self.stale_baseline],
        }


def lint_paths(paths: Sequence[str | pathlib.Path],
               baseline: Optional[Baseline] = None) -> LintReport:
    """Lint every ``.py`` under ``paths``; findings sorted by
    ``(path, line, col, rule)`` so the report is byte-deterministic."""
    report = LintReport()
    all_findings: list[Finding] = []
    for path in iter_python_files(paths):
        report.files_checked += 1
        all_findings.extend(lint_file(path))
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    for finding in all_findings:
        if baseline is not None and baseline.suppresses(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries()
    return report


def rule_catalog() -> str:
    """The rule table ``repro analyze lint --rules`` prints."""
    lines = ["determinism sanitizer rules:"]
    for rule in RULES:
        lines.append(f"  {rule.rule_id}  {rule.title}")
        lines.append(f"          fix: {rule.fixit}")
    return "\n".join(lines)


def all_rules() -> "list":
    """Every registered rule (DET + CC), sorted by id.  Importing the
    crashsafe module here (lazily — it imports this module) is what
    registers the CC family when callers enter via the linter alone."""
    from . import crashsafe  # noqa: F401  (registers CC_RULES)
    from .rules import ALL_RULES_BY_ID
    return [ALL_RULES_BY_ID[rid] for rid in sorted(ALL_RULES_BY_ID)]


def run_rules(output_format: str = "text", out=None) -> int:
    """Shared body of ``repro analyze rules``: the machine-readable
    rule catalogue ``tools/gen_api.py`` and the docs consume, so the
    tables in ``docs/ANALYSIS.md``/``docs/API.md`` cannot drift from
    the code.  JSON output is canonical (sorted keys, fixed
    separators)."""
    from ..obs.export import canonical_json

    if out is None:  # bind at call time so stream capture works
        out = sys.stdout
    rules = all_rules()
    if output_format == "json":
        payload = [{"rule": r.rule_id, "title": r.title,
                    "fixit": r.fixit,
                    "family": "crash-consistency"
                    if r.rule_id.startswith("CC") else "determinism"}
                   for r in rules]
        print(canonical_json(payload), file=out)
    else:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}", file=out)
    return 0


def default_lint_paths() -> list[pathlib.Path]:
    """With no explicit targets, lint the installed repro package."""
    return [pathlib.Path(__file__).resolve().parent.parent]


def run_lint(paths: Sequence[str] | None = None,
             baseline_path: Optional[str] = None,
             no_baseline: bool = False,
             output_format: str = "text",
             list_rules: bool = False,
             prune_baseline: bool = False,
             out=None) -> int:
    """Shared body of ``repro analyze lint`` and ``repro-lint``.

    ``prune_baseline`` rewrites the baseline file dropping entries
    that matched nothing this run; exits 1 when anything was pruned
    (the tree changed under the baseline — re-review), 0 on an
    idempotent re-run.
    """
    if out is None:  # bind at call time so stream capture works
        out = sys.stdout
    if list_rules:
        print(rule_catalog(), file=out)
        return 0
    baseline = None
    if not no_baseline:
        source = pathlib.Path(baseline_path) if baseline_path \
            else DEFAULT_BASELINE_PATH
        if source.exists():
            baseline = Baseline.load(source)
        elif baseline_path:
            raise ConfigurationError(
                f"baseline {baseline_path!r} not found")
    targets = list(paths) if paths else default_lint_paths()
    report = lint_paths(targets, baseline=baseline)
    pruned = 0
    if prune_baseline and baseline is not None \
            and report.stale_baseline:
        pruned = baseline.write_pruned()
        report.stale_baseline = []
    if output_format == "json":
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2),
              file=out)
    else:
        print(report.render(), file=out)
        if pruned:
            print(f"pruned {pruned} stale baseline entr"
                  f"{'y' if pruned == 1 else 'ies'} from "
                  f"{baseline.source}", file=out)
    return 0 if report.clean and not pruned else 1


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST determinism sanitizer over repro source "
                    "trees (same gate CI runs)")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppression baseline JSON (default: the "
                             "packaged analysis/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every hit, baselined or not")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", dest="output_format")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline dropping stale "
                             "entries; exit 1 when anything was pruned")
    args = parser.parse_args(argv)
    return run_lint(paths=args.paths, baseline_path=args.baseline,
                    no_baseline=args.no_baseline,
                    output_format=args.output_format,
                    list_rules=args.rules,
                    prune_baseline=args.prune_baseline)


if __name__ == "__main__":
    sys.exit(main())
