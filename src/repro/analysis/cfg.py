"""Lightweight per-function control-flow graphs for the analyzers.

The crash-consistency rules (:mod:`repro.analysis.crashsafe`) need
path-sensitive answers the plain AST walk of the determinism sanitizer
cannot give: *does the fsync dominate the rename on every path?*,
*is the descriptor closed on every way out of the function, including
the exceptional ones?*  This module builds a statement-level CFG per
function — small, conservative, and honest about exceptions — and
answers those questions with classic dominator math plus set-cut
reachability.

Design points:

* **Statement granularity.**  One node per simple statement; branch
  heads (``if``/``while``/``for`` tests) get their own node.  Synthetic
  ``ENTRY``/``EXIT`` nodes bracket the function.
* **Exception edges are explicit and separate.**  A statement that can
  raise (it contains a call, ``raise`` or ``assert``) gets *exception*
  edges to the innermost enclosing handlers, then through every
  enclosing ``finally`` out to ``EXIT``.  Normal and exceptional
  successors are kept in separate maps so queries can anchor on "the
  statement completed" (its normal successors) while reachability
  still walks both kinds.
* **``finally`` bodies are cloned.**  The normal-completion path and
  the exceptional pass-through get separate copies of the ``finally``
  body.  Without the split, the exceptional entry would merge into the
  normal continuation and manufacture paths like *write raised → close
  → replace* that the program cannot take — exactly the false positive
  that would make the fsync-dominates-rename rule useless.
* **Assumed-true conditions.**  ``build_cfg(..., assume_true=
  ("durable",))`` prunes the false edge of any ``if`` whose test is a
  bare name/attribute ending in an assumed name (``if self.durable:``).
  The durability rules check the ``durable=True`` configuration; the
  non-durable escape hatch is deliberate and out of scope.

Dominance queries come in two shapes: the classic single-node
:meth:`CFG.dominates`/:meth:`CFG.postdominates`, and the set-cut form
:meth:`CFG.always_passes_through` (no path from ``start`` to ``EXIT``
avoids the cut set) / :meth:`CFG.cut_dominates` (no path from ``ENTRY``
to ``target`` avoids the cut set), which is what "an ``os.fsync`` must
dominate the rename" and "some ``os.close`` must postdominate the
open" actually mean when the idiom has more than one sanctioned call
site.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

__all__ = ["CFG", "build_cfg", "function_cfgs"]


def _mentions_assumed(test: ast.AST, assume_true: Sequence[str]) -> bool:
    """True when ``test`` is a bare name/attribute chain whose final
    component is one of the assumed-true names (``durable``,
    ``self.durable``, ``self.queue.durable``).  Anything with operators
    (``not durable``, comparisons) is deliberately not matched — the
    pruning must never invert a negated test."""
    node = test
    while isinstance(node, ast.Attribute):
        if node.attr in assume_true:
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id in assume_true


def _can_raise(node: ast.AST) -> bool:
    """Conservative may-raise test: calls, ``raise`` and ``assert``."""
    return any(isinstance(sub, (ast.Call, ast.Raise, ast.Assert))
               for sub in ast.walk(node))


class _Frame:
    """One enclosing ``try`` during the build: its live handler entry
    nodes and, when a ``finally`` exists, the entry node of the
    *exceptional* clone of the finally body."""

    def __init__(self, handler_entries: "list[int]",
                 exc_finally_entry: "Optional[int]") -> None:
        self.handler_entries = handler_entries
        self.exc_finally_entry = exc_finally_entry


class CFG:
    """A built control-flow graph; query-only after construction."""

    def __init__(self) -> None:
        self.entry = 0
        self.exit = 1
        #: node id -> AST node (or a str label for synthetic nodes).
        self.label: dict[int, object] = {self.entry: "<entry>",
                                         self.exit: "<exit>"}
        self.succ: dict[int, set[int]] = {self.entry: set(),
                                          self.exit: set()}
        self.exc_succ: dict[int, set[int]] = {self.entry: set(),
                                              self.exit: set()}
        #: ast statement (identity-keyed) -> every node carrying it
        #: (finally bodies are cloned, so one statement can own
        #: several nodes).
        self._stmt_nodes: "dict[ast.AST, list[int]]" = {}
        #: Nodes that live inside a ``finally`` clone.  Release-style
        #: queries may ignore exception edges *originating* here: an
        #: exception raised by the cleanup sequence itself (a double
        #: fault) is out of scope for "released on every path".
        self.cleanup_nodes: set[int] = set()

    # -- structure accessors ------------------------------------------

    def nodes(self) -> "list[int]":
        return sorted(self.succ)

    def nodes_for(self, stmt: ast.AST) -> "list[int]":
        """Every CFG node carrying ``stmt`` (clones included)."""
        return list(self._stmt_nodes.get(stmt, []))

    def normal_successors(self, node: int) -> "set[int]":
        return set(self.succ.get(node, ()))

    def all_successors(self, node: int) -> "set[int]":
        return self.succ.get(node, set()) | self.exc_succ.get(node, set())

    # -- reachability and cuts ----------------------------------------

    def _reachable(self, starts: Iterable[int],
                   removed: "frozenset[int]",
                   ignore_cleanup_exc: bool = False) -> "set[int]":
        seen: set[int] = set()
        stack = [s for s in starts if s not in removed]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            nxts = set(self.succ.get(node, ()))
            if not (ignore_cleanup_exc and node in self.cleanup_nodes):
                nxts |= self.exc_succ.get(node, set())
            for nxt in nxts:
                if nxt not in removed and nxt not in seen:
                    stack.append(nxt)
        return seen

    def always_passes_through(self, starts: Iterable[int],
                              cut: Iterable[int],
                              ignore_cleanup_exc: bool = False) -> bool:
        """No path from any of ``starts`` to ``EXIT`` avoids every node
        in ``cut`` (generalized postdominance by a set).  With
        ``ignore_cleanup_exc`` paths that require the cleanup sequence
        itself to raise (exception edges out of ``finally`` clones)
        don't count."""
        removed = frozenset(cut)
        starts = list(starts)
        if not starts:
            return True
        return self.exit not in self._reachable(
            starts, removed, ignore_cleanup_exc=ignore_cleanup_exc)

    def cut_dominates(self, cut: Iterable[int], target: int) -> bool:
        """Every path from ``ENTRY`` to ``target`` passes through some
        node in ``cut`` (generalized dominance by a set)."""
        removed = frozenset(cut)
        if target in removed:
            return True
        return target not in self._reachable([self.entry], removed)

    # -- classic dominators -------------------------------------------

    def _dominator_map(self, reverse: bool) -> "dict[int, frozenset[int]]":
        nodes = self.nodes()
        if reverse:
            root = self.exit
            edges: dict[int, set[int]] = {n: set() for n in nodes}
            for src in nodes:
                for dst in self.all_successors(src):
                    edges.setdefault(dst, set()).add(src)
        else:
            root = self.entry
            edges = {n: set(self.all_successors(n)) for n in nodes}
        preds: dict[int, set[int]] = {n: set() for n in nodes}
        for src in nodes:
            for dst in edges.get(src, ()):
                preds[dst].add(src)
        universe = frozenset(nodes)
        dom = {n: universe for n in nodes}
        dom[root] = frozenset([root])
        changed = True
        while changed:
            changed = False
            for node in nodes:
                if node == root:
                    continue
                incoming = [dom[p] for p in preds[node]]
                if incoming:
                    new = frozenset.intersection(*incoming) | {node}
                else:
                    new = frozenset([node])  # unreachable from root
                if new != dom[node]:
                    dom[node] = new
                    changed = True
        return dom

    def dominators(self) -> "dict[int, frozenset[int]]":
        """node -> the set of nodes dominating it (itself included)."""
        return self._dominator_map(reverse=False)

    def postdominators(self) -> "dict[int, frozenset[int]]":
        return self._dominator_map(reverse=True)

    def dominates(self, a: int, b: int) -> bool:
        return a in self.dominators()[b]

    def postdominates(self, a: int, b: int) -> bool:
        return a in self.postdominators()[b]


class _Builder:
    def __init__(self, assume_true: Sequence[str]) -> None:
        self.cfg = CFG()
        self.assume_true = tuple(assume_true)
        self._next_id = 2
        #: innermost-last stack of enclosing try frames.
        self._frames: "list[_Frame]" = []
        #: innermost-last stack of (break_collector, continue_target).
        self._loops: "list[tuple[list[int], int]]" = []
        #: >0 while building ``finally`` bodies — their nodes are
        #: recorded as cleanup nodes (see CFG.cleanup_nodes).
        self._cleanup_depth = 0

    # -- graph primitives ---------------------------------------------

    def _new_node(self, label: object) -> int:
        node = self._next_id
        self._next_id += 1
        self.cfg.label[node] = label
        self.cfg.succ[node] = set()
        self.cfg.exc_succ[node] = set()
        if isinstance(label, ast.AST):
            self.cfg._stmt_nodes.setdefault(label, []).append(node)
        if self._cleanup_depth:
            self.cfg.cleanup_nodes.add(node)
        return node

    def _edge(self, src: int, dst: int) -> None:
        self.cfg.succ[src].add(dst)

    def _exc_edge(self, src: int, dst: int) -> None:
        self.cfg.exc_succ[src].add(dst)

    def _connect(self, frontier: Iterable[int], dst: int) -> None:
        for src in frontier:
            self._edge(src, dst)

    # -- exception routing --------------------------------------------

    def _exc_targets(self, depth: Optional[int] = None) -> "list[int]":
        """Where an exception raised under the top ``depth`` frames
        lands: every live handler walking outward, stopping at the
        first ``finally`` (whose exceptional clone continues the
        propagation itself); ``EXIT`` when nothing encloses."""
        frames = self._frames if depth is None else self._frames[:depth]
        targets: list[int] = []
        for frame in reversed(frames):
            targets.extend(frame.handler_entries)
            if frame.exc_finally_entry is not None:
                targets.append(frame.exc_finally_entry)
                return targets
        targets.append(self.cfg.exit)
        return targets

    def _wire_raise(self, node: int) -> None:
        for target in self._exc_targets():
            self._exc_edge(node, target)

    def _abrupt_exit_targets(self) -> "list[int]":
        """Where ``return`` lands: through the innermost ``finally``
        (its exceptional clone — conservative: the clone also reaches
        outer handlers) or straight to ``EXIT``."""
        for frame in reversed(self._frames):
            if frame.exc_finally_entry is not None:
                return [frame.exc_finally_entry]
        return [self.cfg.exit]

    # -- statement builders -------------------------------------------

    def build_function(self, func: ast.AST) -> CFG:
        frontier = self._build_block(list(func.body), [self.cfg.entry])
        self._connect(frontier, self.cfg.exit)
        return self.cfg

    def _build_block(self, stmts: "list[ast.stmt]",
                     frontier: "list[int]") -> "list[int]":
        for stmt in stmts:
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _build_stmt(self, stmt: ast.stmt,
                    frontier: "list[int]") -> "list[int]":
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._build_while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = self._new_node(stmt)
            self._connect(frontier, node)
            if stmt.value is not None and _can_raise(stmt.value):
                self._wire_raise(node)
            for target in self._abrupt_exit_targets():
                self._edge(node, target)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._new_node(stmt)
            self._connect(frontier, node)
            self._wire_raise(node)
            return []
        if isinstance(stmt, ast.Break):
            node = self._new_node(stmt)
            self._connect(frontier, node)
            if self._loops:
                self._loops[-1][0].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new_node(stmt)
            self._connect(frontier, node)
            if self._loops:
                self._edge(node, self._loops[-1][1])
            return []
        # Simple statement (nested def/class definitions included:
        # their bodies are separate CFGs, the definition is one step).
        node = self._new_node(stmt)
        self._connect(frontier, node)
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) and _can_raise(stmt):
            self._wire_raise(node)
        return [node]

    def _build_if(self, stmt: ast.If,
                  frontier: "list[int]") -> "list[int]":
        test = self._new_node(stmt)
        self._connect(frontier, test)
        if _can_raise(stmt.test):
            self._wire_raise(test)
        then_frontier = self._build_block(stmt.body, [test])
        assumed = _mentions_assumed(stmt.test, self.assume_true) or (
            isinstance(stmt.test, ast.Constant) and stmt.test.value is True)
        if stmt.orelse:
            else_frontier = self._build_block(stmt.orelse, [test])
            return then_frontier + ([] if assumed else else_frontier)
        return then_frontier + ([] if assumed else [test])

    def _build_while(self, stmt: ast.While,
                     frontier: "list[int]") -> "list[int]":
        test = self._new_node(stmt)
        self._connect(frontier, test)
        if _can_raise(stmt.test):
            self._wire_raise(test)
        breaks: list[int] = []
        self._loops.append((breaks, test))
        try:
            body_frontier = self._build_block(stmt.body, [test])
        finally:
            self._loops.pop()
        self._connect(body_frontier, test)
        forever = (isinstance(stmt.test, ast.Constant)
                   and stmt.test.value is True)
        out = list(breaks) + ([] if forever else [test])
        if stmt.orelse:
            out = self._build_block(stmt.orelse, out or [test]) + breaks
        return out

    def _build_for(self, stmt, frontier: "list[int]") -> "list[int]":
        head = self._new_node(stmt)
        self._connect(frontier, head)
        if _can_raise(stmt.iter):
            self._wire_raise(head)
        breaks: list[int] = []
        self._loops.append((breaks, head))
        try:
            body_frontier = self._build_block(stmt.body, [head])
        finally:
            self._loops.pop()
        self._connect(body_frontier, head)
        out = list(breaks) + [head]
        if stmt.orelse:
            out = self._build_block(stmt.orelse, [head]) + breaks
        return out

    def _build_with(self, stmt, frontier: "list[int]") -> "list[int]":
        head = self._new_node(stmt)
        self._connect(frontier, head)
        if any(_can_raise(item.context_expr) for item in stmt.items):
            self._wire_raise(head)
        return self._build_block(stmt.body, [head])

    def _build_try(self, stmt: ast.Try,
                   frontier: "list[int]") -> "list[int]":
        # Handler entry nodes are the handlers themselves; the
        # exceptional finally clone (when a finalbody exists) is built
        # eagerly so inner raises can route through it, and its
        # frontier continues the propagation outward.
        handler_entries = [self._new_node(h) for h in stmt.handlers]
        exc_finally_entry: Optional[int] = None
        if stmt.finalbody:
            exc_finally_entry = self._new_node("<finally:exceptional>")
            outer_targets = self._exc_targets()
            self._cleanup_depth += 1
            try:
                clone_frontier = self._build_block(
                    list(stmt.finalbody), [exc_finally_entry])
            finally:
                self._cleanup_depth -= 1
            for node in clone_frontier:
                for target in outer_targets:
                    self._exc_edge(node, target)

        frame = _Frame(handler_entries, exc_finally_entry)
        self._frames.append(frame)
        try:
            body_frontier = self._build_block(list(stmt.body),
                                              list(frontier))
            if stmt.orelse:
                body_frontier = self._build_block(stmt.orelse,
                                                  body_frontier)
        finally:
            self._frames.pop()

        # Handler bodies: their own raises go outward (the handlers of
        # this try are no longer live), but still through this try's
        # finally.
        self._frames.append(_Frame([], exc_finally_entry))
        try:
            after: list[int] = list(body_frontier)
            for handler, entry in zip(stmt.handlers, handler_entries):
                after.extend(self._build_block(list(handler.body),
                                               [entry]))
        finally:
            self._frames.pop()

        if stmt.finalbody:
            normal_entry = self._new_node("<finally:normal>")
            self._connect(after, normal_entry)
            self._cleanup_depth += 1
            try:
                return self._build_block(list(stmt.finalbody),
                                         [normal_entry])
            finally:
                self._cleanup_depth -= 1
        return after


def build_cfg(func: ast.AST,
              assume_true: Sequence[str] = ()) -> CFG:
    """The CFG of one ``FunctionDef``/``AsyncFunctionDef``."""
    return _Builder(assume_true).build_function(func)


def function_cfgs(tree: ast.AST, assume_true: Sequence[str] = ()
                  ) -> "list[tuple[ast.AST, CFG]]":
    """Every function in ``tree`` (methods and nested defs included)
    paired with its CFG, in source order."""
    out = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node, build_cfg(node, assume_true=assume_true)))
    return out
