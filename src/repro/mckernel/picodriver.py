"""Tofu PicoDriver — LWK-resident fast path for the Tofu network (§5.1).

Tofu STAG registration (the analogue of Infiniband memory registration)
normally goes through ``ioctl()`` into the Linux Tofu driver; under
McKernel that ioctl is *delegated*, adding IKC latency to every
registration.  The PicoDriver is a split-driver: the control plane
stays in Linux, but the STAG table and registration fast path live in
the LWK, so registration is a local operation.

"We note that all of our experiments have been conducted using this
capability" — and the GAMERA result (Fig. 7) is attributed partly to
the faster RDMA registration it provides, so the model keeps explicit
per-registration bookkeeping that the application layer charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, ResourceError, SyscallError
from ..kernel.costmodel import CostModel


@dataclass(frozen=True)
class Stag:
    """A registered memory region handle."""

    stag_id: int
    address: int
    length: int


class StagTable:
    """STAG allocation table (finite, like the hardware's)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self.capacity = capacity
        self._stags: dict[int, Stag] = {}
        self._next_id = 0

    def register(self, address: int, length: int) -> Stag:
        if length <= 0:
            raise SyscallError("EINVAL", "zero-length registration")
        if len(self._stags) >= self.capacity:
            raise ResourceError("STAG table full")
        stag = Stag(stag_id=self._next_id, address=address, length=length)
        self._next_id += 1
        self._stags[stag.stag_id] = stag
        return stag

    def deregister(self, stag_id: int) -> None:
        if stag_id not in self._stags:
            raise SyscallError("EINVAL", f"unknown STAG {stag_id}")
        del self._stags[stag_id]

    def lookup(self, stag_id: int) -> Stag:
        try:
            return self._stags[stag_id]
        except KeyError:
            raise SyscallError("EINVAL", f"unknown STAG {stag_id}") from None

    def __len__(self) -> int:
        return len(self._stags)


class TofuPicoDriver:
    """The LWK-side registration engine.

    ``register``/``deregister`` return the *time charged* for the
    operation alongside the handle, so callers accumulate cost without a
    second bookkeeping path.
    """

    def __init__(self, costs: CostModel, table: StagTable | None = None) -> None:
        self.costs = costs
        self.table = table or StagTable()
        self.registrations = 0
        self.time_spent = 0.0

    def register(self, address: int, length: int) -> tuple[Stag, float]:
        stag = self.table.register(address, length)
        cost = self.costs.registration_cost(length, delegated=False,
                                            fast_path=True)
        self.registrations += 1
        self.time_spent += cost
        return stag, cost

    def deregister(self, stag: Stag) -> float:
        self.table.deregister(stag.stag_id)
        # Deregistration is table maintenance only on the fast path.
        cost = self.costs.reg_per_mib * 0.1 * (stag.length / (1 << 20))
        self.time_spent += cost
        return cost


def registration_cost_path(
    costs: CostModel, length: int, *, on_mckernel: bool, picodriver: bool
) -> float:
    """Price one STAG registration for a given configuration:

    * Linux: native ioctl into the Tofu driver;
    * McKernel without PicoDriver: the same ioctl, delegated over IKC;
    * McKernel with PicoDriver: LWK-local fast path.
    """
    if not on_mckernel:
        return costs.registration_cost(length, delegated=False)
    if picodriver:
        return costs.registration_cost(length, delegated=False, fast_path=True)
    return costs.registration_cost(length, delegated=True)
