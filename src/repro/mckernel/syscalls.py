"""McKernel's system-call table: local vs delegated (§5).

"McKernel implements only a small set of performance sensitive system
calls and the rest of the OS services are delegated to Linux."  The
local set is memory management, processes/threads, the cooperative
scheduler entry points, POSIX signals, inter-process mappings, and
perf-counter access; everything touching files, devices, sockets, or
Linux-private state rides the proxy.
"""

from __future__ import annotations

from ..errors import SyscallError

#: Performance-sensitive syscalls McKernel implements natively.
LOCAL_SYSCALLS: frozenset[str] = frozenset(
    {
        # memory management
        "mmap", "munmap", "mprotect", "brk", "madvise", "mremap",
        "mbind", "get_mempolicy", "set_mempolicy",
        # processes and threads
        "clone", "fork", "vfork", "execve_local", "exit", "exit_group",
        "gettid", "getpid", "getppid", "set_tid_address",
        # scheduling
        "sched_yield", "sched_setaffinity", "sched_getaffinity",
        "futex", "nanosleep",
        # signals
        "rt_sigaction", "rt_sigprocmask", "rt_sigreturn", "kill", "tgkill",
        "rt_sigpending", "rt_sigsuspend", "sigaltstack",
        # inter-process memory mappings / PMU access (§5)
        "process_vm_readv", "process_vm_writev", "perf_event_open",
        # time (vDSO-backed)
        "clock_gettime", "gettimeofday", "time",
    }
)

#: A representative set of syscalls that are always delegated.  The real
#: kernel delegates anything not in the local table; this set exists so
#: tests and docs can enumerate interesting cases.
DELEGATED_EXAMPLES: frozenset[str] = frozenset(
    {
        "open", "openat", "close", "read", "write", "pread64", "pwrite64",
        "stat", "fstat", "lseek", "ioctl", "fcntl", "dup", "pipe",
        "socket", "connect", "sendto", "recvfrom", "epoll_wait",
        "getdents64", "mkdir", "unlink", "rename", "chdir", "getcwd",
        "execve",
    }
)

#: Syscalls that do not exist on either side (ancient/removed ABI).
UNSUPPORTED: frozenset[str] = frozenset({"tuxcall", "uselib", "vserver"})


def is_local(name: str) -> bool:
    """Does McKernel implement ``name`` without delegation?"""
    if name in UNSUPPORTED:
        raise SyscallError("ENOSYS", name)
    return name in LOCAL_SYSCALLS


def is_delegated(name: str) -> bool:
    """Everything not local (and not unsupported) is delegated."""
    return not is_local(name)
