"""Direct device mappings — McKernel's zero-delegation device access.

§5: "Relying on the proxy process, McKernel provides transparent access
to Linux device drivers not only in the form of offloaded system calls
(e.g., through write() or ioctl()), but also via direct device
mappings" [18].

The mechanism: the *setup* path is delegated — the proxy opens the
device and performs the driver mmap on the Linux side — but the
resulting physical device range (MMIO registers, doorbells, queues) is
then installed directly into the LWK page table, so every subsequent
access is ordinary user-mode load/store with **zero** kernel
involvement on either side.  This is the substrate the Tofu PicoDriver
builds on: its fast path works precisely because the Tofu control
registers are direct-mapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError, SyscallError
from ..units import us


@dataclass(frozen=True)
class DeviceRegion:
    """A mappable region a Linux driver exports (BAR / doorbell page)."""

    device: str          # e.g. "/dev/tofu0"
    offset: int          # offset within the device's mappable space
    length: int
    #: Access latency of one uncached MMIO load/store, seconds.
    access_latency: float = 150e-9

    def __post_init__(self) -> None:
        if self.length <= 0 or self.offset < 0:
            raise ConfigurationError("invalid device region geometry")
        if self.access_latency <= 0:
            raise ConfigurationError("access_latency must be positive")


@dataclass
class DeviceMapping:
    """One live direct mapping in an LWK process."""

    region: DeviceRegion
    lwk_va: int
    setup_cost: float
    accesses: int = 0
    access_time: float = 0.0
    active: bool = True

    def access(self, n: int = 1) -> float:
        """N direct MMIO accesses: pure hardware latency, no kernel."""
        if not self.active:
            raise SyscallError("EFAULT", "mapping torn down")
        if n <= 0:
            raise ConfigurationError("n must be positive")
        cost = n * self.region.access_latency
        self.accesses += n
        self.access_time += cost
        return cost


class DeviceMapper:
    """Per-process device mapping service.

    ``map_region`` walks the real setup path — delegated open + ioctl
    (priced with the IKC round trip) followed by the IHK page-table
    install — and returns a :class:`DeviceMapping` whose accesses are
    then free of any OS cost.
    """

    #: LWK-side page-table install cost per mapping.
    INSTALL_COST = us(3.0)

    def __init__(self, process) -> None:
        # ``process`` is a McKernelProcess; typed loosely to avoid an
        # import cycle with lwk.py.
        self.process = process
        self.mappings: list[DeviceMapping] = []
        self._next_va = 0x7F00_0000_0000

    def map_region(self, region: DeviceRegion) -> tuple[DeviceMapping, float]:
        """Establish a direct mapping; returns (mapping, setup_seconds)."""
        if not self.process.alive:
            raise SyscallError("ESRCH", "process exited")
        # Setup rides the proxy: open the device, driver mmap via ioctl.
        fd = self.process.syscall("open", region.device)
        self.process.syscall("ioctl", fd, "MAP_REGION",
                             {"offset": region.offset,
                              "length": region.length})
        self.process.syscall("close", fd)
        costs = self.process.instance.costs
        ikc = self.process.instance.partition.ikc.round_trip
        setup = 3 * (costs.syscall_cost() + ikc) + self.INSTALL_COST
        mapping = DeviceMapping(region=region, lwk_va=self._next_va,
                                setup_cost=setup)
        self._next_va += max(region.length, 1 << 16)
        self.mappings.append(mapping)
        return mapping, setup

    def unmap(self, mapping: DeviceMapping) -> None:
        if mapping not in self.mappings:
            raise SyscallError("EINVAL", "unknown mapping")
        mapping.active = False
        self.mappings.remove(mapping)

    def teardown(self) -> int:
        """Process exit: every mapping dies.  Returns how many."""
        n = len(self.mappings)
        for m in self.mappings:
            m.active = False
        self.mappings.clear()
        return n


def delegated_access_cost(process, n: int = 1) -> float:
    """What the same N device accesses would cost WITHOUT the direct
    mapping: each one is an ioctl offloaded over IKC — the §5.1
    'additional latency' the PicoDriver exists to remove."""
    if n <= 0:
        raise ConfigurationError("n must be positive")
    costs = process.instance.costs
    ikc = process.instance.partition.ikc.round_trip
    return n * (costs.syscall_cost() + costs.ioctl_extra + ikc)
