"""IHK/McKernel: the lightweight multi-kernel OS (the paper's system)."""

from .ihk import (
    Ihk,
    LwkPartition,
    MemoryReservation,
    OsState,
    reserve_fugaku_style,
)
from .ikc import IkcChannel, IkcMessage, IkcPair, IkcSpec
from .lwk import McKernelInstance, McKernelProcess, boot_mckernel
from .picodriver import Stag, StagTable, TofuPicoDriver, registration_cost_path
from .proxy import DelegationRecord, OpenFile, ProxyProcess
from .signals import Sig, SignalDelivery, SignalState
from .syscalls import (
    DELEGATED_EXAMPLES,
    LOCAL_SYSCALLS,
    UNSUPPORTED,
    is_delegated,
    is_local,
)

__all__ = [
    "Ihk",
    "LwkPartition",
    "MemoryReservation",
    "OsState",
    "reserve_fugaku_style",
    "IkcChannel",
    "IkcMessage",
    "IkcPair",
    "IkcSpec",
    "McKernelInstance",
    "McKernelProcess",
    "boot_mckernel",
    "Stag",
    "StagTable",
    "TofuPicoDriver",
    "registration_cost_path",
    "DelegationRecord",
    "OpenFile",
    "ProxyProcess",
    "Sig",
    "SignalDelivery",
    "SignalState",
    "DELEGATED_EXAMPLES",
    "LOCAL_SYSCALLS",
    "UNSUPPORTED",
    "is_delegated",
    "is_local",
]
