"""Inter-Kernel Communication (IKC) — the message layer between Linux
and McKernel used for system-call delegation (§5).

IKC is a pair of memory-mapped ring buffers with interrupt-based
notification.  The model exposes both an analytic latency (for the cost
model) and a functional DES channel (for the delegation examples):
messages carry a payload, delivery costs ``one_way_latency``, and a full
ring applies back-pressure.

Fault injection (see :mod:`repro.faults`) adds the unreliable variant:
a channel given a drop stream loses each in-flight message with
``drop_prob``; the sender detects the loss after ``redelivery_timeout``
and re-posts, up to ``max_redeliveries`` times, after which the wait
event fires with ``None`` and the channel counts a timeout — the
behaviour a wedged doorbell IRQ shows at scale.  With ``drop_prob`` at
its default 0 every path is identical to the reliable channel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..analysis.race import get_race_detector
from ..errors import ConfigurationError, IkcTimeoutError, ResourceError
from ..obs.tracer import get_tracer
from ..sim.engine import Engine, Event
from ..units import us


@dataclass(frozen=True)
class IkcSpec:
    """Timing/size parameters of one IKC channel pair."""

    #: One-way message latency (write + doorbell IPI + dispatch), seconds.
    one_way_latency: float = us(1.3)
    #: Ring capacity in messages.
    ring_entries: int = 512
    #: Probability one delivery is dropped in flight (0 = reliable).
    drop_prob: float = 0.0
    #: Sender-side wait before re-posting a dropped message, seconds.
    redelivery_timeout: float = us(50)
    #: Re-posts before the sender gives up on a message.
    max_redeliveries: int = 3

    def __post_init__(self) -> None:
        if self.one_way_latency < 0:
            raise ConfigurationError("latency must be non-negative")
        if self.ring_entries <= 0:
            raise ConfigurationError("ring_entries must be positive")
        if not 0.0 <= self.drop_prob < 1.0:
            raise ConfigurationError(
                f"drop_prob must be in [0, 1), got {self.drop_prob!r}")
        if self.redelivery_timeout < 0:
            raise ConfigurationError(
                "redelivery_timeout must be non-negative")
        if self.max_redeliveries < 0:
            raise ConfigurationError("max_redeliveries must be >= 0")

    @property
    def round_trip(self) -> float:
        """Request + response latency — the delegation overhead the cost
        model charges on top of the Linux-side syscall work."""
        return 2.0 * self.one_way_latency


@dataclass
class IkcMessage:
    """One request or response on the ring."""

    seq: int
    payload: Any


class IkcChannel:
    """A unidirectional ring buffer between two kernels.

    Functional semantics: :meth:`post` enqueues (raising when the ring
    is full — real IKC spins, which callers model as a retry loop), and
    :meth:`deliver` dequeues in FIFO order.  When bound to a DES engine
    via :meth:`post_async`, delivery events fire after the one-way
    latency.
    """

    def __init__(self, spec: IkcSpec, name: str = "ikc",
                 drop_rng: Optional[np.random.Generator] = None) -> None:
        self.spec = spec
        self.name = name
        #: Drop-decision stream (e.g. from
        #: :meth:`repro.faults.FaultInjector.ikc_channel_rng`); None
        #: keeps the channel reliable regardless of ``spec.drop_prob``.
        self.drop_rng = drop_rng
        self._ring: deque[IkcMessage] = deque()
        self._seq = 0
        self.posted = 0
        self.delivered = 0
        self.full_events = 0
        #: Deliveries lost in flight (fault injection).
        self.dropped = 0
        #: Successful re-posts after a drop.
        self.redelivered = 0
        #: Messages abandoned after ``max_redeliveries`` drops.
        self.timeouts = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def full(self) -> bool:
        return len(self._ring) >= self.spec.ring_entries

    def post(self, payload: Any) -> IkcMessage:
        if self.full:
            self.full_events += 1
            raise ResourceError(f"IKC ring {self.name!r} full")
        msg = IkcMessage(seq=self._seq, payload=payload)
        self._seq += 1
        self._ring.append(msg)
        self.posted += 1
        rd = get_race_detector()
        if rd is not None:
            rd.ikc_post(rd.resource_for(self, f"ikc/{self.name}"),
                        msg.seq)
        return msg

    def deliver(self) -> Optional[IkcMessage]:
        if not self._ring:
            return None
        self.delivered += 1
        msg = self._ring.popleft()
        rd = get_race_detector()
        if rd is not None:
            rd.ikc_deliver(rd.resource_for(self, f"ikc/{self.name}"),
                           msg.seq)
        return msg

    def _delivery_dropped(self) -> bool:
        """Sample one in-flight loss (False on a reliable channel)."""
        if self.drop_rng is None or self.spec.drop_prob <= 0.0:
            return False
        return bool(self.drop_rng.random() < self.spec.drop_prob)

    def post_async(self, engine: Engine, payload: Any) -> Event:
        """Post under a DES engine: the returned event fires with the
        message after the one-way latency (the receive moment).

        On an unreliable channel a delivery may be dropped; the sender
        waits ``redelivery_timeout`` and re-posts, up to
        ``max_redeliveries`` times.  When the budget is exhausted the
        message is consumed off the ring (lost) and the event fires
        with ``None``; :attr:`timeouts` counts such abandonments and
        :meth:`timeout_error` builds the matching exception for
        callers that want to raise.
        """
        msg = self.post(payload)
        arrived = engine.event(name=f"{self.name}.msg{msg.seq}")
        posted_at = engine.now
        tracer = get_tracer()
        if tracer is not None:
            tracer.event("ikc", "post", ts=posted_at, actor=self.name,
                         seq=msg.seq)

        def delivery():
            redeliveries = 0
            while True:
                yield engine.timeout(self.spec.one_way_latency)
                if not self._delivery_dropped():
                    # The receiver consumes the ring slot at delivery
                    # time.
                    got = self.deliver()
                    t = get_tracer()
                    if t is not None:
                        t.span("ikc", f"msg{msg.seq}", ts=posted_at,
                               duration=engine.now - posted_at,
                               actor=self.name, seq=msg.seq,
                               redeliveries=redeliveries)
                    arrived.succeed(got)
                    return
                self.dropped += 1
                t = get_tracer()
                if t is not None:
                    t.event("ikc", "drop", ts=engine.now,
                            actor=self.name, seq=msg.seq)
                if redeliveries >= self.spec.max_redeliveries:
                    self.timeouts += 1
                    # The lost message still occupied its ring slot;
                    # discard it so the ring drains.
                    self.deliver()
                    if t is not None:
                        t.event("ikc", "timeout", ts=engine.now,
                                actor=self.name, seq=msg.seq)
                    arrived.succeed(None)
                    return
                redeliveries += 1
                self.redelivered += 1
                if t is not None:
                    t.event("ikc", "redeliver", ts=engine.now,
                            actor=self.name, seq=msg.seq)
                yield engine.timeout(self.spec.redelivery_timeout)

        engine.process(delivery(), name=f"{self.name}-deliver-{msg.seq}")
        return arrived

    def timeout_error(self, msg: IkcMessage | None = None) -> IkcTimeoutError:
        """The exception an abandoned delivery corresponds to."""
        detail = f" (msg seq {msg.seq})" if msg is not None else ""
        return IkcTimeoutError(
            f"IKC {self.name!r}: message lost after "
            f"{self.spec.max_redeliveries} redeliveries{detail}")


class IkcPair:
    """Request/response channel pair for one McKernel instance."""

    def __init__(self, spec: IkcSpec | None = None,
                 drop_rng: Optional[np.random.Generator] = None) -> None:
        self.spec = spec or IkcSpec()
        self.to_linux = IkcChannel(self.spec, name="lwk->linux",
                                   drop_rng=drop_rng)
        self.to_lwk = IkcChannel(self.spec, name="linux->lwk",
                                 drop_rng=drop_rng)

    @property
    def round_trip(self) -> float:
        return self.spec.round_trip
