"""Inter-Kernel Communication (IKC) — the message layer between Linux
and McKernel used for system-call delegation (§5).

IKC is a pair of memory-mapped ring buffers with interrupt-based
notification.  The model exposes both an analytic latency (for the cost
model) and a functional DES channel (for the delegation examples):
messages carry a payload, delivery costs ``one_way_latency``, and a full
ring applies back-pressure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ConfigurationError, ResourceError
from ..sim.engine import Engine, Event
from ..units import us


@dataclass(frozen=True)
class IkcSpec:
    """Timing/size parameters of one IKC channel pair."""

    #: One-way message latency (write + doorbell IPI + dispatch), seconds.
    one_way_latency: float = us(1.3)
    #: Ring capacity in messages.
    ring_entries: int = 512

    def __post_init__(self) -> None:
        if self.one_way_latency < 0:
            raise ConfigurationError("latency must be non-negative")
        if self.ring_entries <= 0:
            raise ConfigurationError("ring_entries must be positive")

    @property
    def round_trip(self) -> float:
        """Request + response latency — the delegation overhead the cost
        model charges on top of the Linux-side syscall work."""
        return 2.0 * self.one_way_latency


@dataclass
class IkcMessage:
    """One request or response on the ring."""

    seq: int
    payload: Any


class IkcChannel:
    """A unidirectional ring buffer between two kernels.

    Functional semantics: :meth:`post` enqueues (raising when the ring
    is full — real IKC spins, which callers model as a retry loop), and
    :meth:`deliver` dequeues in FIFO order.  When bound to a DES engine
    via :meth:`post_async`, delivery events fire after the one-way
    latency.
    """

    def __init__(self, spec: IkcSpec, name: str = "ikc") -> None:
        self.spec = spec
        self.name = name
        self._ring: deque[IkcMessage] = deque()
        self._seq = 0
        self.posted = 0
        self.delivered = 0
        self.full_events = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def full(self) -> bool:
        return len(self._ring) >= self.spec.ring_entries

    def post(self, payload: Any) -> IkcMessage:
        if self.full:
            self.full_events += 1
            raise ResourceError(f"IKC ring {self.name!r} full")
        msg = IkcMessage(seq=self._seq, payload=payload)
        self._seq += 1
        self._ring.append(msg)
        self.posted += 1
        return msg

    def deliver(self) -> Optional[IkcMessage]:
        if not self._ring:
            return None
        self.delivered += 1
        return self._ring.popleft()

    def post_async(self, engine: Engine, payload: Any) -> Event:
        """Post under a DES engine: the returned event fires with the
        message after the one-way latency (the receive moment)."""
        msg = self.post(payload)
        arrived = engine.event(name=f"{self.name}.msg{msg.seq}")

        def delivery() :
            yield engine.timeout(self.spec.one_way_latency)
            # The receiver consumes the ring slot at delivery time.
            got = self.deliver()
            arrived.succeed(got)

        engine.process(delivery(), name=f"{self.name}-deliver-{msg.seq}")
        return arrived


class IkcPair:
    """Request/response channel pair for one McKernel instance."""

    def __init__(self, spec: IkcSpec | None = None) -> None:
        self.spec = spec or IkcSpec()
        self.to_linux = IkcChannel(self.spec, name="lwk->linux")
        self.to_lwk = IkcChannel(self.spec, name="linux->lwk")

    @property
    def round_trip(self) -> float:
        return self.spec.round_trip
