"""McKernel — the lightweight co-kernel (§5).

Two layers live here:

* :class:`McKernelInstance` — the booted LWK on one node, implementing
  the :class:`~repro.kernel.base.OsInstance` interface.  Its noise
  profile is the paper's headline property: a tick-less cooperative
  scheduler and *no* background activity, so application cores see
  essentially nothing (the only residual channel is hardware-level TLBI
  broadcast from the Linux side, which the tuned host eliminates).
* :class:`McKernelProcess` — a functional process model: local
  performance-sensitive syscalls operate on the LWK's own memory
  manager; everything else is delegated to the Linux proxy process,
  with the IKC round trip charged per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError, PartitionError, SyscallError
from ..hardware.machines import NodeSpec
from ..hardware.tlb import TlbFlushMode, TlbModel
from ..kernel.base import OsInstance
from ..kernel.buddy import BuddyAllocator
from ..kernel.costmodel import CostModel, MCKERNEL_COSTS
from ..kernel.pagetable import (
    AARCH64_64K,
    AddressSpace,
    PageGeometry,
    PageKind,
    VmaKind,
    X86_4K,
)
from ..kernel.scheduler import CooperativeScheduler
from ..kernel.tasks import SystemTask, task_by_name
from ..kernel.tuning import LinuxTuning, fugaku_production
from ..obs.tracer import get_tracer
from .ihk import Ihk, LwkPartition, OsState, reserve_fugaku_style
from .picodriver import TofuPicoDriver
from .proxy import ProxyProcess
from .signals import Sig, SignalState
from .syscalls import is_local


class McKernelInstance(OsInstance):
    """The LWK personality booted on an IHK partition."""

    kind = "mckernel"

    def __init__(
        self,
        node: NodeSpec,
        ihk: Ihk,
        partition: LwkPartition,
        host_tuning: Optional[LinuxTuning] = None,
        costs: CostModel = MCKERNEL_COSTS,
        picodriver: bool = True,
    ) -> None:
        if partition.state is not OsState.BOOTED:
            raise PartitionError("partition must be booted before use")
        self.node = node
        self.ihk = ihk
        self.partition = partition
        self.host_tuning = host_tuning or fugaku_production()
        self.costs = costs
        self.picodriver_enabled = picodriver
        self.picodriver = TofuPicoDriver(costs) if picodriver else None
        # McKernel always flushes locally on the LWK cores; what matters
        # for cross-core noise is the *host's* mode, checked below.
        self.tlb = TlbModel(node.tlb, TlbFlushMode.LOCAL_ONLY)
        self._buddies: dict[float, BuddyAllocator] = {}
        self._next_pid = 1000
        self.schedulers = {
            cpu: CooperativeScheduler(cpu) for cpu in sorted(partition.cpus)
        }

    # -- OsInstance: CPU layout ---------------------------------------------

    def app_cpu_ids(self) -> list[int]:
        return sorted(self.partition.cpus)

    def system_cpu_ids(self) -> list[int]:
        return self.ihk.linux_cpus()

    # -- OsInstance: memory ----------------------------------------------------

    def app_page_geometry(self) -> PageGeometry:
        return AARCH64_64K if self.node.arch == "aarch64" else X86_4K

    def app_page_kind(self) -> PageKind:
        """McKernel's memory manager is large-page-first: the biggest
        TLB-efficient unit the ISA offers without fragmentation risk."""
        geo = self.app_page_geometry()
        return PageKind.CONTIG if geo.contig_factor else PageKind.HUGE

    def make_address_space(self, memory_scale: float = 1.0) -> AddressSpace:
        if not 0 < memory_scale <= 1.0:
            raise ConfigurationError("memory_scale must be in (0, 1]")
        buddy = self._buddies.get(memory_scale)
        if buddy is None:
            geo = self.app_page_geometry()
            total = self.partition.total_memory()
            n_pages = max(64, int(total * memory_scale) // geo.base)
            buddy = BuddyAllocator(n_pages)
            self._buddies[memory_scale] = buddy
        return AddressSpace(self.app_page_geometry(), buddy)

    # -- OsInstance: syscalls -----------------------------------------------------

    def syscall_delegated(self, name: str) -> bool:
        return not is_local(name)

    @property
    def rdma_fast_path(self) -> bool:
        return self.picodriver_enabled

    # -- OsInstance: noise -----------------------------------------------------------

    def noise_tasks_on_app_cores(self) -> list[SystemTask]:
        """McKernel "performs absolutely no background activities"
        (§6.3).  The one channel that can still reach LWK cores is the
        *hardware* TLBI broadcast issued by Linux daemons on the
        assistant cores — present only when the host lacks the RHEL
        flush patch."""
        if self.host_tuning.tlb_flush_mode is TlbFlushMode.BROADCAST and (
            self.node.tlb.broadcast_victim_cost > 0
        ):
            # Reuse the calibrated storm statistics from the task catalogue.
            from ..kernel.tasks import standard_task_population

            return [task_by_name(standard_task_population(), "tlbi-broadcast")]
        return []

    def tick_rate_on_app_cores(self) -> float:
        return 0.0  # tick-less by construction

    # -- process management -----------------------------------------------------

    def spawn(self, memory_scale: float = 1.0) -> "McKernelProcess":
        """Create an LWK process together with its Linux proxy."""
        lwk_pid = self._next_pid
        self._next_pid += 1
        proxy = ProxyProcess(pid=lwk_pid + 100000, lwk_pid=lwk_pid)
        return McKernelProcess(
            pid=lwk_pid,
            instance=self,
            address_space=self.make_address_space(memory_scale),
            proxy=proxy,
        )


@dataclass
class McKernelProcess:
    """A process running on McKernel, with delegation bookkeeping."""

    pid: int
    instance: McKernelInstance
    address_space: AddressSpace
    proxy: ProxyProcess
    #: Accumulated syscall time, split by service path.
    local_time: float = 0.0
    delegated_time: float = 0.0
    local_calls: int = 0
    delegated_calls: int = 0
    alive: bool = True
    signals: SignalState = field(default_factory=SignalState)

    # -- syscall dispatch -----------------------------------------------------

    def syscall(self, name: str, *args) -> object:
        """Execute one syscall, routing local vs delegated (§5) and
        charging the corresponding cost model price."""
        if not self.alive:
            raise SyscallError("ESRCH", f"process {self.pid} exited")
        costs = self.instance.costs
        tracer = get_tracer()
        # The process's accumulated syscall time is its deterministic
        # clock: each traced call spans [time-so-far, +cost).
        started = self.local_time + self.delegated_time
        if is_local(name):
            self.local_calls += 1
            cost = costs.syscall_cost(delegated=False)
            self.local_time += cost
            if tracer is not None:
                tracer.span("lwk", name, ts=started, duration=cost,
                            actor=f"lwk/{self.pid}", delegated=False)
            return self._serve_local(name, *args)
        self.delegated_calls += 1
        # IKC round trip on top of the Linux-side service cost.
        cost = (
            costs.syscall_cost(delegated=False)
            + self.instance.partition.ikc.round_trip
        )
        self.delegated_time += cost
        if tracer is not None:
            tracer.span("lwk", name, ts=started, duration=cost,
                        actor=f"lwk/{self.pid}", delegated=True)
        return self._serve_delegated(name, *args)

    def _serve_local(self, name: str, *args) -> object:
        if name == "mmap":
            (length,) = args
            vma = self.address_space.mmap(length, kind=VmaKind.HEAP,
                                          page_kind=self.instance.app_page_kind())
            return vma
        if name == "munmap":
            (vma,) = args
            return self.address_space.munmap(vma)
        if name == "getpid":
            return self.pid
        if name == "gettid":
            return self.pid
        if name in ("fork", "vfork"):
            # Full POSIX fork — the facility classic LWKs lacked (§1).
            # The child gets a copy-on-write address space and its own
            # Linux-side proxy twin.
            child_pid = self.instance._next_pid
            self.instance._next_pid += 1
            child = McKernelProcess(
                pid=child_pid,
                instance=self.instance,
                address_space=self.address_space.fork(),
                proxy=ProxyProcess(pid=child_pid + 100000,
                                   lwk_pid=child_pid),
            )
            return child
        # POSIX signals are served locally (§5) — no IKC round trip.
        if name == "rt_sigaction":
            sig, handler = args
            self.signals.sigaction(Sig(sig), handler)
            return 0
        if name == "rt_sigprocmask":
            how, sigs = args
            sig_set = {Sig(s) for s in sigs}
            if how == "block":
                self.signals.block(sig_set)
            elif how == "unblock":
                self.signals.unblock(sig_set)
            else:
                raise SyscallError("EINVAL", f"sigprocmask how={how!r}")
            return 0
        if name == "kill":
            (sig,) = args
            self.signals.send(Sig(sig))
            if not self.signals.alive and self.alive:
                self.exit()
            return 0
        # Remaining local syscalls are modelled as successful no-ops:
        # their semantics are not needed by the experiments, only their
        # (already charged) latency.
        return 0

    def _serve_delegated(self, name: str, *args) -> object:
        handler = {
            "open": self.proxy.sys_open,
            "openat": self.proxy.sys_open,
            "close": self.proxy.sys_close,
            "read": self.proxy.sys_read,
            "write": self.proxy.sys_write,
            "lseek": self.proxy.sys_lseek,
            "ioctl": self.proxy.sys_ioctl,
        }.get(name)
        if handler is None:
            # Any other delegated call succeeds generically via the proxy.
            self.proxy._record(name, args, 0)
            return 0
        return handler(*args)

    # -- lifecycle ---------------------------------------------------------------

    def exit(self) -> int:
        """Process exit: LWK tears down the address space (counting TLB
        invalidations) and the proxy dies with it."""
        if not self.alive:
            raise SyscallError("ESRCH", f"process {self.pid} already exited")
        invalidated = self.address_space.exit()
        self.proxy.exit()
        self.alive = False
        return invalidated


def boot_mckernel(
    node: NodeSpec,
    host_tuning: Optional[LinuxTuning] = None,
    memory_fraction: float = 0.9,
    picodriver: bool = True,
) -> McKernelInstance:
    """Convenience: full IHK flow (reserve → create → assign → boot) with
    the paper's deployment shape, returning the booted instance."""
    ihk = Ihk(node)
    partition = reserve_fugaku_style(ihk, memory_fraction)
    return McKernelInstance(
        node=node,
        ihk=ihk,
        partition=partition,
        host_tuning=host_tuning,
        picodriver=picodriver,
    )
