"""POSIX signal support in McKernel (§5: "it supports standard POSIX
signaling").

Signals are one of the "performance sensitive" services McKernel serves
*locally* — a signal between two LWK threads must not take an IKC round
trip.  The model implements dispositions (default / ignore / handler),
blocking masks, pending sets with standard-signal coalescing, and the
default actions (terminate / ignore / stop / continue) with correct
SIGKILL/SIGSTOP immutability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SyscallError


class Sig(enum.IntEnum):
    """The signals the experiments and tests exercise."""

    SIGHUP = 1
    SIGINT = 2
    SIGQUIT = 3
    SIGKILL = 9
    SIGUSR1 = 10
    SIGSEGV = 11
    SIGUSR2 = 12
    SIGTERM = 15
    SIGCHLD = 17
    SIGCONT = 18
    SIGSTOP = 19


class DefaultAction(enum.Enum):
    TERMINATE = "terminate"
    IGNORE = "ignore"
    STOP = "stop"
    CONTINUE = "continue"


_DEFAULTS: dict[Sig, DefaultAction] = {
    Sig.SIGHUP: DefaultAction.TERMINATE,
    Sig.SIGINT: DefaultAction.TERMINATE,
    Sig.SIGQUIT: DefaultAction.TERMINATE,
    Sig.SIGKILL: DefaultAction.TERMINATE,
    Sig.SIGUSR1: DefaultAction.TERMINATE,
    Sig.SIGSEGV: DefaultAction.TERMINATE,
    Sig.SIGUSR2: DefaultAction.TERMINATE,
    Sig.SIGTERM: DefaultAction.TERMINATE,
    Sig.SIGCHLD: DefaultAction.IGNORE,
    Sig.SIGCONT: DefaultAction.CONTINUE,
    Sig.SIGSTOP: DefaultAction.STOP,
}

#: Signals whose disposition and mask cannot be changed.
UNCATCHABLE: frozenset[Sig] = frozenset({Sig.SIGKILL, Sig.SIGSTOP})


@dataclass
class SignalDelivery:
    """Record of one delivered signal (for tests / traces)."""

    sig: Sig
    action: str  # "handler" | "terminate" | "ignore" | "stop" | "continue"


@dataclass
class SignalState:
    """Per-process signal machinery."""

    handlers: dict[Sig, Callable[[Sig], None]] = field(default_factory=dict)
    ignored: set[Sig] = field(default_factory=set)
    blocked: set[Sig] = field(default_factory=set)
    pending: set[Sig] = field(default_factory=set)
    delivered: list[SignalDelivery] = field(default_factory=list)
    terminated_by: Optional[Sig] = None
    stopped: bool = False

    # -- rt_sigaction ---------------------------------------------------

    def sigaction(self, sig: Sig,
                  handler: Optional[Callable[[Sig], None]]) -> None:
        """Install a handler; ``None`` restores SIG_DFL; the special
        string-free way to SIG_IGN is :meth:`ignore`."""
        if sig in UNCATCHABLE:
            raise SyscallError("EINVAL", f"cannot catch {sig.name}")
        self.ignored.discard(sig)
        if handler is None:
            self.handlers.pop(sig, None)
        else:
            self.handlers[sig] = handler

    def ignore(self, sig: Sig) -> None:
        if sig in UNCATCHABLE:
            raise SyscallError("EINVAL", f"cannot ignore {sig.name}")
        self.handlers.pop(sig, None)
        self.ignored.add(sig)

    # -- rt_sigprocmask -------------------------------------------------------

    def block(self, sigs: set[Sig]) -> None:
        if UNCATCHABLE & sigs:
            # The kernel silently refuses to block KILL/STOP.
            sigs = sigs - UNCATCHABLE
        self.blocked |= sigs

    def unblock(self, sigs: set[Sig]) -> None:
        self.blocked -= sigs
        self._drain()

    # -- delivery -------------------------------------------------------------

    def send(self, sig: Sig) -> None:
        """Post a signal to the process (kill/tgkill)."""
        if self.terminated_by is not None:
            raise SyscallError("ESRCH", "process already terminated")
        if sig in self.blocked:
            # Standard signals coalesce while pending.
            self.pending.add(sig)
            return
        self._deliver(sig)

    def _drain(self) -> None:
        for sig in sorted(self.pending):
            if sig not in self.blocked:
                self.pending.discard(sig)
                self._deliver(sig)
                if self.terminated_by is not None:
                    return

    def _deliver(self, sig: Sig) -> None:
        if sig in self.ignored:
            self.delivered.append(SignalDelivery(sig, "ignore"))
            return
        handler = self.handlers.get(sig)
        if handler is not None:
            self.delivered.append(SignalDelivery(sig, "handler"))
            handler(sig)
            return
        action = _DEFAULTS[sig]
        self.delivered.append(SignalDelivery(sig, action.value))
        if action is DefaultAction.TERMINATE:
            self.terminated_by = sig
        elif action is DefaultAction.STOP:
            self.stopped = True
        elif action is DefaultAction.CONTINUE:
            self.stopped = False
        # IGNORE: nothing.

    @property
    def alive(self) -> bool:
        return self.terminated_by is None
