"""IHK — Interface for Heterogeneous Kernels (§5).

IHK partitions a node's CPU cores and physical memory **dynamically, no
reboot required**, and manages lightweight kernel instances on the
reserved slice.  It is "a collection of Linux kernel modules without
any modifications to the Linux kernel itself".

The model keeps the real tool semantics (mirroring ``ihkconfig`` /
``ihkosctl``): reserve → create OS → assign resources → boot → destroy,
with validation at each step, so misuse raises the same class of errors
the utilities report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError, PartitionError, ResourceError
from ..hardware.machines import NodeSpec
from ..hardware.numa import NumaRole
from .ikc import IkcPair, IkcSpec


class OsState(enum.Enum):
    """Lifecycle of an LWK instance (ihkosctl's status values)."""

    EMPTY = "empty"
    CREATED = "created"
    BOOTED = "booted"
    SHUTDOWN = "shutdown"


@dataclass
class MemoryReservation:
    """Physical memory taken from Linux on one NUMA node."""

    numa_node: int
    size_bytes: int


@dataclass
class LwkPartition:
    """Resources assigned to one LWK instance."""

    os_index: int
    cpus: frozenset[int] = field(default_factory=frozenset)
    memory: list[MemoryReservation] = field(default_factory=list)
    state: OsState = OsState.CREATED
    ikc: IkcPair = field(default_factory=IkcPair)

    def total_memory(self) -> int:
        return sum(m.size_bytes for m in self.memory)


class Ihk:
    """IHK resource manager for one node."""

    def __init__(self, node: NodeSpec, ikc_spec: IkcSpec | None = None) -> None:
        self.node = node
        self.ikc_spec = ikc_spec or IkcSpec()
        self._reserved_cpus: set[int] = set()
        self._reserved_mem: dict[int, int] = {}  # numa node -> bytes reserved
        self._partitions: dict[int, LwkPartition] = {}
        self._next_os = 0

    # -- reservation (ihkconfig reserve) ----------------------------------

    def reserve_cpus(self, cpu_ids: list[int]) -> None:
        """Offline CPUs from Linux and hand them to IHK."""
        requested = self.node.topology.validate_cpu_set(cpu_ids)
        overlap = requested & self._reserved_cpus
        if overlap:
            raise PartitionError(f"CPUs already reserved: {sorted(overlap)}")
        # Linux must keep at least one CPU (it hosts the proxy processes
        # and all delegated syscalls).
        all_cpus = {c.cpu_id for c in self.node.topology}
        if not (all_cpus - self._reserved_cpus - requested):
            raise PartitionError("cannot reserve every CPU: Linux needs one")
        self._reserved_cpus |= requested

    def reserve_memory(self, numa_node: int, size_bytes: int) -> None:
        """Offline a physical memory range on one NUMA node."""
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        domain = self.node.numa.domain(numa_node)  # validates the id
        already = self._reserved_mem.get(numa_node, 0)
        if already + size_bytes > domain.size_bytes:
            raise ResourceError(
                f"NUMA node {numa_node} has {domain.size_bytes - already} "
                f"bytes unreserved, requested {size_bytes}"
            )
        self._reserved_mem[numa_node] = already + size_bytes

    def release_cpus(self, cpu_ids: list[int]) -> None:
        """Return CPUs to Linux (they must not belong to a live LWK)."""
        requested = set(cpu_ids)
        if not requested <= self._reserved_cpus:
            raise PartitionError("releasing CPUs that are not reserved")
        for part in self._partitions.values():
            if part.state is OsState.BOOTED and (requested & part.cpus):
                raise PartitionError(
                    f"CPUs in use by booted OS {part.os_index}"
                )
        self._reserved_cpus -= requested

    # -- queries ---------------------------------------------------------

    @property
    def reserved_cpus(self) -> frozenset[int]:
        return frozenset(self._reserved_cpus)

    def linux_cpus(self) -> list[int]:
        """CPUs Linux still owns."""
        return [
            c.cpu_id
            for c in self.node.topology
            if c.cpu_id not in self._reserved_cpus
        ]

    def reserved_memory(self, numa_node: int) -> int:
        return self._reserved_mem.get(numa_node, 0)

    # -- OS lifecycle (ihkosctl) -------------------------------------------

    def create_os(self) -> LwkPartition:
        part = LwkPartition(os_index=self._next_os,
                            ikc=IkcPair(self.ikc_spec))
        self._partitions[self._next_os] = part
        self._next_os += 1
        return part

    def assign(self, part: LwkPartition, cpus: list[int],
               memory: list[MemoryReservation]) -> None:
        """Assign reserved resources to an OS instance."""
        if part.state is not OsState.CREATED:
            raise PartitionError(f"OS {part.os_index} is {part.state.value}")
        cpu_set = frozenset(cpus)
        if not cpu_set:
            raise PartitionError("an LWK needs at least one CPU")
        if not cpu_set <= self._reserved_cpus:
            raise PartitionError("assigning CPUs that are not reserved")
        for other in self._partitions.values():
            if other is not part and (cpu_set & other.cpus):
                raise PartitionError("CPUs already assigned to another OS")
        for res in memory:
            if res.size_bytes <= 0:
                raise ConfigurationError("reservation sizes must be positive")
            if res.size_bytes > self.reserved_memory(res.numa_node):
                raise PartitionError(
                    f"memory on NUMA {res.numa_node} not reserved"
                )
        part.cpus = cpu_set
        part.memory = list(memory)

    def boot(self, part: LwkPartition) -> None:
        if part.state is not OsState.CREATED:
            raise PartitionError(f"OS {part.os_index} is {part.state.value}")
        if not part.cpus or not part.memory:
            raise PartitionError("boot requires CPUs and memory assigned")
        part.state = OsState.BOOTED

    def shutdown(self, part: LwkPartition) -> None:
        if part.state is not OsState.BOOTED:
            raise PartitionError(f"OS {part.os_index} is not booted")
        part.state = OsState.SHUTDOWN

    def destroy(self, part: LwkPartition) -> None:
        """Destroy an instance, returning its resources to the reserved
        pool (they stay reserved until released to Linux)."""
        if part.state is OsState.BOOTED:
            raise PartitionError("shut the OS down before destroying it")
        self._partitions.pop(part.os_index, None)
        part.cpus = frozenset()
        part.memory = []
        part.state = OsState.EMPTY


def reserve_fugaku_style(ihk: Ihk, memory_fraction: float = 0.9) -> LwkPartition:
    """The deployment used in the paper's Fugaku runs: all application
    cores and most application memory go to McKernel; Linux keeps the
    assistant cores.  Returns the booted partition."""
    if not 0 < memory_fraction <= 1.0:
        raise ConfigurationError("memory_fraction must be in (0, 1]")
    topo = ihk.node.topology
    app_cpus = topo.application_cpu_ids()
    if topo.assistant_cores == 0:
        # KNL-style: leave the first physical core's threads to Linux.
        linux_side = set(topo.siblings(0))
        app_cpus = [c for c in app_cpus if c not in linux_side]
    ihk.reserve_cpus(app_cpus)
    reservations = []
    for domain in ihk.node.numa:
        if domain.role is NumaRole.SYSTEM:
            continue
        size = int(domain.size_bytes * memory_fraction)
        ihk.reserve_memory(domain.node_id, size)
        reservations.append(
            MemoryReservation(numa_node=domain.node_id, size_bytes=size)
        )
    part = ihk.create_os()
    ihk.assign(part, app_cpus, reservations)
    ihk.boot(part)
    return part
