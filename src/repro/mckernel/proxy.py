"""The proxy process — McKernel's agent on the Linux side (§5).

"For each OS process executed on McKernel there is a process running on
Linux, which we call the proxy-process" — it provides the execution
context for offloaded syscalls and keeps the Linux-side state (file
descriptor table, file positions, ...) that McKernel deliberately has
no notion of: McKernel "simply returns the number it receives from the
proxy process during the execution of an open() system call."

The model is functional: a :class:`ProxyProcess` owns a real fd table
and file-position map; :class:`repro.mckernel.lwk.McKernelProcess`
routes delegated calls through it and the returned values are the ones
the LWK hands to the application.

The proxy is also McKernel's production Achilles heel (§6): if it is
killed — OOM killer, node health daemon, plain crash — the LWK process
survives but every piece of Linux-side state dies with the proxy.
:meth:`ProxyProcess.crash` models that, delegated calls then raise
:class:`~repro.errors.ProxyCrashed`, and :meth:`ProxyProcess.respawn`
models the recovery path: a fresh proxy with a *clean* fd table (open
files, positions — all lost) that the application must re-establish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ProxyCrashed, SyscallError
from ..obs.tracer import get_tracer


@dataclass
class OpenFile:
    """Linux-side state of one open file description."""

    path: str
    flags: str
    position: int = 0
    size: int = 0


@dataclass
class DelegationRecord:
    """Audit record of one offloaded syscall (used by tests/examples)."""

    name: str
    args: tuple
    result: object


class ProxyProcess:
    """Linux-side twin of one McKernel process."""

    _STD_FDS = 3  # 0/1/2 pre-opened

    def __init__(self, pid: int, lwk_pid: int) -> None:
        self.pid = pid                # Linux pid of the proxy
        self.lwk_pid = lwk_pid        # McKernel-side pid it serves
        self.fd_table: dict[int, OpenFile] = {
            0: OpenFile("/dev/stdin", "r"),
            1: OpenFile("/dev/stdout", "w"),
            2: OpenFile("/dev/stderr", "w"),
        }
        self._next_fd = self._STD_FDS
        self.delegations: list[DelegationRecord] = []
        self.alive = True
        self.crashed = False
        #: Times this proxy has been respawned after a crash.
        self.respawns = 0

    # -- delegated syscall services ----------------------------------------

    def _record(self, name: str, args: tuple, result: object) -> None:
        self.delegations.append(DelegationRecord(name, args, result))
        t = get_tracer()
        if t is not None:
            # The proxy has no clock of its own; the per-layer logical
            # clock keeps its service order deterministic on the trace.
            t.event("proxy", name, ts=t.advance("proxy"),
                    actor=f"proxy/{self.pid}", lwk_pid=self.lwk_pid)

    def _ensure_alive(self) -> None:
        if self.crashed:
            raise ProxyCrashed(
                f"proxy {self.pid} (lwk pid {self.lwk_pid}) crashed; "
                "delegated state lost — respawn required")
        if not self.alive:
            raise SyscallError("ESRCH", f"proxy {self.pid} exited")

    def sys_open(self, path: str, flags: str = "r") -> int:
        """Delegated open(): fd allocated in the LINUX fd table; the LWK
        just forwards the number."""
        self._ensure_alive()
        if not path:
            raise SyscallError("ENOENT", "empty path")
        fd = self._next_fd
        self._next_fd += 1
        self.fd_table[fd] = OpenFile(path=path, flags=flags)
        self._record("open", (path, flags), fd)
        return fd

    def sys_close(self, fd: int) -> int:
        self._ensure_alive()
        if fd not in self.fd_table:
            raise SyscallError("EBADF", f"fd {fd}")
        if fd >= self._STD_FDS:
            del self.fd_table[fd]
        self._record("close", (fd,), 0)
        return 0

    def sys_write(self, fd: int, nbytes: int) -> int:
        self._ensure_alive()
        f = self.fd_table.get(fd)
        if f is None:
            raise SyscallError("EBADF", f"fd {fd}")
        if nbytes < 0:
            raise SyscallError("EINVAL", "negative count")
        f.position += nbytes
        f.size = max(f.size, f.position)
        self._record("write", (fd, nbytes), nbytes)
        return nbytes

    def sys_read(self, fd: int, nbytes: int) -> int:
        self._ensure_alive()
        f = self.fd_table.get(fd)
        if f is None:
            raise SyscallError("EBADF", f"fd {fd}")
        if nbytes < 0:
            raise SyscallError("EINVAL", "negative count")
        got = max(0, min(nbytes, f.size - f.position))
        f.position += got
        self._record("read", (fd, nbytes), got)
        return got

    def sys_lseek(self, fd: int, offset: int) -> int:
        self._ensure_alive()
        f = self.fd_table.get(fd)
        if f is None:
            raise SyscallError("EBADF", f"fd {fd}")
        if offset < 0:
            raise SyscallError("EINVAL", "negative offset")
        f.position = offset
        self._record("lseek", (fd, offset), offset)
        return offset

    def sys_ioctl(self, fd: int, request: str, arg: Optional[object] = None) -> int:
        """Delegated ioctl — the default (slow) path for Tofu STAG
        registration that the PicoDriver bypasses (§5.1)."""
        self._ensure_alive()
        if fd not in self.fd_table:
            raise SyscallError("EBADF", f"fd {fd}")
        self._record("ioctl", (fd, request, arg), 0)
        return 0

    # -- lifecycle ---------------------------------------------------------

    def exit(self) -> None:
        """Proxy teardown when the McKernel process exits."""
        self.alive = False
        self.fd_table.clear()

    def crash(self) -> None:
        """Kill the proxy mid-flight (fault injection): the fd table
        and every file position die with it; subsequent delegated
        calls raise :class:`~repro.errors.ProxyCrashed` until
        :meth:`respawn`."""
        self.alive = False
        self.crashed = True
        lost = len(self.fd_table)
        self.fd_table.clear()
        t = get_tracer()
        if t is not None:
            t.event("proxy", "crash", ts=t.advance("proxy"),
                    actor=f"proxy/{self.pid}", fds_lost=lost)

    def respawn(self) -> None:
        """Recovery: a fresh proxy context for the same LWK process.

        Only the standard streams come back — application fds, file
        positions and sizes are gone (the LWK-side numbers now dangle),
        exactly the state loss that makes proxy crashes expensive in
        production.  The delegation audit log is preserved.
        """
        self.fd_table = {
            0: OpenFile("/dev/stdin", "r"),
            1: OpenFile("/dev/stdout", "w"),
            2: OpenFile("/dev/stderr", "w"),
        }
        self._next_fd = self._STD_FDS
        self.alive = True
        self.crashed = False
        self.respawns += 1
        t = get_tracer()
        if t is not None:
            t.event("proxy", "respawn", ts=t.advance("proxy"),
                    actor=f"proxy/{self.pid}", respawns=self.respawns)

    @property
    def open_fd_count(self) -> int:
        return len(self.fd_table)
