"""The one execution core: how a spec becomes a result.

Before this module the submit → execute → harvest → export path was
split across three layers: :mod:`repro.cli` hand-wired
``jobs``/``cache``/``counters`` into a :func:`repro.perf.perf_context`,
:mod:`repro.experiments.registry` re-implemented the same wrapping per
call, and the sweep helpers drove :mod:`repro.perf.executor` directly.
:class:`ExecutionEngine` is the single re-rooting point: the one-shot
CLI, the experiment registry, the exporter and the
:mod:`repro.service` worker fleet all execute through it, so a
:class:`~repro.platform.RunSpec` produces the same
:class:`~repro.runtime.runner.RunResult` bytes no matter which front
door submitted it.

Two construction modes, matching the two historical call shapes:

* ``ExecutionEngine()`` — **ambient**: inherits whatever
  :class:`~repro.perf.context.PerfContext` is installed (or the serial
  default).  This is the library-call shape; it is byte-identical to
  calling the underlying runners directly.
* ``ExecutionEngine.from_options(jobs=4, cache=...)`` — **configured**:
  :meth:`session` installs the engine's own context, and every
  execution method run inside (or outside — methods self-install when
  no engine session is active) uses those knobs.  This is the CLI and
  service-worker shape.

Either way the execution *semantics* are identical; configuration only
selects fan-out, memoization and instrumentation, never results.
"""

from __future__ import annotations

import pathlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from .perf.context import PerfContext, get_context, perf_context

if TYPE_CHECKING:
    from .experiments.report import ExperimentResult
    from .obs.metrics import MetricsRegistry
    from .perf.cache import RunCache
    from .platform.spec import PlatformSpec, RunSpec
    from .runtime.runner import RunResult

__all__ = ["EngineOptions", "ExecutionEngine"]


@dataclass(frozen=True)
class EngineOptions:
    """Execution knobs an engine session installs (mirrors
    :class:`~repro.perf.context.PerfContext`; every field only affects
    *how* cells run — fan-out, memoization, instrumentation — never
    what they compute)."""

    #: Worker processes for cell fan-out; 1 = serial.
    jobs: int = 1
    #: Memoization cache for RunResults; None disables caching.
    cache: Optional["RunCache"] = None
    #: Metrics sink; None falls back to the global registry.
    counters: Optional["MetricsRegistry"] = None
    #: Wall-clock budget per cell in the parallel path, seconds.
    cell_timeout: Optional[float] = None
    #: Pool dispatch attempts before degrading to serial.
    max_retries: int = 2
    #: Variance-adaptive Monte-Carlo stopping target (off by default).
    target_ci: Optional[float] = None
    #: Hard trial ceiling per cell when ``target_ci`` is active.
    max_adaptive_runs: int = 64


class ExecutionEngine:
    """The single path from specs and experiment ids to results.

    Construct ambient (``ExecutionEngine()``) to inherit the caller's
    context, or configured (:meth:`from_options`) to own one.  Hold one
    engine per logical submission scope: a CLI invocation, a service
    job, a test.  Methods are safe to call without :meth:`session`;
    wrapping several calls in one ``with engine.session():`` block
    additionally shares the warm worker pool across them.
    """

    def __init__(self, options: Optional[EngineOptions] = None) -> None:
        self.options = options
        self._depth = 0

    @classmethod
    def from_options(cls, **kwargs: object) -> "ExecutionEngine":
        """Engine with its own execution context (see
        :class:`EngineOptions` for the accepted knobs)."""
        return cls(EngineOptions(**kwargs))  # type: ignore[arg-type]

    # -- context ------------------------------------------------------

    @contextmanager
    def session(self) -> Iterator[PerfContext]:
        """Install the engine's execution context for the block.

        Ambient engines and nested sessions are pass-throughs: the
        innermost installed context keeps applying, so the serial
        default CLI path stays byte-identical to the pre-engine code
        and one outer session shares its pool with every inner call.
        """
        if self.options is None or self._depth > 0:
            yield get_context()
            return
        self._depth += 1
        try:
            o = self.options
            with perf_context(jobs=o.jobs, cache=o.cache,
                              counters=o.counters,
                              cell_timeout=o.cell_timeout,
                              max_retries=o.max_retries,
                              target_ci=o.target_ci,
                              max_adaptive_runs=o.max_adaptive_runs) as ctx:
                yield ctx
        finally:
            self._depth -= 1

    # -- spec execution -----------------------------------------------

    def run_specs(self, specs: Sequence["RunSpec"]) -> "list[RunResult]":
        """Execute one :class:`RunSpec` per sweep cell.

        Results come back in spec order, bit-identical to a serial
        run; cache keys are the SHA-256 of each spec's canonical JSON.
        """
        from .chaos.hooks import get_chaos
        from .obs.tracer import get_tracer
        from .platform.resolve import run_cells

        with self.session():
            cz = get_chaos()
            if cz is not None:
                # The worker-dies-mid-execution window: claim held,
                # RUNNING journaled, nothing published yet.
                cz.on("engine.run")
            tracer = get_tracer()
            if tracer is not None:
                tracer.event("service", "engine.run",
                             ts=tracer.advance("service"), actor="engine",
                             cells=len(specs))
            return run_cells(list(specs))

    def run_spec(self, spec: "RunSpec") -> "RunResult":
        """Execute a single :class:`RunSpec`."""
        return self.run_specs([spec])[0]

    # -- experiment execution -----------------------------------------

    def run_experiment(self, experiment_id: str, fast: bool = True,
                       seed: int = 0,
                       platform: Optional["PlatformSpec"] = None,
                       ) -> "ExperimentResult":
        """Run one registered experiment by id.

        ``platform`` re-targets the experiment; only runners whose
        signature is platform-parameterised accept it (anything else
        is a :class:`~repro.errors.ConfigurationError`, because those
        layouts are fixed by the paper).
        """
        from .errors import ConfigurationError
        from .experiments.registry import EXPERIMENTS

        try:
            _, runner = EXPERIMENTS[experiment_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {sorted(EXPERIMENTS)}"
            ) from None
        kwargs: dict = {"fast": fast, "seed": seed}
        if platform is not None:
            import inspect

            if "platform" not in inspect.signature(runner).parameters:
                raise ConfigurationError(
                    f"experiment {experiment_id!r} is not "
                    "platform-parameterised (its layout is fixed by the "
                    "paper); run it without --spec/platform"
                )
            kwargs["platform"] = platform
        with self.session():
            return runner(**kwargs)

    def run_experiments(self, ids: Iterable[str], fast: bool = True,
                        seed: int = 0,
                        platform: Optional["PlatformSpec"] = None,
                        ) -> "dict[str, ExperimentResult]":
        """Run several experiments under one session (one shared
        pool), in the given order."""
        with self.session():
            return {
                eid: self.run_experiment(eid, fast=fast, seed=seed,
                                         platform=platform)
                for eid in ids
            }

    def export_experiments(
        self,
        directory: "str | pathlib.Path",
        ids: Optional[Iterable[str]] = None,
        fast: bool = True,
        seed: int = 0,
    ) -> "dict[str, list[str]]":
        """Run and export experiments (JSON + CSV + rendered text).

        This is the artifact-producing path the service workers share
        with ``repro export``: same engine, same files, same bytes.
        """
        from .chaos.hooks import get_chaos
        from .experiments.export import export_all
        from .obs.tracer import get_tracer

        with self.session():
            cz = get_chaos()
            if cz is not None:
                cz.on("engine.run")
            tracer = get_tracer()
            if tracer is not None:
                tracer.event("service", "engine.run",
                             ts=tracer.advance("service"), actor="engine")
            return export_all(directory, ids=ids, fast=fast, seed=seed,
                              engine=self)
