"""Linux control groups: cpuset and memory controllers.

Fugaku (§4.1.1, §4.2) relies on cgroups for all of its partitioning:
Docker creates an application cgroup that pins user processes to
application cores and application NUMA domains, and a dedicated system
cgroup isolates system CPUs/memory.

The memory controller here also implements the §4.1.3 extension: stock
RHEL's memcg "is not sufficiently integrated with hugeTLBfs and is
unable to limit the usage of surplus large pages allocated by
overcommit", so Fugaku hooks a kernel function via a module to charge
surplus hugeTLBfs pages to the memory cgroup.  The hook is modelled by
the ``charge_surplus_hugetlb`` flag — with it off, surplus huge pages
escape the limit exactly as on stock kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..analysis.race import get_race_detector
from ..errors import CgroupLimitExceeded, ConfigurationError


@dataclass
class CpusetController:
    """cpuset: which CPUs and NUMA nodes members may use."""

    cpus: frozenset[int]
    mems: frozenset[int]

    def allows_cpu(self, cpu_id: int) -> bool:
        return cpu_id in self.cpus

    def allows_mem(self, numa_node: int) -> bool:
        return numa_node in self.mems


@dataclass
class MemoryController:
    """memcg: byte-accounted limit with optional hugetlb-surplus hook."""

    limit_bytes: Optional[int] = None  # None = unlimited
    charge_surplus_hugetlb: bool = False
    usage_bytes: int = 0
    #: Surplus hugeTLBfs bytes attributed to this group (charged against
    #: the limit only when the hook is enabled).
    surplus_hugetlb_bytes: int = 0
    failcnt: int = 0

    def _charged(self) -> int:
        charged = self.usage_bytes
        if self.charge_surplus_hugetlb:
            charged += self.surplus_hugetlb_bytes
        return charged

    def charge(self, nbytes: int, surplus_hugetlb: bool = False) -> None:
        """Account an allocation; raises :class:`CgroupLimitExceeded` if
        the (effective) charge would exceed the limit."""
        if nbytes < 0:
            raise ConfigurationError("charge must be non-negative")
        # The limit check + counter update is a read-modify-write on
        # shared accounting state (the real kernel uses page_counter
        # atomics here); the race detector checks the whole section
        # commits against the epoch its read observed.
        rd = get_race_detector()
        token = 0
        res = ""
        if rd is not None:
            res = rd.resource_for(self, "memcg")
            token = rd.rmw_begin(res, actor="memcg")
        would_count = (not surplus_hugetlb) or self.charge_surplus_hugetlb
        if (
            self.limit_bytes is not None
            and would_count
            and self._charged() + nbytes > self.limit_bytes
        ):
            self.failcnt += 1
            raise CgroupLimitExceeded(
                f"charge of {nbytes} exceeds limit {self.limit_bytes} "
                f"(in use: {self._charged()})"
            )
        if surplus_hugetlb:
            self.surplus_hugetlb_bytes += nbytes
        else:
            self.usage_bytes += nbytes
        if rd is not None:
            rd.rmw_commit(res, actor="memcg", token=token)

    def uncharge(self, nbytes: int, surplus_hugetlb: bool = False) -> None:
        if nbytes < 0:
            raise ConfigurationError("uncharge must be non-negative")
        rd = get_race_detector()
        token = 0
        res = ""
        if rd is not None:
            res = rd.resource_for(self, "memcg")
            token = rd.rmw_begin(res, actor="memcg")
        if surplus_hugetlb:
            if nbytes > self.surplus_hugetlb_bytes:
                raise ConfigurationError("uncharge exceeds surplus usage")
            self.surplus_hugetlb_bytes -= nbytes
        else:
            if nbytes > self.usage_bytes:
                raise ConfigurationError("uncharge exceeds usage")
            self.usage_bytes -= nbytes
        if rd is not None:
            rd.rmw_commit(res, actor="memcg", token=token)


class Cgroup:
    """A node in the cgroup hierarchy.

    Only the two controllers the paper uses are implemented.  Children
    inherit (a subset of) the parent's cpuset, enforced on creation as
    the kernel does.
    """

    def __init__(
        self,
        name: str,
        cpus: Iterable[int],
        mems: Iterable[int],
        parent: Optional["Cgroup"] = None,
        memory_limit: Optional[int] = None,
        charge_surplus_hugetlb: bool = False,
    ) -> None:
        cpu_set = frozenset(cpus)
        mem_set = frozenset(mems)
        if not cpu_set:
            raise ConfigurationError(f"cgroup {name!r} needs at least one CPU")
        if not mem_set:
            raise ConfigurationError(f"cgroup {name!r} needs at least one mem node")
        if parent is not None:
            if not cpu_set <= parent.cpuset.cpus:
                raise ConfigurationError(
                    f"cgroup {name!r} cpus {sorted(cpu_set)} not a subset of "
                    f"parent's {sorted(parent.cpuset.cpus)}"
                )
            if not mem_set <= parent.cpuset.mems:
                raise ConfigurationError(
                    f"cgroup {name!r} mems not a subset of parent's"
                )
        self.name = name
        self.parent = parent
        self.cpuset = CpusetController(cpus=cpu_set, mems=mem_set)
        self.memory = MemoryController(
            limit_bytes=memory_limit,
            charge_surplus_hugetlb=charge_surplus_hugetlb,
        )
        self.children: dict[str, Cgroup] = {}
        self.tasks: set[int] = set()  # attached task ids
        if parent is not None:
            if name in parent.children:
                raise ConfigurationError(f"duplicate child cgroup {name!r}")
            parent.children[name] = self

    # -- membership -------------------------------------------------------

    def attach(self, task_id: int) -> None:
        """Move a task into this cgroup (removing it from a sibling if a
        common ancestor tracks it — we keep it simple: task ids are only
        tracked at the group they're attached to)."""
        self.tasks.add(task_id)

    def detach(self, task_id: int) -> None:
        self.tasks.discard(task_id)

    # -- allowed resources ---------------------------------------------------

    def effective_cpus(self) -> frozenset[int]:
        return self.cpuset.cpus

    def effective_mems(self) -> frozenset[int]:
        return self.cpuset.mems

    def path(self) -> str:
        parts = []
        node: Optional[Cgroup] = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def __repr__(self) -> str:
        return (
            f"Cgroup({self.path()!r}, cpus={sorted(self.cpuset.cpus)[:4]}..., "
            f"tasks={len(self.tasks)})"
        )


def make_fugaku_hierarchy(
    all_cpus: Iterable[int],
    assistant_cpus: Iterable[int],
    app_cpus: Iterable[int],
    system_mems: Iterable[int],
    app_mems: Iterable[int],
    app_memory_limit: Optional[int] = None,
) -> tuple[Cgroup, Cgroup, Cgroup]:
    """Build the root/system/application cgroup triple Fugaku's Docker
    integration creates (§4.1.1).  Returns (root, system, app)."""
    all_mems = frozenset(system_mems) | frozenset(app_mems)
    root = Cgroup("", cpus=all_cpus, mems=all_mems)
    system = Cgroup("system", cpus=assistant_cpus, mems=system_mems, parent=root)
    app = Cgroup(
        "app",
        cpus=app_cpus,
        mems=app_mems,
        parent=root,
        memory_limit=app_memory_limit,
        charge_surplus_hugetlb=True,  # the Fugaku kernel-module hook
    )
    return root, system, app
