"""Linux tuning configurations — every §4 countermeasure as a switch.

Three presets correspond to the paper's environments:

* :func:`fugaku_production` — the "highly tuned" RHEL stack: full
  hardware partitioning (cgroups + virtual NUMA + sector cache), all
  §4.2 noise countermeasures, hugeTLBfs with overcommit and the
  surplus-charge hook, RHEL 8.2 TLB patch, IRQs to assistant cores.
* :func:`ofp_default` — the "moderately tuned" CentOS stack: nohz_full
  on app cores and THP, but no CPU isolation, IRQs balanced over the
  whole chip (Table 1).
* :func:`untuned` — stock distro defaults, the worst case used by the
  ablation benchmarks.

Table 2 / Figure 3 are produced by calling :meth:`LinuxTuning.disable`
on one countermeasure at a time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..hardware.tlb import TlbFlushMode


class LargePagePolicy(enum.Enum):
    """How large pages are provided (Table 1 "Large page support")."""

    NONE = "none"
    THP = "thp"               # transparent huge pages (OFP)
    HUGETLBFS = "hugetlbfs"   # contiguous-bit hugeTLBfs (Fugaku)


class Countermeasure(enum.Enum):
    """The individually-evaluable noise countermeasures of Table 2."""

    DAEMON_BINDING = "daemon_binding"
    KWORKER_BINDING = "kworker_binding"
    BLKMQ_BINDING = "blkmq_binding"
    PMU_STOP = "pmu_stop"
    TLB_LOCAL_PATCH = "tlb_local_patch"


@dataclass(frozen=True)
class LinuxTuning:
    """Complete tuning state of one Linux deployment."""

    name: str
    # -- CPU partitioning -------------------------------------------------
    nohz_full: bool = False
    cgroup_cpu_isolation: bool = False   # daemons confined to system cores
    irq_to_assistant: bool = False
    bind_kworkers: bool = False
    bind_blkmq: bool = False
    stop_pmu_reads: bool = False
    # -- memory -----------------------------------------------------------
    virtual_numa: bool = False
    large_pages: LargePagePolicy = LargePagePolicy.NONE
    hugetlb_overcommit: bool = False
    charge_surplus_hugetlb: bool = False
    # -- TLB --------------------------------------------------------------
    tlb_flush_mode: TlbFlushMode = TlbFlushMode.BROADCAST
    # -- caches -----------------------------------------------------------
    sector_cache: bool = False
    # -- always-on operational monitoring ---------------------------------
    sar_enabled: bool = True
    # -- scheduler tick ------------------------------------------------------
    tick_hz: float = 100.0

    def __post_init__(self) -> None:
        if self.tick_hz <= 0:
            raise ConfigurationError("tick_hz must be positive")
        if self.charge_surplus_hugetlb and not self.hugetlb_overcommit:
            raise ConfigurationError(
                "surplus charging is meaningless without overcommit"
            )

    # -- Table 2 manipulation ------------------------------------------------

    def disable(self, cm: Countermeasure) -> "LinuxTuning":
        """Return a copy with one countermeasure switched off — the
        per-row configuration of Table 2."""
        field_map = {
            Countermeasure.DAEMON_BINDING: {"cgroup_cpu_isolation": False},
            Countermeasure.KWORKER_BINDING: {"bind_kworkers": False},
            Countermeasure.BLKMQ_BINDING: {"bind_blkmq": False},
            Countermeasure.PMU_STOP: {"stop_pmu_reads": False},
            Countermeasure.TLB_LOCAL_PATCH: {
                "tlb_flush_mode": TlbFlushMode.BROADCAST
            },
        }
        changes = dict(field_map[cm])
        changes["name"] = f"{self.name}-minus-{cm.value}"
        return replace(self, **changes)

    def countermeasure_enabled(self, cm: Countermeasure) -> bool:
        return {
            Countermeasure.DAEMON_BINDING: self.cgroup_cpu_isolation,
            Countermeasure.KWORKER_BINDING: self.bind_kworkers,
            Countermeasure.BLKMQ_BINDING: self.bind_blkmq,
            Countermeasure.PMU_STOP: self.stop_pmu_reads,
            Countermeasure.TLB_LOCAL_PATCH: (
                self.tlb_flush_mode is TlbFlushMode.LOCAL_ONLY
            ),
        }[cm]


def fugaku_production() -> LinuxTuning:
    """Fugaku's production Linux configuration (§4, Table 1)."""
    return LinuxTuning(
        name="fugaku-linux",
        nohz_full=True,
        cgroup_cpu_isolation=True,
        irq_to_assistant=True,
        bind_kworkers=True,
        bind_blkmq=True,
        stop_pmu_reads=True,
        virtual_numa=True,
        large_pages=LargePagePolicy.HUGETLBFS,
        hugetlb_overcommit=True,
        charge_surplus_hugetlb=True,
        tlb_flush_mode=TlbFlushMode.LOCAL_ONLY,
        sector_cache=True,
        sar_enabled=True,
    )


def ofp_default() -> LinuxTuning:
    """OFP's moderately tuned CentOS 7.3 (Table 1): nohz_full and THP,
    but no CPU isolation and IRQs balanced across the chip."""
    return LinuxTuning(
        name="ofp-linux",
        nohz_full=True,
        cgroup_cpu_isolation=False,
        irq_to_assistant=False,
        bind_kworkers=False,
        bind_blkmq=False,
        stop_pmu_reads=True,   # OFP has no TCS; there is nothing to stop
        virtual_numa=False,
        large_pages=LargePagePolicy.THP,
        hugetlb_overcommit=False,
        charge_surplus_hugetlb=False,
        tlb_flush_mode=TlbFlushMode.IPI,  # x86 has no broadcast TLBI
        sector_cache=False,
        sar_enabled=True,
    )


def untuned() -> LinuxTuning:
    """Stock distribution defaults (ablation baseline)."""
    return LinuxTuning(name="untuned-linux")
