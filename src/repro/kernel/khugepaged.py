"""khugepaged — THP's background collapse daemon, functionally.

Transparent Huge Pages fault anonymous memory in at base granularity
and rely on this daemon to later *collapse* aligned runs of base pages
into huge pages.  Its mechanics are why the OFP environment behaves the
way the paper observes:

* collapse requires a free huge-sized block from the buddy — under
  fragmentation it fails (or triggers direct compaction, the stall
  modelled as noise in :func:`repro.noise.catalog.khugepaged_source`);
* the scan itself consumes CPU on whatever core it runs;
* and collapse only helps *after* the fact: fresh churned memory always
  pays base-page faults first (the LULESH cost in the runner).

The model operates on real :class:`~repro.kernel.pagetable.AddressSpace`
objects: a scan pass walks eligible VMAs, allocates a huge block,
releases the base blocks, and rewrites the mapping — observable in TLB
entry counts and buddy state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, OutOfMemoryError
from .pagetable import AddressSpace, PageKind, Vma, VmaKind


@dataclass
class KhugepagedStats:
    """Mirrors /sys/kernel/mm/transparent_hugepage/khugepaged counters."""

    pages_scanned: int = 0
    pages_collapsed: int = 0
    collapse_alloc_failed: int = 0
    full_scans: int = 0


class Khugepaged:
    """The collapse daemon for one address space's THP-eligible memory."""

    def __init__(self, space: AddressSpace,
                 target_kind: PageKind = PageKind.HUGE) -> None:
        if target_kind is PageKind.BASE:
            raise ConfigurationError("collapse target must be a huge size")
        geo = space.geometry
        if target_kind is PageKind.CONTIG and not geo.contig_factor:
            raise ConfigurationError("platform has no contiguous bit")
        self.space = space
        self.target_kind = target_kind
        self.target_order = geo.order_of(target_kind)
        self.target_bytes = geo.size_of(target_kind)
        self.stats = KhugepagedStats()

    # -- eligibility ------------------------------------------------------

    def _eligible(self, vma: Vma) -> bool:
        return (
            vma.kind in (VmaKind.HEAP, VmaKind.DATA, VmaKind.STACK)
            and vma.page_kind is PageKind.BASE
            and not vma.cow_shared  # shared pages cannot collapse
            and vma.populated_bytes >= self.target_bytes
        )

    # -- one scan pass ----------------------------------------------------------

    def scan(self, max_collapses: int | None = None) -> int:
        """One full scan: collapse as many aligned huge-sized runs of
        base pages as the buddy allows.  Returns collapses performed."""
        collapses = 0
        base = self.space.geometry.base
        run = self.target_bytes // base  # base pages per huge page
        for vma in list(self.space.vmas.values()):
            if not self._eligible(vma):
                continue
            self.stats.pages_scanned += len(vma.blocks)
            # Group the populated base blocks into candidate runs.
            while (max_collapses is None or collapses < max_collapses):
                candidate = self._first_base_run(vma, run)
                if candidate is None:
                    break
                try:
                    huge = self.space.buddy.alloc(self.target_order)
                except OutOfMemoryError:
                    # Fragmentation: the §4.1.3 failure mode (would
                    # trigger direct compaction on a real kernel).
                    self.stats.collapse_alloc_failed += 1
                    return collapses
                start, end = candidate
                for block in vma.blocks[start:end]:
                    self.space.buddy.free(block)
                vma.blocks[start:end] = [huge]
                # The VMA now holds mixed granularities; record it as
                # collapsed by retagging once everything is huge.
                self.stats.pages_collapsed += run
                collapses += 1
            if self._fully_collapsed(vma, run):
                vma.page_kind = self.target_kind
        self.stats.full_scans += 1
        return collapses

    def _first_base_run(self, vma: Vma, run: int) -> tuple[int, int] | None:
        """Find ``run`` consecutive order-0 blocks in the VMA's block
        list (our alignment proxy: a contiguous span of base blocks)."""
        count = 0
        start = 0
        for i, block in enumerate(vma.blocks):
            if block.order == 0:
                if count == 0:
                    start = i
                count += 1
                if count == run:
                    return start, start + run
            else:
                count = 0
        return None

    def _fully_collapsed(self, vma: Vma, run: int) -> bool:
        return bool(vma.blocks) and all(
            b.order == self.target_order for b in vma.blocks
        )

    # -- effect ---------------------------------------------------------------------

    def tlb_entries_saved(self) -> int:
        """Last-level TLB entries freed by the collapses so far."""
        run = self.target_bytes // self.space.geometry.base
        return self.stats.pages_collapsed - (
            self.stats.pages_collapsed // run
        )
