"""Device interrupt routing (/proc/irq/N/smp_affinity).

Table 1 records the deployment difference this module captures: on OFP
"device IRQs are balanced across the entire chip", while on Fugaku they
are "routed to OS cores" by writing the procfs affinity masks (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import ConfigurationError


@dataclass
class IrqDescriptor:
    """One interrupt line."""

    irq: int
    name: str
    #: Mean interrupts per second under normal load.
    rate_hz: float
    #: Handler duration per interrupt, seconds.
    handler_cost: float
    smp_affinity: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.rate_hz < 0 or self.handler_cost < 0:
            raise ConfigurationError("IRQ rate/cost must be non-negative")


class IrqRouter:
    """Holds the IRQ table of a node and applies routing policies."""

    def __init__(self, all_cpus: Sequence[int]) -> None:
        if not all_cpus:
            raise ConfigurationError("need at least one CPU")
        self.all_cpus = frozenset(all_cpus)
        self.irqs: dict[int, IrqDescriptor] = {}

    def register(self, desc: IrqDescriptor) -> None:
        if desc.irq in self.irqs:
            raise ConfigurationError(f"duplicate IRQ {desc.irq}")
        if not desc.smp_affinity:
            desc.smp_affinity = self.all_cpus
        if not desc.smp_affinity <= self.all_cpus:
            raise ConfigurationError(
                f"IRQ {desc.irq} affinity references unknown CPUs"
            )
        self.irqs[desc.irq] = desc

    def set_affinity(self, irq: int, cpus: Iterable[int]) -> None:
        """Equivalent of ``echo mask > /proc/irq/N/smp_affinity``."""
        if irq not in self.irqs:
            raise ConfigurationError(f"unknown IRQ {irq}")
        cpu_set = frozenset(cpus)
        if not cpu_set:
            raise ConfigurationError("affinity mask cannot be empty")
        if not cpu_set <= self.all_cpus:
            raise ConfigurationError("affinity references unknown CPUs")
        self.irqs[irq].smp_affinity = cpu_set

    def route_all_to(self, cpus: Iterable[int]) -> None:
        """Fugaku policy: steer every device IRQ to the assistant cores."""
        cpu_set = frozenset(cpus)
        for irq in self.irqs:
            self.set_affinity(irq, cpu_set)

    def rate_on_cpu(self, cpu_id: int) -> float:
        """Expected interrupts/s landing on one CPU (irqbalance spreads
        each line uniformly over its affinity mask)."""
        rate = 0.0
        for desc in self.irqs.values():
            if cpu_id in desc.smp_affinity:
                rate += desc.rate_hz / len(desc.smp_affinity)
        return rate

    def load_on_cpu(self, cpu_id: int) -> float:
        """Expected handler seconds per second on one CPU."""
        load = 0.0
        for desc in self.irqs.values():
            if cpu_id in desc.smp_affinity:
                load += desc.rate_hz * desc.handler_cost / len(desc.smp_affinity)
        return load


def default_irq_table(all_cpus: Sequence[int], interconnect: str) -> IrqRouter:
    """A representative IRQ population for a compute node: NIC queues,
    block I/O completion, and miscellaneous platform interrupts."""
    router = IrqRouter(all_cpus)
    nic_name = "tofu" if "tofu" in interconnect.lower() else "hfi1"
    for q in range(4):
        router.register(
            IrqDescriptor(irq=64 + q, name=f"{nic_name}-q{q}",
                          rate_hz=250.0, handler_cost=3e-6)
        )
    router.register(
        IrqDescriptor(irq=80, name="nvme0q0", rate_hz=20.0, handler_cost=5e-6)
    )
    router.register(
        IrqDescriptor(irq=9, name="acpi", rate_hz=0.5, handler_cost=2e-6)
    )
    return router
