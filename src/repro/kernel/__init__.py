"""Linux kernel model: memory management, cgroups, scheduling, tasks."""

from .base import OsInstance
from .buddy import BlockRange, BuddyAllocator
from .cgroup import Cgroup, make_fugaku_hierarchy
from .costmodel import CostModel, LINUX_COSTS, MCKERNEL_COSTS
from .ftrace import ActorSummary, Ftrace, TraceEvent
from .hugetlb import HugeTlbPool, HugeTlbStats
from .irq import IrqDescriptor, IrqRouter, default_irq_table
from .khugepaged import Khugepaged, KhugepagedStats
from .linux import LinuxKernel, SYSTEM_NUMA_FRACTION
from . import procfs
from .pagetable import (
    AARCH64_64K,
    X86_4K,
    AddressSpace,
    FaultStats,
    PageGeometry,
    PageKind,
    SharedFrame,
    Vma,
    VmaKind,
)
from .scheduler import CfsScheduler, CooperativeScheduler, SchedTask
from .tasks import (
    BindingRule,
    SystemTask,
    standard_task_population,
    task_by_name,
    timer_tick_task,
)
from .tuning import (
    Countermeasure,
    LargePagePolicy,
    LinuxTuning,
    fugaku_production,
    ofp_default,
    untuned,
)

__all__ = [
    "OsInstance",
    "BlockRange",
    "BuddyAllocator",
    "Cgroup",
    "make_fugaku_hierarchy",
    "CostModel",
    "LINUX_COSTS",
    "MCKERNEL_COSTS",
    "ActorSummary",
    "Ftrace",
    "TraceEvent",
    "HugeTlbPool",
    "HugeTlbStats",
    "IrqDescriptor",
    "IrqRouter",
    "default_irq_table",
    "Khugepaged",
    "KhugepagedStats",
    "procfs",
    "LinuxKernel",
    "SYSTEM_NUMA_FRACTION",
    "AARCH64_64K",
    "X86_4K",
    "AddressSpace",
    "FaultStats",
    "PageGeometry",
    "PageKind",
    "SharedFrame",
    "Vma",
    "VmaKind",
    "CfsScheduler",
    "CooperativeScheduler",
    "SchedTask",
    "BindingRule",
    "SystemTask",
    "standard_task_population",
    "task_by_name",
    "timer_tick_task",
    "Countermeasure",
    "LargePagePolicy",
    "LinuxTuning",
    "fugaku_production",
    "ofp_default",
    "untuned",
]
