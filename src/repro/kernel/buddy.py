"""Binary buddy page allocator with fragmentation accounting.

This is a real buddy system (split/coalesce over power-of-two orders),
not a statistical stand-in, because two of the paper's mechanisms depend
on its concrete behaviour:

* §4.1.2 *virtual NUMA nodes* exist to keep non-application allocations
  from fragmenting application memory — observable here as the failure
  rate of high-order allocations after churn;
* §4.1.3 hugeTLBfs *overcommit* allocates surplus huge pages "by the
  buddy allocator at runtime", which only succeeds while a large-enough
  free block exists.

The allocator manages one NUMA domain's page frames.  Orders are powers
of two of the base page size; a 2 MiB huge page on a 64 KiB-base system
is an order-5 allocation (32 pages, the ARM64 contiguous-bit unit), and
a 512 MiB page is order-13.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, OutOfMemoryError


@dataclass(frozen=True)
class BlockRange:
    """A contiguous allocation: [start_pfn, start_pfn + 2**order)."""

    start_pfn: int
    order: int

    @property
    def n_pages(self) -> int:
        return 1 << self.order


class BuddyAllocator:
    """Buddy allocator over ``n_pages`` page frames (need not be a power
    of two; the pool is seeded greedily with maximal aligned blocks)."""

    MAX_ORDER = 14  # up to 2**14 base pages in one block

    def __init__(self, n_pages: int, max_order: int | None = None) -> None:
        if n_pages <= 0:
            raise ConfigurationError("n_pages must be positive")
        self.max_order = self.MAX_ORDER if max_order is None else max_order
        if not 0 <= self.max_order <= 30:
            raise ConfigurationError("max_order out of range")
        self.n_pages = n_pages
        # free_lists[k] = set of start PFNs of free blocks of order k.
        self.free_lists: list[set[int]] = [set() for _ in range(self.max_order + 1)]
        self._allocated: dict[int, int] = {}  # start_pfn -> order
        self._seed_pool()

    def _seed_pool(self) -> None:
        pfn = 0
        remaining = self.n_pages
        while remaining > 0:
            order = min(self.max_order, remaining.bit_length() - 1)
            # Respect buddy alignment: block start must be order-aligned.
            while order > 0 and pfn & ((1 << order) - 1):
                order -= 1
            self.free_lists[order].add(pfn)
            pfn += 1 << order
            remaining -= 1 << order

    # -- queries ----------------------------------------------------------

    @property
    def free_pages(self) -> int:
        return sum(len(blocks) << order
                   for order, blocks in enumerate(self.free_lists))

    @property
    def allocated_pages(self) -> int:
        return self.n_pages - self.free_pages

    def largest_free_order(self) -> int:
        """Order of the biggest free block, or -1 if nothing is free."""
        for order in range(self.max_order, -1, -1):
            if self.free_lists[order]:
                return order
        return -1

    def can_allocate(self, order: int) -> bool:
        self._check_order(order)
        return self.largest_free_order() >= order

    def fragmentation_index(self, order: int) -> float:
        """Linux-style external fragmentation index for ``order``:
        0 = free memory is perfectly usable at this order,
        -> 1 = plenty of free pages but none contiguous enough.
        Returns 0.0 when a block of the order is available."""
        self._check_order(order)
        if self.can_allocate(order):
            return 0.0
        free = self.free_pages
        if free == 0:
            return 0.0  # OOM, not fragmentation
        requested = 1 << order
        blocks_needed = -(-free // requested)
        total_blocks = sum(len(b) for b in self.free_lists)
        return max(0.0, 1.0 - blocks_needed / total_blocks)

    # -- allocation ---------------------------------------------------------

    def alloc(self, order: int = 0) -> BlockRange:
        """Allocate a block of ``2**order`` contiguous pages.

        Raises :class:`OutOfMemoryError` when no free block of sufficient
        order exists — which due to fragmentation can happen even while
        ``free_pages`` is large (the effect virtual NUMA nodes prevent).
        """
        self._check_order(order)
        found = -1
        for k in range(order, self.max_order + 1):
            if self.free_lists[k]:
                found = k
                break
        if found < 0:
            raise OutOfMemoryError(
                f"no free block of order {order} "
                f"({self.free_pages} pages free but fragmented)"
            )
        pfn = min(self.free_lists[found])  # deterministic choice
        self.free_lists[found].discard(pfn)
        # Split down to the requested order, returning upper halves.
        while found > order:
            found -= 1
            buddy = pfn + (1 << found)
            self.free_lists[found].add(buddy)
        self._allocated[pfn] = order
        return BlockRange(start_pfn=pfn, order=order)

    def free(self, block: BlockRange) -> None:
        """Free a previously-allocated block, coalescing with buddies."""
        pfn, order = block.start_pfn, block.order
        if self._allocated.get(pfn) != order:
            raise ConfigurationError(
                f"free of unallocated block pfn={pfn} order={order}"
            )
        del self._allocated[pfn]
        while order < self.max_order:
            buddy = pfn ^ (1 << order)
            if buddy in self.free_lists[order] and buddy + (1 << order) <= self.n_pages:
                self.free_lists[order].discard(buddy)
                pfn = min(pfn, buddy)
                order += 1
            else:
                break
        self.free_lists[order].add(pfn)

    def alloc_pages(self, n: int) -> list[BlockRange]:
        """Allocate ``n`` pages as a list of order-0..k blocks (used for
        normal-page demand paging where contiguity is not required)."""
        if n <= 0:
            raise ConfigurationError("n must be positive")
        if n > self.free_pages:
            raise OutOfMemoryError(f"need {n} pages, {self.free_pages} free")
        blocks: list[BlockRange] = []
        remaining = n
        try:
            while remaining > 0:
                order = min(self.max_order, remaining.bit_length() - 1)
                while order > 0 and not self.can_allocate(order):
                    order -= 1
                blocks.append(self.alloc(order))
                remaining -= 1 << order
        except OutOfMemoryError:
            for b in blocks:
                self.free(b)
            raise
        return blocks

    def _check_order(self, order: int) -> None:
        if not 0 <= order <= self.max_order:
            raise ConfigurationError(
                f"order {order} out of range 0..{self.max_order}"
            )

    def __repr__(self) -> str:
        return (
            f"BuddyAllocator(pages={self.n_pages}, free={self.free_pages}, "
            f"largest_order={self.largest_free_order()})"
        )
