"""Virtual memory: address spaces, VMAs, page sizes, the ARM64
contiguous bit, and demand paging.

The paper's §4.1.3 is entirely about this machinery:

* RHEL on A64FX uses a **64 KiB base page**; the ARM64 **contiguous
  bit** lets 32 physically contiguous pages share one TLB entry, giving
  an effective **2 MiB** translation unit; the regular large page at
  this base size is **512 MiB**, which "easily leads to memory
  fragmentation problems".
* Linux supports THP and hugeTLBfs; only hugeTLBfs supports the
  contiguous bit, hence Fugaku uses hugeTLBfs (modelled in
  :mod:`repro.kernel.hugetlb`).

An :class:`AddressSpace` tracks the VMAs of one process and fulfils
faults from a buddy allocator, recording the statistics the cost model
prices (fault counts by page size, zeroing volume, TLB entries used).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError, OutOfMemoryError
from .buddy import BlockRange, BuddyAllocator


class PageKind(enum.Enum):
    """Translation granularity of a mapping."""

    BASE = "base"            # base page (4 KiB x86 / 64 KiB aarch64-RHEL)
    CONTIG = "contig"        # ARM64 contiguous-bit run (32 base pages)
    HUGE = "huge"            # regular huge page (2 MiB x86 / 512 MiB aarch64)


@dataclass(frozen=True)
class PageGeometry:
    """Page sizes of one platform."""

    base: int
    #: Base pages per contiguous-bit run (0 if the ISA has no such feature).
    contig_factor: int
    #: Base pages per regular huge page.
    huge_factor: int

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ConfigurationError("base page size must be positive")
        for f in (self.contig_factor, self.huge_factor):
            if f < 0 or (f and (f & (f - 1))):
                raise ConfigurationError(
                    "page-size factors must be 0 or a power of two"
                )

    def size_of(self, kind: PageKind) -> int:
        if kind is PageKind.BASE:
            return self.base
        if kind is PageKind.CONTIG:
            if not self.contig_factor:
                raise ConfigurationError("platform has no contiguous bit")
            return self.base * self.contig_factor
        return self.base * self.huge_factor

    def order_of(self, kind: PageKind) -> int:
        """Buddy order of one page of ``kind`` (in base pages)."""
        return (self.size_of(kind) // self.base - 1).bit_length()


#: aarch64 with RHEL's 64 KiB base: contig -> 2 MiB, huge -> 512 MiB.
AARCH64_64K = PageGeometry(base=64 * 1024, contig_factor=32, huge_factor=8192)
#: Classic x86_64: 4 KiB base, no contiguous bit, 2 MiB huge pages.
X86_4K = PageGeometry(base=4 * 1024, contig_factor=0, huge_factor=512)


class VmaKind(enum.Enum):
    """What a mapping backs, mirroring the areas §4.1.3 lists."""

    DATA = "data"      # .data/.bss
    STACK = "stack"
    HEAP = "heap"      # brk/mmap anonymous
    FILE = "file"
    DEVICE = "device"  # direct device mappings (Tofu, OmniPath)


@dataclass
class Vma:
    """One virtual memory area."""

    start: int
    length: int
    kind: VmaKind
    page_kind: PageKind
    #: Physical blocks backing the populated part, in fault order.
    blocks: list[BlockRange] = field(default_factory=list)
    populated_bytes: int = 0
    #: Copy-on-write state: blocks shared with relatives after fork().
    #: Maps block index -> the SharedFrame reference-counting cell.
    cow_shared: dict = field(default_factory=dict)

    @property
    def end(self) -> int:
        return self.start + self.length


@dataclass
class SharedFrame:
    """Reference count for one physical block shared copy-on-write."""

    block: BlockRange
    refcount: int = 1


@dataclass
class FaultStats:
    """Counters an address space accumulates; consumed by the cost model."""

    faults_by_kind: dict[PageKind, int] = field(
        default_factory=lambda: {k: 0 for k in PageKind}
    )
    zeroed_bytes: int = 0
    huge_fallbacks: int = 0  # huge-page faults satisfied with base pages
    unmapped_pages: int = 0  # base-page translations torn down (TLB flushes)
    cow_faults: int = 0      # write faults that copied a shared block
    cow_copied_bytes: int = 0

    def reset(self) -> None:
        self.faults_by_kind = {k: 0 for k in PageKind}
        self.zeroed_bytes = 0
        self.huge_fallbacks = 0
        self.unmapped_pages = 0
        self.cow_faults = 0
        self.cow_copied_bytes = 0


class AddressSpace:
    """Per-process virtual memory, backed by one buddy allocator.

    ``prefault`` mappings are populated on mmap (Fugaku's pre-allocation
    scheme, selectable "by specific environment variables" per §4.1.3);
    otherwise pages are faulted in on first touch via :meth:`touch`.
    """

    _VA_ALIGN = 1 << 30  # spread VMAs so ranges never collide

    def __init__(self, geometry: PageGeometry, buddy: BuddyAllocator) -> None:
        self.geometry = geometry
        self.buddy = buddy
        self.vmas: dict[int, Vma] = {}
        self._next_va = self._VA_ALIGN
        self.stats = FaultStats()

    # -- mapping lifecycle ----------------------------------------------

    def mmap(
        self,
        length: int,
        kind: VmaKind = VmaKind.HEAP,
        page_kind: PageKind = PageKind.BASE,
        prefault: bool = False,
    ) -> Vma:
        """Create a mapping of ``length`` bytes (rounded up to the page
        size of ``page_kind``)."""
        if length <= 0:
            raise ConfigurationError("mmap length must be positive")
        psize = self.geometry.size_of(page_kind)
        length = -(-length // psize) * psize
        vma = Vma(start=self._next_va, length=length, kind=kind,
                  page_kind=page_kind)
        self._next_va += max(length, self._VA_ALIGN)
        self.vmas[vma.start] = vma
        if prefault:
            self.touch(vma, vma.length)
        return vma

    def touch(self, vma: Vma, nbytes: int) -> int:
        """Fault in the first ``nbytes`` of ``vma`` (idempotent for
        already-populated ranges).  Returns the number of faults taken."""
        if vma.start not in self.vmas:
            raise ConfigurationError("touch on unmapped VMA")
        nbytes = min(nbytes, vma.length)
        faults = 0
        psize = self.geometry.size_of(vma.page_kind)
        order = self.geometry.order_of(vma.page_kind)
        while vma.populated_bytes < nbytes:
            try:
                block = self.buddy.alloc(order)
                got_kind = vma.page_kind
                got_size = psize
            except OutOfMemoryError:
                if vma.page_kind is PageKind.BASE:
                    raise
                # Huge/contig fault falls back to base pages (what Linux
                # does when the buddy cannot produce a contiguous run).
                block = self.buddy.alloc(0)
                got_kind = PageKind.BASE
                got_size = self.geometry.base
                self.stats.huge_fallbacks += 1
            vma.blocks.append(block)
            vma.populated_bytes += got_size
            self.stats.faults_by_kind[got_kind] += 1
            self.stats.zeroed_bytes += got_size
            faults += 1
        return faults

    def munmap(self, vma: Vma) -> int:
        """Tear down a mapping, freeing physical memory.  Returns the
        number of base-page translations invalidated — the quantity that
        drives TLB-flush storms on process exit / GC (§4.2.2).

        Copy-on-write-shared blocks are only returned to the buddy once
        the last sharer unmaps them."""
        if self.vmas.pop(vma.start, None) is None:
            raise ConfigurationError("munmap of unmapped VMA")
        invalidated = 0
        for i, block in enumerate(vma.blocks):
            shared = vma.cow_shared.get(i)
            if shared is not None:
                shared.refcount -= 1
                if shared.refcount == 0:
                    self.buddy.free(block)
            else:
                self.buddy.free(block)
            invalidated += block.n_pages
        vma.blocks.clear()
        vma.cow_shared.clear()
        vma.populated_bytes = 0
        self.stats.unmapped_pages += invalidated
        return invalidated

    # -- fork / copy-on-write ---------------------------------------------

    def fork(self) -> "AddressSpace":
        """POSIX fork(): duplicate the address space copy-on-write.

        Every populated block becomes shared between parent and child;
        physical memory is copied only on the first write by either side
        (:meth:`cow_write`).  This is the facility whose absence limited
        classic LWKs ("neither Catamount nor the IBM CNK provided full
        compatibility ... such as fork()", §1) and which McKernel's
        Linux-compatible ABI provides.
        """
        child = AddressSpace(self.geometry, self.buddy)
        child._next_va = self._next_va
        for start, vma in self.vmas.items():
            child_vma = Vma(start=vma.start, length=vma.length,
                            kind=vma.kind, page_kind=vma.page_kind,
                            populated_bytes=vma.populated_bytes)
            for i, block in enumerate(vma.blocks):
                shared = vma.cow_shared.get(i)
                if shared is None:
                    shared = SharedFrame(block=block, refcount=1)
                    vma.cow_shared[i] = shared
                shared.refcount += 1
                child_vma.blocks.append(block)
                child_vma.cow_shared[i] = shared
            child.vmas[start] = child_vma
        return child

    def cow_write(self, vma: Vma, nbytes: int | None = None) -> int:
        """First write after fork(): copy the shared blocks backing the
        first ``nbytes`` of ``vma`` (default: all populated).  Returns
        the number of copy faults taken."""
        if vma.start not in self.vmas or self.vmas[vma.start] is not vma:
            raise ConfigurationError("cow_write on a VMA not in this space")
        limit = vma.populated_bytes if nbytes is None else min(
            nbytes, vma.populated_bytes)
        faults = 0
        covered = 0
        for i, block in enumerate(vma.blocks):
            if covered >= limit:
                break
            block_bytes = block.n_pages * self.geometry.base
            covered += block_bytes
            shared = vma.cow_shared.get(i)
            if shared is None:
                continue  # already private
            if shared.refcount == 1:
                # Last sharer: reuse the frame privately (what Linux does).
                del vma.cow_shared[i]
                continue
            fresh = self.buddy.alloc(block.order)
            shared.refcount -= 1
            vma.blocks[i] = fresh
            del vma.cow_shared[i]
            faults += 1
            self.stats.cow_faults += 1
            self.stats.cow_copied_bytes += block_bytes
        return faults

    def exit(self) -> int:
        """Process termination: unmap everything.  Returns total
        base-page translations invalidated."""
        total = 0
        for vma in list(self.vmas.values()):
            total += self.munmap(vma)
        return total

    # -- accounting -------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return sum(v.populated_bytes for v in self.vmas.values())

    def tlb_entries_needed(self) -> int:
        """Last-level TLB entries required to cover all populated memory
        (the number the A64FX 1,024-entry TLB is compared against)."""
        entries = 0
        for vma in self.vmas.values():
            psize = self.geometry.size_of(vma.page_kind)
            entries += -(-vma.populated_bytes // psize)
        return entries
