"""The Linux kernel personality: composition of all §4 machinery.

A :class:`LinuxKernel` boots a tuning configuration onto a node design:
it builds the cgroup hierarchy, applies the virtual-NUMA split, sizes
the buddy allocators, constructs hugeTLBfs pools, routes IRQs, places
the system task population, and exposes the :class:`OsInstance`
interface the runtime layer consumes.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..hardware.cache import SectorCache
from ..hardware.machines import NodeSpec
from ..hardware.numa import NumaLayout, NumaRole, split_virtual_numa
from ..hardware.tlb import TlbModel
from .base import OsInstance
from .buddy import BuddyAllocator
from .cgroup import Cgroup, make_fugaku_hierarchy
from .costmodel import CostModel, LINUX_COSTS
from .hugetlb import HugeTlbPool
from .irq import IrqRouter, default_irq_table
from .pagetable import (
    AARCH64_64K,
    AddressSpace,
    PageGeometry,
    PageKind,
    X86_4K,
)
from .tasks import (
    BindingRule,
    SystemTask,
    ofp_task_population,
    standard_task_population,
)
from .tuning import LargePagePolicy, LinuxTuning

#: Fraction of each NUMA domain the firmware assigns to the system area
#: under virtual NUMA nodes (Fugaku reserves a small system slice).
SYSTEM_NUMA_FRACTION = 0.125


class LinuxKernel(OsInstance):
    """Linux booted on one node with a given tuning configuration."""

    kind = "linux"

    def __init__(
        self,
        node: NodeSpec,
        tuning: LinuxTuning,
        costs: CostModel = LINUX_COSTS,
        interconnect: str = "Fujitsu TofuD",
        tasks: Optional[list[SystemTask]] = None,
    ) -> None:
        self.node = node
        self.tuning = tuning
        self.costs = costs
        #: The machine interconnect the IRQ table was built for (kept so
        #: platform-level tests can assert uniform OS construction).
        self.interconnect = interconnect
        if tasks is not None:
            self.tasks = list(tasks)
        elif node.arch == "x86_64":
            # Production OFP-style population (diluted daemons); the
            # A64FX population models the Fugaku/testbed environment.
            self.tasks = ofp_task_population()
        else:
            self.tasks = standard_task_population()

        topo = node.topology
        # On platforms without assistant cores (KNL) the "system CPUs"
        # under cgroup isolation would be a reserved slice; without
        # isolation everything is shared.
        if topo.assistant_cores > 0:
            self._assistant_cpus = topo.assistant_cpu_ids()
            self._app_cpus = topo.application_cpu_ids()
        else:
            all_cpus = [c.cpu_id for c in topo]
            if tuning.cgroup_cpu_isolation:
                # Reserve the first physical core's threads for the system.
                reserved = set(topo.siblings(0))
                self._assistant_cpus = sorted(reserved)
                self._app_cpus = [c for c in all_cpus if c not in reserved]
            else:
                self._assistant_cpus = []
                self._app_cpus = all_cpus

        # -- memory layout -------------------------------------------------
        if tuning.virtual_numa:
            self.numa: NumaLayout = split_virtual_numa(
                node.numa.domains, SYSTEM_NUMA_FRACTION
            )
        else:
            self.numa = node.numa

        # -- cgroups ----------------------------------------------------------
        self.cgroup_root: Optional[Cgroup] = None
        self.cgroup_system: Optional[Cgroup] = None
        self.cgroup_app: Optional[Cgroup] = None
        if tuning.cgroup_cpu_isolation:
            app_mems = [
                d.node_id
                for d in self.numa
                if d.role in (NumaRole.APPLICATION, NumaRole.GENERAL)
            ]
            sys_mems = [
                d.node_id for d in self.numa if d.role == NumaRole.SYSTEM
            ] or app_mems
            sys_cpus = self._assistant_cpus or self._app_cpus
            self.cgroup_root, self.cgroup_system, self.cgroup_app = (
                make_fugaku_hierarchy(
                    all_cpus=[c.cpu_id for c in topo],
                    assistant_cpus=sys_cpus,
                    app_cpus=self._app_cpus,
                    system_mems=sys_mems,
                    app_mems=app_mems,
                    app_memory_limit=sum(
                        self.numa.domain(m).size_bytes for m in app_mems
                    ),
                )
            )
            if not tuning.charge_surplus_hugetlb and self.cgroup_app:
                self.cgroup_app.memory.charge_surplus_hugetlb = False

        # -- IRQs -----------------------------------------------------------
        self.irq = default_irq_table([c.cpu_id for c in topo], interconnect)
        if tuning.irq_to_assistant and self._assistant_cpus:
            self.irq.route_all_to(self._assistant_cpus)

        # -- sector cache ------------------------------------------------------
        self.sector_cache = SectorCache(
            node.l2, system_ways=2 if tuning.sector_cache else 0
        )

        # -- TLB ---------------------------------------------------------------
        self.tlb = TlbModel(node.tlb, tuning.tlb_flush_mode)

        # -- lazily-built memory pools (per memory_scale) ----------------------
        self._buddies: dict[float, BuddyAllocator] = {}
        self._hugetlb: dict[float, HugeTlbPool] = {}

    # -- OsInstance: CPU layout --------------------------------------------

    def app_cpu_ids(self) -> list[int]:
        return list(self._app_cpus)

    def system_cpu_ids(self) -> list[int]:
        return list(self._assistant_cpus)

    # -- OsInstance: memory ----------------------------------------------------

    def app_page_geometry(self) -> PageGeometry:
        return AARCH64_64K if self.node.arch == "aarch64" else X86_4K

    def app_page_kind(self) -> PageKind:
        policy = self.tuning.large_pages
        if policy is LargePagePolicy.NONE:
            return PageKind.BASE
        if policy is LargePagePolicy.THP:
            # THP on x86 gives 2 MiB huge pages; on aarch64/64K RHEL the THP
            # unit is the 512 MiB huge page (no contiguous-bit THP — the
            # very limitation that drove Fugaku to hugeTLBfs, §4.1.3).
            return PageKind.HUGE
        # hugeTLBfs with the contiguous bit (2 MiB on aarch64-64K); on
        # x86 hugeTLBfs serves regular 2 MiB pages.
        geo = self.app_page_geometry()
        return PageKind.CONTIG if geo.contig_factor else PageKind.HUGE

    def _app_bytes(self) -> int:
        return sum(
            d.size_bytes
            for d in self.numa
            if d.role in (NumaRole.APPLICATION, NumaRole.GENERAL)
        )

    def app_buddy(self, memory_scale: float = 1.0) -> BuddyAllocator:
        """The buddy allocator over application memory (memoised per
        scale so pools persist across address spaces, as in a running
        kernel)."""
        if not 0 < memory_scale <= 1.0:
            raise ConfigurationError("memory_scale must be in (0, 1]")
        buddy = self._buddies.get(memory_scale)
        if buddy is None:
            geo = self.app_page_geometry()
            n_pages = max(64, int(self._app_bytes() * memory_scale) // geo.base)
            buddy = BuddyAllocator(n_pages)
            self._buddies[memory_scale] = buddy
        return buddy

    def hugetlb_pool(self, memory_scale: float = 1.0) -> HugeTlbPool:
        """The node's hugeTLBfs pool (requires the HUGETLBFS policy)."""
        if self.tuning.large_pages is not LargePagePolicy.HUGETLBFS:
            raise ConfigurationError(
                f"{self.tuning.name} does not use hugeTLBfs"
            )
        pool = self._hugetlb.get(memory_scale)
        if pool is None:
            pool = HugeTlbPool(
                geometry=self.app_page_geometry(),
                buddy=self.app_buddy(memory_scale),
                page_kind=self.app_page_kind(),
                boot_pool_pages=0,  # Fugaku: no boot reservation
                overcommit_limit=(
                    None if self.tuning.hugetlb_overcommit else 0
                ),
            )
            self._hugetlb[memory_scale] = pool
        return pool

    def make_address_space(self, memory_scale: float = 1.0) -> AddressSpace:
        return AddressSpace(self.app_page_geometry(), self.app_buddy(memory_scale))

    # -- OsInstance: syscalls -----------------------------------------------------

    def syscall_delegated(self, name: str) -> bool:
        """Linux serves everything locally."""
        return False

    # -- OsInstance: noise -----------------------------------------------------------

    def noise_tasks_on_app_cores(self) -> list[SystemTask]:
        """Apply the placement rules of §4.2 to decide which system tasks
        still reach application cores."""
        t = self.tuning
        visible: list[SystemTask] = []
        has_system_partition = bool(self._assistant_cpus)
        for task in self.tasks:
            if task.binding is BindingRule.CGROUP:
                confined = t.cgroup_cpu_isolation and has_system_partition
                if task.name == "tlbi-broadcast":
                    # The TLBI storm is not confined by placement at all;
                    # it disappears only via the RHEL flush patch (for
                    # single-core processes, i.e. the system daemons —
                    # TCS binds all system components to one core, §4.2.2).
                    # x86 CPUs have no broadcast TLBI in the first place.
                    from ..hardware.tlb import TlbFlushMode

                    confined = (
                        t.tlb_flush_mode is not TlbFlushMode.BROADCAST
                        or self.node.tlb.broadcast_victim_cost == 0.0
                    )
                if not confined:
                    visible.append(task)
            elif task.binding is BindingRule.KWORKER_MASK:
                if not (t.bind_kworkers and has_system_partition):
                    visible.append(task)
            elif task.binding is BindingRule.BLK_MQ_MASK:
                if not (t.bind_blkmq and has_system_partition):
                    visible.append(task)
            elif task.binding is BindingRule.PER_JOB_STOP:
                if not t.stop_pmu_reads:
                    visible.append(task)
            elif task.binding is BindingRule.UNSTOPPABLE:
                if t.sar_enabled:
                    visible.append(task)
        return visible

    def tick_rate_on_app_cores(self) -> float:
        """nohz_full suppresses the tick for single-runnable-task cores,
        the steady state of a pinned HPC rank."""
        return 0.0 if self.tuning.nohz_full else self.tuning.tick_hz

    def irq_load_on_app_cores(self) -> float:
        """Mean IRQ handler seconds/second on one application core."""
        if not self._app_cpus:
            return 0.0
        cpu = self._app_cpus[len(self._app_cpus) // 2]
        return self.irq.load_on_cpu(cpu)

    def irq_rate_on_app_cores(self) -> float:
        """Mean IRQs/second landing on one application core."""
        if not self._app_cpus:
            return 0.0
        cpu = self._app_cpus[len(self._app_cpus) // 2]
        return self.irq.rate_on_cpu(cpu)

    # -- OsInstance: caches -------------------------------------------------------------

    def cache_pollution_factor(self) -> float:
        # Without a system partition, OS traffic shares the app's cache;
        # its share of fills is small but non-zero.
        system_share = 0.0 if self._assistant_cpus else 0.03
        return self.sector_cache.pollution_factor(system_share)
