"""hugeTLBfs: boot-time pools, overcommit, surplus pages, cgroup charge.

§4.1.3 describes Fugaku's configuration precisely:

* normally hugeTLBfs *reserves a pool at boot*, which starves apps that
  want normal pages;
* Fugaku instead enables **overcommit without a reserved pool** and lets
  surplus huge pages be allocated **by the buddy allocator at runtime**;
* stock memcg cannot limit surplus pages, so a kernel-module hook
  charges them to the memory cgroup (modelled in
  :mod:`repro.kernel.cgroup`).

This module ties those pieces together: a :class:`HugeTlbPool` per
(NUMA domain, page kind) that serves ``get_page``/``put_page`` either
from the boot pool or by order-N buddy allocation, with optional cgroup
charging on the surplus path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CgroupLimitExceeded, ConfigurationError, OutOfMemoryError
from .buddy import BlockRange, BuddyAllocator
from .cgroup import Cgroup
from .pagetable import PageGeometry, PageKind


@dataclass
class HugeTlbStats:
    """Mirrors /sys/kernel/mm/hugepages counters."""

    pool_size: int = 0       # nr_hugepages (persistent pool)
    free: int = 0            # free_hugepages
    surplus: int = 0         # surplus_hugepages
    reserved: int = 0        # resv_hugepages
    alloc_fail: int = 0      # failed surplus allocations (fragmentation/OOM)


class HugeTlbPool:
    """Huge page pool for one page kind over one buddy allocator."""

    def __init__(
        self,
        geometry: PageGeometry,
        buddy: BuddyAllocator,
        page_kind: PageKind = PageKind.CONTIG,
        boot_pool_pages: int = 0,
        overcommit_limit: int | None = None,
    ) -> None:
        if page_kind is PageKind.BASE:
            raise ConfigurationError("hugeTLBfs pools hold huge pages only")
        self.geometry = geometry
        self.buddy = buddy
        self.page_kind = page_kind
        self.order = geometry.order_of(page_kind)
        self.page_bytes = geometry.size_of(page_kind)
        #: None = unlimited overcommit (Fugaku's configuration);
        #: 0 = overcommit disabled (stock default).
        self.overcommit_limit = overcommit_limit
        self.stats = HugeTlbStats()
        self._pool_blocks: list[BlockRange] = []
        self._surplus_blocks: dict[int, BlockRange] = {}
        if boot_pool_pages:
            self.grow_pool(boot_pool_pages)

    # -- pool management (sysctl nr_hugepages) ------------------------------

    def grow_pool(self, n_pages: int) -> int:
        """Reserve ``n_pages`` more persistent huge pages at "boot".
        Returns how many were actually obtained (the kernel silently
        grows as far as contiguity allows)."""
        got = 0
        for _ in range(n_pages):
            try:
                self._pool_blocks.append(self.buddy.alloc(self.order))
            except OutOfMemoryError:
                break
            got += 1
        self.stats.pool_size += got
        self.stats.free += got
        return got

    def shrink_pool(self, n_pages: int) -> int:
        """Return up to ``n_pages`` free persistent pages to the buddy."""
        released = 0
        while released < n_pages and self.stats.free > 0 and self._pool_blocks:
            self.buddy.free(self._pool_blocks.pop())
            self.stats.free -= 1
            self.stats.pool_size -= 1
            released += 1
        return released

    # -- page faults ---------------------------------------------------------

    def get_page(self, cgroup: Cgroup | None = None) -> BlockRange:
        """Obtain one huge page for a fault.

        Order of service mirrors the kernel: free pool first, then (if
        overcommit allows) a surplus page straight from the buddy.  The
        surplus path charges ``cgroup`` — effective only when the group
        has the Fugaku charge hook enabled.
        """
        if self.stats.free > 0:
            self.stats.free -= 1
            block = self._pool_blocks.pop()
            if cgroup is not None:
                # Pool pages are regular memcg charges on Fugaku too.
                try:
                    cgroup.memory.charge(self.page_bytes, surplus_hugetlb=False)
                except CgroupLimitExceeded:
                    self._pool_blocks.append(block)
                    self.stats.free += 1
                    raise
            return block
        if self.overcommit_limit is not None and (
            self.stats.surplus >= self.overcommit_limit
        ):
            self.stats.alloc_fail += 1
            raise OutOfMemoryError(
                f"hugetlb overcommit limit {self.overcommit_limit} reached"
            )
        if cgroup is not None:
            cgroup.memory.charge(self.page_bytes, surplus_hugetlb=True)
        try:
            block = self.buddy.alloc(self.order)
        except OutOfMemoryError:
            if cgroup is not None:
                cgroup.memory.uncharge(self.page_bytes, surplus_hugetlb=True)
            self.stats.alloc_fail += 1
            raise
        self.stats.surplus += 1
        self._surplus_blocks[block.start_pfn] = block
        return block

    def put_page(self, block: BlockRange, cgroup: Cgroup | None = None) -> None:
        """Release a huge page.  Surplus pages go back to the buddy (and
        are uncharged); pool pages return to the free pool."""
        if block.start_pfn in self._surplus_blocks:
            del self._surplus_blocks[block.start_pfn]
            self.buddy.free(block)
            self.stats.surplus -= 1
            if cgroup is not None:
                cgroup.memory.uncharge(self.page_bytes, surplus_hugetlb=True)
        else:
            self._pool_blocks.append(block)
            self.stats.free += 1
            if cgroup is not None:
                cgroup.memory.uncharge(self.page_bytes, surplus_hugetlb=False)

    # -- derived quantities ---------------------------------------------------

    @property
    def in_use(self) -> int:
        """Huge pages currently handed out."""
        return (self.stats.pool_size - self.stats.free) + self.stats.surplus

    def normal_pages_stolen(self) -> int:
        """Base pages made unavailable by the persistent pool — the §4.1.3
        disadvantage of boot-time reservation for small-allocation apps."""
        return self.stats.pool_size * (1 << self.order)
