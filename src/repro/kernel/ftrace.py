"""ftrace-style kernel event tracing.

§4.2.1: "For identifying kernel mode tasks that interfere with
application code we utilize execution time profiling and ftrace".  The
noise-audit example reproduces that workflow: run FWQ with tracing
enabled, aggregate trace events by actor, and rank the interference
sources — which is how the blk-mq placement bug was found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..obs.tracer import get_tracer


@dataclass(frozen=True)
class TraceEvent:
    """One kernel activity record."""

    timestamp: float
    cpu_id: int
    actor: str      # task/handler name (e.g. "kworker/u8:3", "irq/64")
    event: str      # e.g. "sched_switch", "irq_entry", "tlb_flush"
    duration: float


@dataclass
class ActorSummary:
    """Aggregated interference attributed to one actor."""

    actor: str
    count: int = 0
    total_time: float = 0.0
    max_duration: float = 0.0

    def add(self, ev: TraceEvent) -> None:
        self.count += 1
        self.total_time += ev.duration
        self.max_duration = max(self.max_duration, ev.duration)


class Ftrace:
    """In-memory trace buffer with per-CPU filtering and reporting."""

    def __init__(self, buffer_size: int = 1_000_000) -> None:
        self.buffer_size = buffer_size
        self.events: list[TraceEvent] = []
        self.enabled = False
        self.dropped = 0

    def start(self) -> None:
        self.enabled = True

    def stop(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def record(self, ev: TraceEvent) -> None:
        if not self.enabled:
            return
        if len(self.events) >= self.buffer_size:
            self.dropped += 1  # ring buffer overwrite, modelled as a drop
            self.events.pop(0)
        self.events.append(ev)
        # Re-emit into the unified cross-layer tracer (repro.obs) so a
        # kernel-local capture shows up on the stack-wide timeline.
        t = get_tracer()
        if t is not None:
            t.event("kernel", ev.event, ts=ev.timestamp,
                    duration=ev.duration, actor=ev.actor, cpu=ev.cpu_id)

    # -- analysis -------------------------------------------------------

    def filter(
        self,
        cpus: Optional[Iterable[int]] = None,
        actors: Optional[Iterable[str]] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> list[TraceEvent]:
        cpu_set = set(cpus) if cpus is not None else None
        actor_set = set(actors) if actors is not None else None
        out = []
        for ev in self.events:
            if cpu_set is not None and ev.cpu_id not in cpu_set:
                continue
            if actor_set is not None and ev.actor not in actor_set:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def interference_report(
        self, app_cpus: Iterable[int]
    ) -> list[ActorSummary]:
        """Rank actors by total time stolen on application CPUs — the
        §4.2.1 methodology.  Returns summaries sorted worst-first."""
        summaries: dict[str, ActorSummary] = {}
        for ev in self.filter(cpus=app_cpus):
            s = summaries.get(ev.actor)
            if s is None:
                s = summaries[ev.actor] = ActorSummary(actor=ev.actor)
            s.add(ev)
        return sorted(summaries.values(), key=lambda s: -s.total_time)
