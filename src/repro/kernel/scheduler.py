"""CPU scheduling models.

Two schedulers are implemented:

* :class:`CfsScheduler` — a weighted-fair model of Linux CFS with the
  periodic tick and the ``nohz_full`` adaptive-tick mode used on both
  platforms' application cores (Table 1);
* :class:`CooperativeScheduler` — McKernel's "simple round-robin
  co-operative (tick-less) scheduler" (§5): no preemption, no tick, a
  task runs until it yields.

The schedulers serve two purposes: a functional one for the DES-level
examples (pick next task, account runtime) and an analytic one for the
noise layer (does this core take timer interrupts?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.race import get_race_detector
from ..errors import ConfigurationError
from ..obs.tracer import get_tracer


def _rq_write(sched: "CfsScheduler | CooperativeScheduler") -> None:
    """Race hook: every runqueue mutation is an exclusive write by the
    owning CPU — per-CPU runqueues are lock-free precisely because only
    their own CPU touches them, so a second writer is an unordered
    cross-CPU update the detector must flag."""
    rd = get_race_detector()
    if rd is not None:
        rd.write(rd.resource_for(sched, f"runqueue/cpu{sched.cpu_id}"),
                 actor=f"cpu{sched.cpu_id}", exclusive=True)


@dataclass
class SchedTask:
    """A schedulable entity (thread)."""

    task_id: int
    name: str = ""
    weight: float = 1.0  # CFS nice-level weight
    runtime: float = 0.0  # accumulated CPU seconds
    vruntime: float = 0.0  # weighted runtime (CFS pick key)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("weight must be positive")


class CfsScheduler:
    """Completely-Fair-Scheduler model for one logical CPU.

    ``nohz_full`` semantics follow the kernel: the tick is suppressed on
    a core only while it is in adaptive-tick mode AND has at most one
    runnable task; a second runnable task re-enables the tick (and its
    noise).  This is why cgroup isolation *and* nohz_full are both
    needed on Fugaku.
    """

    def __init__(self, cpu_id: int, nohz_full: bool = False,
                 tick_hz: float = 100.0) -> None:
        if tick_hz <= 0:
            raise ConfigurationError("tick_hz must be positive")
        self.cpu_id = cpu_id
        self.nohz_full = nohz_full
        self.tick_hz = tick_hz
        self.runqueue: dict[int, SchedTask] = {}

    # -- run queue ----------------------------------------------------

    def enqueue(self, task: SchedTask) -> None:
        if task.task_id in self.runqueue:
            raise ConfigurationError(f"task {task.task_id} already enqueued")
        # New tasks start at the max vruntime so they don't starve others.
        if self.runqueue:
            task.vruntime = max(t.vruntime for t in self.runqueue.values())
        _rq_write(self)
        self.runqueue[task.task_id] = task

    def dequeue(self, task_id: int) -> SchedTask:
        try:
            task = self.runqueue.pop(task_id)
        except KeyError:
            raise ConfigurationError(f"task {task_id} not on runqueue") from None
        _rq_write(self)
        return task

    def pick_next(self) -> Optional[SchedTask]:
        """Task with the smallest vruntime (ties by id for determinism)."""
        if not self.runqueue:
            return None
        return min(self.runqueue.values(), key=lambda t: (t.vruntime, t.task_id))

    def account(self, task_id: int, delta: float) -> None:
        """Charge ``delta`` seconds of CPU to a task."""
        if delta < 0:
            raise ConfigurationError("delta must be non-negative")
        task = self.runqueue.get(task_id)
        if task is None:
            raise ConfigurationError(f"task {task_id} not on runqueue")
        _rq_write(self)
        task.runtime += delta
        task.vruntime += delta / task.weight

    def run_slice(self, horizon: float, slice_len: float = 0.004) -> dict[int, float]:
        """Advance the queue ``horizon`` seconds in ``slice_len`` quanta,
        always running the fair pick.  Returns per-task CPU time — over a
        long horizon this converges to the weight shares, which the CFS
        tests assert.

        Consecutive quanta of the same pick are charged in one batched
        :meth:`account` call: the pick keeps the CPU until its vruntime
        overtakes the runner-up's, so the retention length is known up
        front (``1 + floor(gap * weight / slice_len)`` quanta) and the
        per-quantum pick/account/trace loop collapses to one iteration
        per context switch — a lone task consumes the whole horizon in a
        single call.  The emitted sched_switch spans are the coalesced
        per-stretch spans the historical loop produced.
        """
        if horizon <= 0 or slice_len <= 0:
            raise ConfigurationError("horizon and slice_len must be positive")
        got: dict[int, float] = {tid: 0.0 for tid in self.runqueue}
        tracer = get_tracer()
        t = 0.0
        # For the unified trace, contiguous quanta of one task coalesce
        # into a single sched_switch span (what ftrace would show).
        span_task: Optional[SchedTask] = None
        span_start = 0.0
        while t < horizon and self.runqueue:
            task = self.pick_next()
            assert task is not None
            if tracer is not None and task is not span_task:
                if span_task is not None:
                    tracer.span("kernel", "sched_switch", ts=span_start,
                                duration=t - span_start,
                                actor=span_task.name or f"task{span_task.task_id}",
                                cpu=self.cpu_id)
                span_task, span_start = task, t
            remaining = horizon - t
            if len(self.runqueue) == 1:
                run = remaining
            else:
                nxt = min(
                    (o for o in self.runqueue.values() if o is not task),
                    key=lambda o: (o.vruntime, o.task_id))
                gap = nxt.vruntime - task.vruntime
                k = 1 + int(gap * task.weight / slice_len) if gap > 0 else 1
                run = min(k * slice_len, remaining)
            self.account(task.task_id, run)
            got[task.task_id] += run
            t += run
        if tracer is not None and span_task is not None:
            tracer.span("kernel", "sched_switch", ts=span_start,
                        duration=t - span_start,
                        actor=span_task.name or f"task{span_task.task_id}",
                        cpu=self.cpu_id)
        return got

    # -- tick behaviour (noise-relevant) -----------------------------------

    def tick_active(self) -> bool:
        """Does this core currently take periodic timer interrupts?"""
        if not self.nohz_full:
            return True
        return len(self.runqueue) > 1

    def tick_rate(self) -> float:
        """Timer interrupts per second on this core right now."""
        return self.tick_hz if self.tick_active() else 0.0


class CooperativeScheduler:
    """McKernel's tick-less cooperative round-robin (§5).

    No timer interrupts ever; tasks run in FIFO rotation and only switch
    on explicit :meth:`yield_cpu`.  The normal HPC configuration is one
    compute thread per core, in which case the scheduler is pure
    bookkeeping — exactly why the LWK generates no scheduler noise.
    """

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        self._ring: list[SchedTask] = []
        self._current = 0

    def enqueue(self, task: SchedTask) -> None:
        if any(t.task_id == task.task_id for t in self._ring):
            raise ConfigurationError(f"task {task.task_id} already enqueued")
        _rq_write(self)
        self._ring.append(task)

    def dequeue(self, task_id: int) -> SchedTask:
        for i, t in enumerate(self._ring):
            if t.task_id == task_id:
                _rq_write(self)
                del self._ring[i]
                if self._current >= len(self._ring):
                    self._current = 0
                return t
        raise ConfigurationError(f"task {task_id} not on runqueue")

    @property
    def current(self) -> Optional[SchedTask]:
        return self._ring[self._current] if self._ring else None

    def yield_cpu(self) -> Optional[SchedTask]:
        """Current task yields; returns the next task (round robin)."""
        if not self._ring:
            return None
        self._current = (self._current + 1) % len(self._ring)
        return self._ring[self._current]

    def account(self, delta: float) -> None:
        if delta < 0:
            raise ConfigurationError("delta must be non-negative")
        if self.current is not None:
            _rq_write(self)
            self.current.runtime += delta

    def tick_active(self) -> bool:
        """LWK never ticks."""
        return False

    def tick_rate(self) -> float:
        return 0.0
