"""Common interface of an OS personality running on a node.

:class:`OsInstance` is what the runtime and noise layers program
against; :class:`repro.kernel.linux.LinuxKernel` and
:class:`repro.mckernel.lwk.McKernelInstance` implement it.  The
interface is deliberately narrow — exactly the OS-dependent knobs the
paper's evaluation exercises.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..hardware.machines import NodeSpec
from .costmodel import CostModel
from .pagetable import PageGeometry, PageKind
from .tasks import SystemTask

if TYPE_CHECKING:
    from .buddy import BuddyAllocator
    from .pagetable import AddressSpace


class OsInstance(abc.ABC):
    """One booted OS personality on one node design."""

    #: Short identifier: "linux" or "mckernel".
    kind: str
    node: NodeSpec
    costs: CostModel

    # -- CPU layout ---------------------------------------------------------

    @abc.abstractmethod
    def app_cpu_ids(self) -> list[int]:
        """Logical CPUs applications run on under this OS."""

    @abc.abstractmethod
    def system_cpu_ids(self) -> list[int]:
        """Logical CPUs running OS/system work (Linux side for McKernel)."""

    # -- memory ---------------------------------------------------------------

    @abc.abstractmethod
    def app_page_geometry(self) -> PageGeometry:
        """Page geometry applications see."""

    @abc.abstractmethod
    def app_page_kind(self) -> PageKind:
        """Granularity used for application heap/stack/data mappings."""

    @abc.abstractmethod
    def make_address_space(self, memory_scale: float = 1.0) -> "AddressSpace":
        """A fresh application address space backed by this OS's
        application memory.  ``memory_scale`` shrinks the physical pool
        for fast tests (page *sizes* are unchanged)."""

    # -- syscalls & devices ----------------------------------------------------

    @abc.abstractmethod
    def syscall_delegated(self, name: str) -> bool:
        """Is ``name`` served locally or offloaded to another kernel?"""

    @property
    def rdma_fast_path(self) -> bool:
        """True when RDMA registration bypasses the syscall/delegation
        path (Tofu PicoDriver)."""
        return False

    # -- noise -------------------------------------------------------------------

    @abc.abstractmethod
    def noise_tasks_on_app_cores(self) -> list[SystemTask]:
        """System tasks whose activity can delay application cores,
        after this OS's placement/countermeasure rules are applied."""

    @abc.abstractmethod
    def tick_rate_on_app_cores(self) -> float:
        """Timer interrupts per second on an application core."""

    # -- caches -----------------------------------------------------------------

    def cache_pollution_factor(self) -> float:
        """Multiplier (>= 1) on application memory-stall time from
        system-side cache pollution."""
        return 1.0

    def describe(self) -> str:
        app = len(self.app_cpu_ids())
        sys_ = len(self.system_cpu_ids())
        return (
            f"{self.kind} on {self.node.name}: {app} app CPUs, "
            f"{sys_} system CPUs, pages={self.app_page_kind().value}"
        )
