"""procfs/sysfs-style introspection of a simulated kernel.

The paper's tuning work is procfs archaeology — ``/proc/irq/N/
smp_affinity`` writes, kworker cpumask sysfs files, hugepage counters —
so the simulator exposes the same surface: :func:`render` produces a
virtual file tree of a :class:`~repro.kernel.linux.LinuxKernel`'s state
whose formats follow the kernel's, making the model debuggable with the
same eyes one uses on real nodes (and making examples/tests readable to
HPC operators).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .linux import LinuxKernel
from .tuning import LargePagePolicy


def _cpumask(cpus, n_cpus: int) -> str:
    """Render a CPU set as the kernel's hex bitmask format."""
    mask = 0
    for c in cpus:
        mask |= 1 << c
    width = max(1, (n_cpus + 3) // 4)
    return format(mask, f"0{width}x")


def _cpulist(cpus) -> str:
    """Render a CPU set as the kernel's list format (e.g. '2-11,14')."""
    cpus = sorted(cpus)
    if not cpus:
        return ""
    ranges = []
    start = prev = cpus[0]
    for c in cpus[1:]:
        if c == prev + 1:
            prev = c
            continue
        ranges.append((start, prev))
        start = prev = c
    ranges.append((start, prev))
    return ",".join(f"{a}-{b}" if a != b else f"{a}" for a, b in ranges)


def render(kernel: LinuxKernel, memory_scale: float = 0.01) -> dict[str, str]:
    """The virtual file tree: path -> contents."""
    topo = kernel.node.topology
    n_cpus = topo.logical_cpus
    files: dict[str, str] = {}

    # /proc/cmdline — the boot arguments the tuning implies.
    args = []
    if kernel.tuning.nohz_full:
        args.append(f"nohz_full={_cpulist(kernel.app_cpu_ids())}")
    if kernel.tuning.large_pages is LargePagePolicy.HUGETLBFS:
        args.append("hugepagesz=2M")
    files["/proc/cmdline"] = " ".join(args) or "(default)"

    # /proc/irq/N/smp_affinity
    for irq, desc in sorted(kernel.irq.irqs.items()):
        files[f"/proc/irq/{irq}/smp_affinity"] = _cpumask(
            desc.smp_affinity, n_cpus)
        files[f"/proc/irq/{irq}/name"] = desc.name

    # cgroup cpusets
    if kernel.cgroup_app is not None:
        files["/sys/fs/cgroup/app/cpuset.cpus"] = _cpulist(
            kernel.cgroup_app.cpuset.cpus)
        files["/sys/fs/cgroup/app/cpuset.mems"] = _cpulist(
            kernel.cgroup_app.cpuset.mems)
        assert kernel.cgroup_system is not None
        files["/sys/fs/cgroup/system/cpuset.cpus"] = _cpulist(
            kernel.cgroup_system.cpuset.cpus)
        limit = kernel.cgroup_app.memory.limit_bytes
        files["/sys/fs/cgroup/app/memory.max"] = (
            str(limit) if limit is not None else "max")

    # hugepage counters
    if kernel.tuning.large_pages is LargePagePolicy.HUGETLBFS:
        pool = kernel.hugetlb_pool(memory_scale)
        base = "/sys/kernel/mm/hugepages/hugepages-2048kB"
        files[f"{base}/nr_hugepages"] = str(pool.stats.pool_size)
        files[f"{base}/free_hugepages"] = str(pool.stats.free)
        files[f"{base}/surplus_hugepages"] = str(pool.stats.surplus)
        files[f"{base}/nr_overcommit_hugepages"] = (
            "unlimited" if pool.overcommit_limit is None
            else str(pool.overcommit_limit))

    # THP switch
    thp = ("always" if kernel.tuning.large_pages is LargePagePolicy.THP
           else "never")
    files["/sys/kernel/mm/transparent_hugepage/enabled"] = thp

    # NUMA summary
    for domain in kernel.numa:
        files[f"/sys/devices/system/node/node{domain.node_id}/meminfo"] = (
            f"Node {domain.node_id} MemTotal: {domain.size_bytes // 1024} kB "
            f"({domain.kind.value}, {domain.role.value})"
        )

    # The task population the tuning leaves on application cores.
    visible = kernel.noise_tasks_on_app_cores()
    files["/proc/interference"] = "\n".join(
        f"{t.name} interval={t.interval:g}s max={t.duration.upper:g}s"
        for t in visible
    ) or "(none)"
    return files


def read(kernel: LinuxKernel, path: str, memory_scale: float = 0.01) -> str:
    """Read one virtual file (raises like a missing procfs entry)."""
    files = render(kernel, memory_scale)
    try:
        return files[path]
    except KeyError:
        raise ConfigurationError(f"no such proc file: {path}") from None
