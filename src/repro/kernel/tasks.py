"""System task population: daemons, kworkers, blk-mq workers, monitors.

These are the actors behind every row of Table 2.  Each task carries an
*activity pattern* (how often it wakes, for how long) and a *binding
rule* describing which countermeasure confines it:

* ordinary daemons are confined by the **cgroup** cpuset;
* unbound **kworker** kernel threads need their sysfs cpumask written;
* **blk-mq** workers ignore even that — their placement comes from
  ``struct blk_mq_hw_ctx.cpumask``, which Fugaku patches explicitly
  (§4.2.1);
* the TCS **PMU reader** interferes via IPIs to every core regardless of
  its own binding and must be disabled per-job;
* **sar** is required for operations and can never be disabled — it is
  the residual noise the paper measures even in the "None" row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.distributions import (
    Distribution,
    Fixed,
    LogNormalCapped,
    TruncatedExponential,
    Uniform,
)
from ..units import ms, us


class BindingRule(enum.Enum):
    """Which mechanism (if any) can confine a task to system cores."""

    CGROUP = "cgroup"          # follows the cgroup cpuset
    KWORKER_MASK = "kworker"   # needs the sysfs workqueue cpumask write
    BLK_MQ_MASK = "blk_mq"     # needs the blk_mq_hw_ctx.cpumask patch
    PER_JOB_STOP = "pmu_stop"  # can only be stopped per job (TCS PMU reads)
    UNSTOPPABLE = "always_on"  # operationally required (sar)


@dataclass(frozen=True)
class SystemTask:
    """One noise-generating system actor."""

    name: str
    binding: BindingRule
    #: Mean seconds between activity bursts on a given core.
    interval: float
    #: Burst duration distribution.
    duration: Distribution
    #: If True the task's effect is felt on ALL cores regardless of where
    #: the task itself runs (IPI-style interference: PMU reads, TLBI).
    global_effect: bool = False

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"{self.name}: interval must be positive")

    def duty_cycle(self) -> float:
        """Mean fraction of core time consumed (mean duration / interval).
        This equals the paper's Eq. 2 noise rate contribution of the task
        (see noise/analytic.py for the identity)."""
        return self.duration.mean / self.interval


def standard_task_population() -> list[SystemTask]:
    """The task set behind Table 2, calibrated so FWQ reproduces the
    reported maxima and noise rates.

    Calibration identities (derivation in EXPERIMENTS.md):

    * Eq. 2's noise rate ~= sum of duty cycles of the sources visible on
      the measured core, so each task's ``interval`` is chosen as
      ``mean_duration / delta_noise_rate`` with the delta taken from
      Table 2 (row minus the all-countermeasures baseline 3.79e-6);
    * each ``duration.upper`` equals the Table 2 "maximum noise length"
      for the row that disables the corresponding countermeasure (minus
      the baseline's contribution where relevant).
    """
    return [
        # Row "Daemon process": max 20,346.98 us, rate 9.94e-4.  Daemon
        # housekeeping bursts are log-normal (scheduler blip .. full
        # housekeeping pass); clipped mean ~3.7 ms, so duty 9.9e-4 needs
        # a ~3.7 s wake interval.  P(burst >= cap) ~ 2%, so the 20.3 ms
        # maximum is observed within minutes, as in Fig. 3b.
        SystemTask(
            name="daemons",
            binding=BindingRule.CGROUP,
            interval=3.85,
            duration=LogNormalCapped(median=ms(2.2), sigma=1.1, cap=ms(20.347)),
        ),
        # Row "Unbound kworker tasks": max 266.34 us, rate delta
        # 4.58e-6 - 3.79e-6 = 0.79e-6.  scale/interval = 30us/38s = 0.79e-6;
        # expected observed max over a 1-hour node-wide run
        # (~4.5k events) is scale * ln(4.5e3) ~ 253 us, capped at 266.34.
        SystemTask(
            name="kworker",
            binding=BindingRule.KWORKER_MASK,
            interval=38.0,
            duration=TruncatedExponential(scale=us(30.0), cap=us(266.34)),
        ),
        # Row "blk-mq worker tasks": max 387.91 us, rate delta 0.79e-6.
        # Fatter bursts (request batches): 47us/59.5s = 0.79e-6, observed
        # max ~ 47 * ln(2.9e3) ~ 375 us, capped at 387.91.
        SystemTask(
            name="blk-mq",
            binding=BindingRule.BLK_MQ_MASK,
            interval=59.5,
            duration=TruncatedExponential(scale=us(47.0), cap=us(387.91)),
        ),
        # Row "PMU counter reads": max 103.09 us, rate delta 4.48e-6.
        # TCS reads counters on ALL cores via IPI every ~2 s (§4.2.1);
        # 8.5us/1.9s = 4.47e-6, observed max ~ 8.5 * ln(9e4) ~ 97 us.
        SystemTask(
            name="pmu-read",
            binding=BindingRule.PER_JOB_STOP,
            interval=1.9,
            duration=TruncatedExponential(scale=us(8.5), cap=us(103.09)),
            global_effect=True,
        ),
        # Row "CPU-global flush instruction": max 90.2 us, rate delta
        # 0.08e-6.  Rare flush storms (GC / process exit): hundreds of
        # TLBIs at 200 ns each = tens of microseconds on every other
        # core (§4.2.2).  55us mean / 600s = 0.09e-6.
        SystemTask(
            name="tlbi-broadcast",
            binding=BindingRule.CGROUP,  # fixed by the RHEL TLB patch instead
            interval=600.0,
            duration=Uniform(lo=us(20.0), hi=us(90.2)),
            global_effect=True,
        ),
        # Residual: sar, "required on Fugaku to be turned on for operation
        # purposes".  Its sampling pass is near-constant work, so the
        # duration is uniform: mean 37.9us / 10s = rate 3.79e-6, max
        # 50.44 us — exactly the baseline row.
        SystemTask(
            name="sar",
            binding=BindingRule.UNSTOPPABLE,
            interval=10.0,
            duration=Uniform(lo=us(25.3), hi=us(50.44)),
            global_effect=True,
        ),
    ]


def ofp_task_population() -> list[SystemTask]:
    """The Oakforest-PACS production task set.

    OFP's CentOS runs a normal daemon population, but with 272 logical
    CPUs and applications encouraged onto a 256-CPU subset, daemon and
    kworker activity lands on any given *application* core far less
    often than in Table 2's deliberate unbind experiment — yet, with no
    cgroup isolation, it does land there (Table 1: "CPU isolation: No").
    Durations reach the ~17.5 ms excess the paper observed on OFP
    (FWQ iterations up to 24 ms against the 6.5 ms quantum, Fig. 4a).
    """
    return [
        # Production daemons, diluted across the chip; occasionally a
        # long housekeeping pass lands on an application core.
        SystemTask(
            name="daemons",
            binding=BindingRule.CGROUP,
            interval=150.0,
            duration=TruncatedExponential(scale=us(350.0), cap=ms(17.4)),
        ),
        # Unbound kworkers and blk-mq completions: same mechanics as on
        # A64FX; nothing confines them on OFP.
        SystemTask(
            name="kworker",
            binding=BindingRule.KWORKER_MASK,
            interval=38.0,
            duration=TruncatedExponential(scale=us(30.0), cap=us(266.34)),
        ),
        SystemTask(
            name="blk-mq",
            binding=BindingRule.BLK_MQ_MASK,
            interval=59.5,
            duration=TruncatedExponential(scale=us(47.0), cap=us(387.91)),
        ),
        # sar-class monitoring exists on OFP as well.
        SystemTask(
            name="sar",
            binding=BindingRule.UNSTOPPABLE,
            interval=10.0,
            duration=Uniform(lo=us(25.3), hi=us(50.44)),
            global_effect=True,
        ),
    ]


def timer_tick_task(tick_hz: float = 100.0) -> SystemTask:
    """The periodic scheduler tick — eliminated on app cores by
    ``nohz_full`` but present on every core without it."""
    if tick_hz <= 0:
        raise ConfigurationError("tick_hz must be positive")
    return SystemTask(
        name="timer-tick",
        binding=BindingRule.CGROUP,
        interval=1.0 / tick_hz,
        duration=Fixed(us(2.5)),
    )


def task_by_name(tasks: list[SystemTask], name: str) -> SystemTask:
    for t in tasks:
        if t.name == name:
            return t
    raise ConfigurationError(f"no system task named {name!r}")
