"""Kernel operation cost models.

Every deterministic OS-dependent cost in the performance model is priced
here, so the Linux-vs-McKernel comparison is auditable in one place.
Values are representative microbenchmark magnitudes for the two stacks
(getpid-class syscall latencies, anonymous-fault costs, memset
bandwidth); the paper's results depend on their *ratios* — delegated vs
native syscalls, huge vs base page faults — not the absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..kernel.pagetable import PageKind
from ..units import ns, us


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs of one kernel personality on one platform."""

    name: str
    #: Trap + dispatch + return of a locally-implemented syscall.
    syscall: float
    #: Additional round-trip for a syscall delegated to the Linux proxy
    #: process over IKC (zero for native kernels).
    delegation_overhead: float
    #: Fault handler fixed cost (fault entry, VMA lookup, PTE install).
    fault_fixed: float
    #: Extra fixed cost per fault for huge-page paths (reservation checks,
    #: contiguous-run setup).
    fault_huge_extra: float
    #: Memory zeroing bandwidth for newly-faulted pages, bytes/s.
    zero_bandwidth: float
    #: Process context switch (relevant to oversubscribed runs).
    context_switch: float
    #: ioctl into a device driver (on top of ``syscall``).
    ioctl_extra: float
    #: Memory registration (STAG/verbs) driver work per MiB registered.
    reg_per_mib: float

    def __post_init__(self) -> None:
        for field_name in (
            "syscall", "delegation_overhead", "fault_fixed",
            "fault_huge_extra", "context_switch", "ioctl_extra", "reg_per_mib",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be non-negative")
        if self.zero_bandwidth <= 0:
            raise ConfigurationError("zero_bandwidth must be positive")

    # -- composite prices ---------------------------------------------------

    def syscall_cost(self, delegated: bool = False) -> float:
        """One system call; ``delegated`` adds the IKC round trip."""
        return self.syscall + (self.delegation_overhead if delegated else 0.0)

    def page_fault_cost(self, page_bytes: int, kind: PageKind) -> float:
        """One page fault of ``page_bytes`` at granularity ``kind``,
        including zeroing the page."""
        if page_bytes <= 0:
            raise ConfigurationError("page_bytes must be positive")
        fixed = self.fault_fixed
        if kind is not PageKind.BASE:
            fixed += self.fault_huge_extra
        return fixed + page_bytes / self.zero_bandwidth

    def populate_cost(self, nbytes: int, page_bytes: int, kind: PageKind) -> float:
        """Faulting in ``nbytes`` of fresh memory at one page size."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        n_faults = -(-nbytes // page_bytes) if nbytes else 0
        return n_faults * self.page_fault_cost(page_bytes, kind)

    def registration_cost(self, nbytes: int, delegated: bool,
                          fast_path: bool = False) -> float:
        """RDMA memory registration of ``nbytes``.

        ``fast_path`` models the Tofu PicoDriver (§5.1): the ioctl trap
        and delegation disappear because the LWK performs registration
        directly; only the per-MiB pinning work remains.
        """
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        work = (nbytes / (1024 * 1024)) * self.reg_per_mib
        if fast_path:
            return work
        return self.syscall_cost(delegated) + self.ioctl_extra + work


#: Linux on A64FX / KNL.  RHEL-class numbers: ~600 ns syscall (with
#: mitigations), ~1.1 us anonymous fault, ~12 GB/s single-core memset.
LINUX_COSTS = CostModel(
    name="linux",
    syscall=ns(600.0),
    delegation_overhead=0.0,
    fault_fixed=us(1.1),
    fault_huge_extra=us(1.8),
    zero_bandwidth=12e9,
    context_switch=us(1.8),
    ioctl_extra=us(1.2),
    reg_per_mib=us(18.0),
)

#: McKernel.  Locally-implemented syscalls and the fault path are leaner
#: (purpose-built memory manager, no cgroup/LRU bookkeeping); everything
#: else pays the ~2.6 us IKC delegation round trip measured for
#: IHK/McKernel-class offloading.
MCKERNEL_COSTS = CostModel(
    name="mckernel",
    syscall=ns(280.0),
    delegation_overhead=us(2.6),
    fault_fixed=ns(550.0),
    fault_huge_extra=ns(700.0),
    zero_bandwidth=12e9,
    context_switch=us(0.9),
    ioctl_extra=us(1.2),
    reg_per_mib=us(18.0),
)
