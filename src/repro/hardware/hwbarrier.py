"""A64FX hardware barrier (§4.1.5).

The A64FX provides in-silicon barrier registers that synchronise
threads/processes within a node far faster than a software (shared
memory) barrier tree.  Fugaku's OpenMP runtime uses it; this module
models the latency difference and exposes a functional barrier object
that the DES-level runtime can use.

Barrier windows are a finite hardware resource (the A64FX provides a
small number of barrier-blade registers per CMG); allocation is modelled
so that over-subscription falls back to software barriers, which is what
the real runtime does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError, ResourceError
from ..units import ns, us


@dataclass(frozen=True)
class BarrierSpec:
    """Latency parameters for intra-node synchronisation."""

    #: Latency of one hardware-barrier synchronisation, seconds.
    hw_latency: float = ns(200.0)
    #: Per-level latency of a software barrier tree, seconds.
    sw_hop_latency: float = ns(450.0)
    #: Hardware barrier windows available per node.
    windows: int = 8

    def __post_init__(self) -> None:
        if self.hw_latency <= 0 or self.sw_hop_latency <= 0:
            raise ConfigurationError("latencies must be positive")
        if self.windows < 0:
            raise ConfigurationError("windows must be non-negative")

    def sw_latency(self, n_threads: int) -> float:
        """Software tree barrier: ceil(log2(n)) hop levels."""
        if n_threads <= 0:
            raise ConfigurationError("n_threads must be positive")
        if n_threads == 1:
            return 0.0
        return math.ceil(math.log2(n_threads)) * self.sw_hop_latency


class HardwareBarrierAllocator:
    """Tracks hardware barrier window allocation on one node."""

    def __init__(self, spec: BarrierSpec) -> None:
        self.spec = spec
        self._allocated: dict[int, int] = {}  # window id -> n_threads
        self._next_id = 0

    @property
    def available(self) -> int:
        return self.spec.windows - len(self._allocated)

    def allocate(self, n_threads: int) -> int:
        """Reserve a window for a thread team; returns the window id."""
        if n_threads <= 0:
            raise ConfigurationError("n_threads must be positive")
        if self.available <= 0:
            raise ResourceError("no free hardware barrier windows")
        wid = self._next_id
        self._next_id += 1
        self._allocated[wid] = n_threads
        return wid

    def release(self, window_id: int) -> None:
        if window_id not in self._allocated:
            raise ResourceError(f"barrier window {window_id} not allocated")
        del self._allocated[window_id]

    def sync_latency(self, window_id: int | None, n_threads: int) -> float:
        """Latency of one barrier: hardware if a window is held, else the
        software tree fallback."""
        if window_id is not None:
            if window_id not in self._allocated:
                raise ResourceError(f"barrier window {window_id} not allocated")
            return self.spec.hw_latency
        return self.spec.sw_latency(n_threads)


#: A64FX: HW barrier present.
A64FX_BARRIER = BarrierSpec(hw_latency=ns(200.0), sw_hop_latency=ns(450.0), windows=8)

#: KNL: no hardware barrier — zero windows forces the software path.
KNL_BARRIER = BarrierSpec(hw_latency=us(1.0), sw_hop_latency=ns(600.0), windows=0)
