"""Memory bandwidth sharing: the §4.2.2 "hardware sharing" channel.

"Such interference may occur due to the fact that memory bandwidth to
the main memory and/or to the last level cache are shared by multiple
CPU cores."  This module models that channel for the NUMA domains of a
node: consumers register their streaming demand against a domain; once
aggregate demand exceeds the domain's bandwidth, everyone on it stalls
proportionally.

The model is per-domain because both machines localise traffic:
A64FX's CMG-local HBM2 stacks and KNL's quadrant mode both mean a
well-bound rank only contends with its domain's co-tenants — exactly
why NUMA-aware binding (§4.1.4) and virtual NUMA nodes (§4.1.2) matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .numa import NumaDomain, NumaLayout


@dataclass
class _DomainLoad:
    demands: dict[str, float] = field(default_factory=dict)

    def total(self) -> float:
        return sum(self.demands.values())


class BandwidthModel:
    """Tracks streaming demand per NUMA domain and prices the stalls."""

    def __init__(self, layout: NumaLayout) -> None:
        self.layout = layout
        self._loads: dict[int, _DomainLoad] = {
            d.node_id: _DomainLoad() for d in layout
        }

    # -- demand registration ---------------------------------------------

    def register(self, consumer: str, node_id: int,
                 bytes_per_second: float) -> None:
        """Declare a consumer's steady streaming demand on a domain."""
        if bytes_per_second < 0:
            raise ConfigurationError("demand must be non-negative")
        self.layout.domain(node_id)  # validates
        self._loads[node_id].demands[consumer] = bytes_per_second

    def unregister(self, consumer: str, node_id: int) -> None:
        load = self._loads.get(node_id)
        if load is None or consumer not in load.demands:
            raise ConfigurationError(
                f"{consumer!r} has no demand on node {node_id}"
            )
        del load.demands[consumer]

    # -- derived quantities -----------------------------------------------

    def saturation(self, node_id: int) -> float:
        """Aggregate demand / domain bandwidth (can exceed 1)."""
        domain = self.layout.domain(node_id)
        return self._loads[node_id].total() / domain.bandwidth

    def slowdown(self, node_id: int) -> float:
        """Stall multiplier (>= 1) every consumer on the domain sees.

        Below saturation the fabric absorbs the demand; above it,
        achieved bandwidth scales down by the oversubscription ratio, so
        a streaming phase takes ``saturation`` times longer.
        """
        return max(1.0, self.saturation(node_id))

    def achieved_bandwidth(self, consumer: str, node_id: int) -> float:
        """Fair-share bandwidth the consumer actually gets."""
        load = self._loads[node_id]
        demand = load.demands.get(consumer)
        if demand is None:
            raise ConfigurationError(
                f"{consumer!r} has no demand on node {node_id}"
            )
        return demand / self.slowdown(node_id)

    def effective_stream_time(self, consumer: str, node_id: int,
                              nbytes: int) -> float:
        """Seconds for the consumer to stream ``nbytes`` under the
        current contention."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        bw = self.achieved_bandwidth(consumer, node_id)
        if bw <= 0:
            raise ConfigurationError("consumer declared zero demand")
        return nbytes / bw


def rank_bandwidth_demand(refs_per_second: float,
                          bytes_per_ref: float = 64.0) -> float:
    """Convert an application profile's reference rate to bytes/s of
    memory traffic (one cache line per off-chip reference)."""
    if refs_per_second < 0 or bytes_per_ref <= 0:
        raise ConfigurationError("invalid reference traffic parameters")
    return refs_per_second * bytes_per_ref
