"""CPU topology: physical cores, SMT hardware threads, core groups.

The paper's two processors differ in exactly the attributes modelled here:

* Intel Xeon Phi 7250 (Oakforest-PACS): 68 physical cores, 4-way SMT,
  272 logical CPUs, tiles of 2 cores sharing an L2.
* Fujitsu A64FX (Fugaku): 48 application + 2-4 assistant cores, no SMT,
  organised as 4 Core Memory Groups (CMGs) of 12 application cores.

Logical CPU numbering follows Linux convention: logical CPU ids are
dense ``0..n-1``; each maps to (physical core, SMT thread index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class LogicalCpu:
    """One schedulable hardware thread."""

    cpu_id: int
    core_id: int
    smt_index: int
    group_id: int  # CMG on A64FX, quadrant/tile group on KNL
    is_assistant: bool = False  # dedicated OS/system core (A64FX)


class CpuTopology:
    """Immutable description of a node's CPU complex.

    Parameters
    ----------
    physical_cores:
        Total physical cores, including assistant cores.
    smt:
        Hardware threads per core (1 = no SMT).
    cores_per_group:
        Physical cores per NUMA-adjacent group (CMG / quadrant slice).
        Assistant cores live outside the groups.
    assistant_cores:
        Number of physical cores reserved by the platform for system use
        (0 when the platform has no such notion, e.g. KNL).
    """

    def __init__(
        self,
        physical_cores: int,
        smt: int = 1,
        cores_per_group: int | None = None,
        assistant_cores: int = 0,
    ) -> None:
        if physical_cores <= 0 or smt <= 0:
            raise ConfigurationError("physical_cores and smt must be positive")
        if assistant_cores < 0 or assistant_cores >= physical_cores:
            raise ConfigurationError(
                f"assistant_cores={assistant_cores} out of range for "
                f"{physical_cores} cores"
            )
        app_cores = physical_cores - assistant_cores
        if cores_per_group is None:
            cores_per_group = app_cores
        if cores_per_group <= 0 or app_cores % cores_per_group != 0:
            raise ConfigurationError(
                f"{app_cores} application cores not divisible into groups "
                f"of {cores_per_group}"
            )
        self.physical_cores = physical_cores
        self.smt = smt
        self.cores_per_group = cores_per_group
        self.assistant_cores = assistant_cores
        self.n_groups = app_cores // cores_per_group

        # Assistant cores get the lowest core ids (mirrors Fugaku, where
        # cores 0-1 are the assistant cores and IRQs are steered to them).
        cpus: list[LogicalCpu] = []
        cpu_id = 0
        for smt_index in range(smt):
            for core_id in range(physical_cores):
                is_assist = core_id < assistant_cores
                if is_assist:
                    group = -1
                else:
                    group = (core_id - assistant_cores) // cores_per_group
                cpus.append(
                    LogicalCpu(
                        cpu_id=cpu_id,
                        core_id=core_id,
                        smt_index=smt_index,
                        group_id=group,
                        is_assistant=is_assist,
                    )
                )
                cpu_id += 1
        self._cpus: tuple[LogicalCpu, ...] = tuple(cpus)

    # -- basic queries --------------------------------------------------

    @property
    def logical_cpus(self) -> int:
        return len(self._cpus)

    def cpu(self, cpu_id: int) -> LogicalCpu:
        try:
            return self._cpus[cpu_id]
        except IndexError:
            raise ConfigurationError(
                f"cpu id {cpu_id} out of range 0..{self.logical_cpus - 1}"
            ) from None

    def __iter__(self) -> Iterator[LogicalCpu]:
        return iter(self._cpus)

    def __len__(self) -> int:
        return self.logical_cpus

    # -- partition helpers -----------------------------------------------

    def assistant_cpu_ids(self) -> list[int]:
        """Logical CPUs on assistant (system) cores."""
        return [c.cpu_id for c in self._cpus if c.is_assistant]

    def application_cpu_ids(self) -> list[int]:
        """Logical CPUs on application cores."""
        return [c.cpu_id for c in self._cpus if not c.is_assistant]

    def group_cpu_ids(self, group_id: int) -> list[int]:
        """Logical CPUs belonging to one core group (CMG)."""
        if not 0 <= group_id < self.n_groups:
            raise ConfigurationError(
                f"group {group_id} out of range 0..{self.n_groups - 1}"
            )
        return [c.cpu_id for c in self._cpus if c.group_id == group_id]

    def siblings(self, cpu_id: int) -> list[int]:
        """All logical CPUs sharing the physical core of ``cpu_id``
        (including itself) — i.e. SMT siblings."""
        core = self.cpu(cpu_id).core_id
        return [c.cpu_id for c in self._cpus if c.core_id == core]

    def validate_cpu_set(self, cpu_ids: Sequence[int]) -> frozenset[int]:
        """Validate and normalise a CPU set, raising on unknown ids or
        duplicates."""
        seen: set[int] = set()
        for cid in cpu_ids:
            self.cpu(cid)  # range check
            if cid in seen:
                raise ConfigurationError(f"duplicate cpu id {cid} in cpu set")
            seen.add(cid)
        return frozenset(seen)

    def __repr__(self) -> str:
        return (
            f"CpuTopology(cores={self.physical_cores}, smt={self.smt}, "
            f"groups={self.n_groups}x{self.cores_per_group}, "
            f"assistant={self.assistant_cores})"
        )
