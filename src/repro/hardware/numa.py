"""NUMA domains and the Fugaku *virtual NUMA node* technique (§4.1.2).

Two layers are modelled:

* **Physical NUMA**: memory controllers with distinct kinds and sizes
  (MCDRAM vs DDR4 on KNL in flat mode; four HBM2 stacks, one per CMG,
  on A64FX).
* **Virtual NUMA nodes**: Fugaku firmware splits the physical address
  space into *system* and *application* areas exposed as separate NUMA
  domains, so that non-application allocations can never fragment
  application memory.  We model this as a partitioning of each physical
  domain into sub-domains tagged with a :class:`NumaRole`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError


class MemoryKind(enum.Enum):
    """Technology of a memory domain (affects bandwidth/latency model)."""

    DDR4 = "ddr4"
    MCDRAM = "mcdram"
    HBM2 = "hbm2"


class NumaRole(enum.Enum):
    """Who may allocate from a domain."""

    GENERAL = "general"        # anyone (no virtual-NUMA split)
    SYSTEM = "system"          # OS daemons, kernel allocations
    APPLICATION = "application"  # user jobs only


@dataclass(frozen=True)
class NumaDomain:
    """One NUMA memory domain visible to the kernel."""

    node_id: int
    kind: MemoryKind
    size_bytes: int
    role: NumaRole = NumaRole.GENERAL
    #: Core group (CMG) this domain is local to; -1 = interleaved/far.
    group_id: int = -1
    #: Stream bandwidth in bytes/s (used by the memory cost model).
    bandwidth: float = 100e9
    #: Idle load-to-use latency in seconds.
    latency: float = 90e-9

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("NUMA domain size must be positive")
        if self.bandwidth <= 0 or self.latency <= 0:
            raise ConfigurationError("bandwidth and latency must be positive")


class NumaLayout:
    """The set of NUMA domains of one node plus lookup helpers."""

    def __init__(self, domains: Sequence[NumaDomain]) -> None:
        if not domains:
            raise ConfigurationError("a node needs at least one NUMA domain")
        ids = [d.node_id for d in domains]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate NUMA node ids: {ids}")
        self.domains: tuple[NumaDomain, ...] = tuple(
            sorted(domains, key=lambda d: d.node_id)
        )

    def __iter__(self):
        return iter(self.domains)

    def __len__(self) -> int:
        return len(self.domains)

    def domain(self, node_id: int) -> NumaDomain:
        for d in self.domains:
            if d.node_id == node_id:
                return d
        raise ConfigurationError(f"no NUMA node {node_id}")

    def total_bytes(self) -> int:
        return sum(d.size_bytes for d in self.domains)

    def by_role(self, role: NumaRole) -> list[NumaDomain]:
        return [d for d in self.domains if d.role == role]

    def application_bytes(self) -> int:
        """Memory usable by applications (APPLICATION + GENERAL roles)."""
        return sum(
            d.size_bytes
            for d in self.domains
            if d.role in (NumaRole.APPLICATION, NumaRole.GENERAL)
        )

    def local_domain(self, group_id: int, role: NumaRole) -> NumaDomain:
        """The domain local to core group ``group_id`` with role ``role``
        (falling back to GENERAL if no split is configured)."""
        for d in self.domains:
            if d.group_id == group_id and d.role == role:
                return d
        for d in self.domains:
            if d.group_id == group_id and d.role == NumaRole.GENERAL:
                return d
        raise ConfigurationError(
            f"no NUMA domain local to group {group_id} with role {role}"
        )


def split_virtual_numa(
    domains: Sequence[NumaDomain], system_fraction: float
) -> NumaLayout:
    """Apply the Fugaku virtual-NUMA firmware split to a physical layout.

    Every GENERAL domain is replaced by a SYSTEM sub-domain holding
    ``system_fraction`` of its capacity and an APPLICATION sub-domain
    holding the rest.  Node ids are renumbered densely with application
    domains first (mirroring Fugaku, where applications see nodes 4-7).
    """
    if not 0.0 < system_fraction < 1.0:
        raise ConfigurationError(
            f"system_fraction must be in (0,1), got {system_fraction}"
        )
    app: list[NumaDomain] = []
    sys_: list[NumaDomain] = []
    for d in domains:
        if d.role != NumaRole.GENERAL:
            raise ConfigurationError(
                "virtual NUMA split applies to GENERAL domains only"
            )
        sys_bytes = int(d.size_bytes * system_fraction)
        app_bytes = d.size_bytes - sys_bytes
        app.append(
            NumaDomain(
                node_id=-1, kind=d.kind, size_bytes=app_bytes,
                role=NumaRole.APPLICATION, group_id=d.group_id,
                bandwidth=d.bandwidth, latency=d.latency,
            )
        )
        sys_.append(
            NumaDomain(
                node_id=-1, kind=d.kind, size_bytes=sys_bytes,
                role=NumaRole.SYSTEM, group_id=d.group_id,
                bandwidth=d.bandwidth, latency=d.latency,
            )
        )
    renumbered = [
        NumaDomain(
            node_id=i, kind=d.kind, size_bytes=d.size_bytes, role=d.role,
            group_id=d.group_id, bandwidth=d.bandwidth, latency=d.latency,
        )
        for i, d in enumerate(app + sys_)
    ]
    return NumaLayout(renumbered)
