"""A64FX sector cache: way-partitioning of the L2 between system and
application traffic (§4.2, "CPU caches").

The A64FX L2 is 8 MiB per CMG, 16-way.  The *sector cache* feature lets
software assign cache ways to sectors; Fugaku assigns one sector to the
assistant (system) cores and one to the application cores so OS activity
cannot evict application data.

We model the capacity effect only: a partition changes the effective L2
size seen by each side, which feeds the memory cost model.  Replacement-
policy detail is irrelevant at the granularity of the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CacheSpec:
    """Static geometry of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 256  # A64FX uses 256-byte L2 lines

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache geometry must be positive")
        if self.size_bytes % self.ways != 0:
            raise ConfigurationError("cache size must divide evenly into ways")

    @property
    def way_bytes(self) -> int:
        return self.size_bytes // self.ways


class SectorCache:
    """Way-partitioned cache with two sectors: system and application."""

    def __init__(self, spec: CacheSpec, system_ways: int = 0) -> None:
        self.spec = spec
        self.set_partition(system_ways)

    def set_partition(self, system_ways: int) -> None:
        """Assign ``system_ways`` ways to the system sector (0 disables
        partitioning: everyone shares the full cache)."""
        if not 0 <= system_ways < self.spec.ways:
            raise ConfigurationError(
                f"system_ways={system_ways} must be in [0, {self.spec.ways})"
            )
        self.system_ways = system_ways

    @property
    def partitioned(self) -> bool:
        return self.system_ways > 0

    def effective_size(self, is_system: bool) -> int:
        """Cache capacity visible to one side under the current partition."""
        if not self.partitioned:
            return self.spec.size_bytes
        ways = self.system_ways if is_system else self.spec.ways - self.system_ways
        return ways * self.spec.way_bytes

    def pollution_factor(self, system_traffic_fraction: float) -> float:
        """Multiplier (>= 1) on application memory-stall time caused by
        system-side cache pollution.

        With the sector cache enabled the factor is exactly 1 (perfect
        isolation).  Without it, system traffic evicts application lines
        in proportion to its share of fills.
        """
        if not 0.0 <= system_traffic_fraction <= 1.0:
            raise ConfigurationError(
                "system_traffic_fraction must be in [0, 1]"
            )
        if self.partitioned:
            return 1.0
        return 1.0 + system_traffic_fraction


#: A64FX L2: 8 MiB, 16-way, per CMG.
A64FX_L2 = CacheSpec(size_bytes=8 * 1024 * 1024, ways=16)

#: KNL tile L2: 1 MiB, 16-way, shared by 2 cores (no sector feature).
KNL_L2 = CacheSpec(size_bytes=1024 * 1024, ways=16, line_bytes=64)
