"""Machine configurations: Oakforest-PACS, Fugaku, and the in-house
16-node A64FX testbed (Table 1 plus §6.3).

A :class:`Machine` bundles a node design with a system-level description
(node count, interconnect).  Nothing here is behavioural — behaviour
lives in the kernel/noise/net layers — so these objects are cheap and
safely shareable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError
from ..units import gib
from .cache import A64FX_L2, KNL_L2, CacheSpec
from .hwbarrier import A64FX_BARRIER, KNL_BARRIER, BarrierSpec
from .numa import MemoryKind, NumaDomain, NumaLayout, NumaRole
from .tlb import A64FX_TLB, KNL_TLB, TlbSpec
from .topology import CpuTopology


@dataclass(frozen=True)
class NodeSpec:
    """Everything that describes one compute node's hardware."""

    name: str
    arch: str  # "x86_64" or "aarch64"
    topology: CpuTopology
    numa: NumaLayout
    tlb: TlbSpec
    l2: CacheSpec
    barrier: BarrierSpec
    #: Base (smallest) page size the OS uses on this node, bytes.
    base_page_size: int
    #: Peak per-core compute throughput used to express the paper's
    #: workloads in seconds (double-precision flop/s per core).
    flops_per_core: float

    def __post_init__(self) -> None:
        if self.base_page_size <= 0:
            raise ConfigurationError("base_page_size must be positive")
        if self.flops_per_core <= 0:
            raise ConfigurationError("flops_per_core must be positive")


@dataclass(frozen=True)
class Machine:
    """A full system: node design replicated ``n_nodes`` times."""

    name: str
    node: NodeSpec
    n_nodes: int
    interconnect: str
    peak_pflops: float

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")

    @property
    def total_app_hw_threads(self) -> int:
        """HW threads available to applications across the machine."""
        return self.n_nodes * len(self.node.topology.application_cpu_ids())

    def scaled(self, n_nodes: int) -> "Machine":
        """Same machine at a different node count (sub-partition runs)."""
        if not 1 <= n_nodes <= self.n_nodes:
            raise ConfigurationError(
                f"cannot scale {self.name} to {n_nodes} nodes "
                f"(machine has {self.n_nodes})"
            )
        return replace(self, n_nodes=n_nodes)


def _knl_node() -> NodeSpec:
    """Xeon Phi 7250 node as deployed in OFP (Quadrant flat mode)."""
    topo = CpuTopology(physical_cores=68, smt=4, cores_per_group=17,
                       assistant_cores=0)
    numa = NumaLayout(
        [
            NumaDomain(node_id=0, kind=MemoryKind.DDR4, size_bytes=gib(96),
                       role=NumaRole.GENERAL, group_id=-1,
                       bandwidth=90e9, latency=130e-9),
            NumaDomain(node_id=1, kind=MemoryKind.MCDRAM, size_bytes=gib(16),
                       role=NumaRole.GENERAL, group_id=-1,
                       bandwidth=450e9, latency=150e-9),
        ]
    )
    return NodeSpec(
        name="Intel Xeon Phi 7250 (KNL)",
        arch="x86_64",
        topology=topo,
        numa=numa,
        tlb=KNL_TLB,
        l2=KNL_L2,
        barrier=KNL_BARRIER,
        base_page_size=4 * 1024,
        # 3.05 TF/node over 68 cores.
        flops_per_core=3.05e12 / 68,
    )


def _a64fx_node(cores: int = 50) -> NodeSpec:
    """A64FX node; ``cores`` is 50 or 52 (2 or 4 assistant cores)."""
    if cores not in (50, 52):
        raise ConfigurationError("A64FX nodes have 50 or 52 cores")
    topo = CpuTopology(physical_cores=cores, smt=1, cores_per_group=12,
                       assistant_cores=cores - 48)
    # Four HBM2 stacks of 8 GiB, one local to each CMG.
    numa = NumaLayout(
        [
            NumaDomain(node_id=g, kind=MemoryKind.HBM2, size_bytes=gib(8),
                       role=NumaRole.GENERAL, group_id=g,
                       bandwidth=256e9, latency=120e-9)
            for g in range(4)
        ]
    )
    return NodeSpec(
        name=f"Fujitsu A64FX ({cores} cores)",
        arch="aarch64",
        topology=topo,
        numa=numa,
        tlb=A64FX_TLB,
        l2=A64FX_L2,
        barrier=A64FX_BARRIER,
        base_page_size=64 * 1024,  # RHEL aarch64 uses 64 KiB base pages
        # 3.38 TF/node (dp, boost off) over 48 app cores.
        flops_per_core=3.38e12 / 48,
    )


def oakforest_pacs() -> Machine:
    """Oakforest-PACS: 8,192 KNL nodes on Intel Omni-Path (Table 1)."""
    return Machine(
        name="Oakforest-PACS",
        node=_knl_node(),
        n_nodes=8192,
        interconnect="Intel OmniPath",
        peak_pflops=25.0,
    )


def fugaku(cores: int = 50) -> Machine:
    """Fugaku: 158,976 A64FX nodes on Fujitsu TofuD (Table 1)."""
    return Machine(
        name="Fugaku",
        node=_a64fx_node(cores),
        n_nodes=158976,
        interconnect="Fujitsu TofuD",
        peak_pflops=488.0,
    )


def a64fx_testbed() -> Machine:
    """The in-house 16-node A64FX system used for Table 2 / Figure 3
    (identical HW/SW environment to Fugaku, §6.3)."""
    return Machine(
        name="A64FX-testbed",
        node=_a64fx_node(50),
        n_nodes=16,
        interconnect="Fujitsu TofuD",
        peak_pflops=488.0 * 16 / 158976,
    )


#: Nodes per Fugaku rack (158,976 nodes / 432 racks = 384 — used for the
#: paper's "24 racks" = 9,216-node partitions).
NODES_PER_RACK = 384


def fugaku_racks(racks: int) -> Machine:
    """A ``racks``-rack Fugaku partition (24 racks in the paper)."""
    if racks <= 0:
        raise ConfigurationError("racks must be positive")
    return fugaku().scaled(racks * NODES_PER_RACK)
