"""Hardware models: CPU topology, NUMA, TLB, caches, barriers, machines."""

from .cache import A64FX_L2, KNL_L2, CacheSpec, SectorCache
from .hwbarrier import (
    A64FX_BARRIER,
    KNL_BARRIER,
    BarrierSpec,
    HardwareBarrierAllocator,
)
from .membw import BandwidthModel, rank_bandwidth_demand
from .machines import (
    Machine,
    NodeSpec,
    NODES_PER_RACK,
    a64fx_testbed,
    fugaku,
    fugaku_racks,
    oakforest_pacs,
)
from .numa import (
    MemoryKind,
    NumaDomain,
    NumaLayout,
    NumaRole,
    split_virtual_numa,
)
from .tlb import A64FX_TLB, KNL_TLB, TlbFlushMode, TlbModel, TlbSpec
from .topology import CpuTopology, LogicalCpu

__all__ = [
    "BandwidthModel",
    "rank_bandwidth_demand",
    "CacheSpec",
    "SectorCache",
    "A64FX_L2",
    "KNL_L2",
    "BarrierSpec",
    "HardwareBarrierAllocator",
    "A64FX_BARRIER",
    "KNL_BARRIER",
    "Machine",
    "NodeSpec",
    "NODES_PER_RACK",
    "a64fx_testbed",
    "fugaku",
    "fugaku_racks",
    "oakforest_pacs",
    "MemoryKind",
    "NumaDomain",
    "NumaLayout",
    "NumaRole",
    "split_virtual_numa",
    "TlbSpec",
    "TlbModel",
    "TlbFlushMode",
    "A64FX_TLB",
    "KNL_TLB",
    "CpuTopology",
    "LogicalCpu",
]
