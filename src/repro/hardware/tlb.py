"""TLB model: capacity, reach, miss cost, and flush semantics.

Table 1 of the paper records the attribute this module exists for:
Xeon Phi has 64 last-level TLB entries, A64FX has 1,024.  Combined with
page size this determines *TLB reach* and thus the page-fault/TLB-miss
cost of an application's working set.

Section 4.2.2 describes the A64FX-specific problem we also model: the
ARM64 ``TLBI`` instruction can invalidate in the whole Inner-Shareable
domain (all cores); on A64FX one broadcast TLBI delays *every other
core* by about 200 ns, and memory-release paths can issue hundreds to
thousands of consecutive TLBIs — i.e. hundreds of microseconds of noise
on cores that did nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import ns


class TlbFlushMode(enum.Enum):
    """How remote TLB invalidation is carried out."""

    BROADCAST = "broadcast"      # ARM64 TLBI IS: one instruction, hits all cores
    IPI = "ipi"                  # x86-style: IPI + local flush on each target
    LOCAL_ONLY = "local_only"    # RHEL 8.2 patch: single-core processes flush locally


@dataclass(frozen=True)
class TlbSpec:
    """Static TLB parameters of a CPU."""

    l1_entries: int
    l2_entries: int
    #: Penalty of one L2 TLB miss (page-table walk), seconds.
    miss_cost: float
    #: Delay inflicted on *each other core* by one broadcast TLBI, seconds.
    broadcast_victim_cost: float
    #: Cost on the issuing core of one TLBI / local invalidate, seconds.
    local_flush_cost: float
    #: Cost of one IPI round-trip for software shootdown, seconds.
    ipi_cost: float

    def __post_init__(self) -> None:
        if self.l1_entries <= 0 or self.l2_entries <= 0:
            raise ConfigurationError("TLB entry counts must be positive")
        for f in (self.miss_cost, self.broadcast_victim_cost,
                  self.local_flush_cost, self.ipi_cost):
            if f < 0:
                raise ConfigurationError("TLB costs must be non-negative")

    def reach_bytes(self, page_size: int) -> int:
        """Address-space coverage of the last-level TLB at ``page_size``."""
        if page_size <= 0:
            raise ConfigurationError("page size must be positive")
        return self.l2_entries * page_size


#: A64FX TLB: 16 L1 / 1,024 L2 entries (Table 1); 200 ns broadcast victim
#: penalty (§4.2.2 measurement).  Walk and IPI costs use typical aarch64
#: figures from the A64FX microarchitecture manual's latency tables.
A64FX_TLB = TlbSpec(
    l1_entries=16,
    l2_entries=1024,
    miss_cost=ns(170.0),
    broadcast_victim_cost=ns(200.0),
    local_flush_cost=ns(25.0),
    ipi_cost=ns(2000.0),
)

#: Knights Landing TLB: 64 L1 / 64 L2 entries (Table 1).  KNL (x86) has
#: no broadcast TLBI — remote shootdown is always IPI-based.
KNL_TLB = TlbSpec(
    l1_entries=64,
    l2_entries=64,
    miss_cost=ns(135.0),
    broadcast_victim_cost=0.0,
    local_flush_cost=ns(40.0),
    ipi_cost=ns(2500.0),
)


class TlbModel:
    """Cost calculator for TLB traffic under a given flush mode.

    The model is intentionally analytic (no per-access simulation): the
    experiments only need the aggregate miss cost of a working set and
    the interference profile of flush storms.
    """

    def __init__(self, spec: TlbSpec, flush_mode: TlbFlushMode) -> None:
        self.spec = spec
        self.flush_mode = flush_mode

    # -- miss-side ------------------------------------------------------

    def miss_rate(self, working_set: int, page_size: int,
                  locality: float = 0.9) -> float:
        """Fraction of memory references missing the last-level TLB.

        Simple fractional-coverage model: references hitting the covered
        fraction of the working set (plus a ``locality`` reuse bonus on
        the uncovered part) do not miss.  Exact TLB simulation would need
        a trace; coverage captures the paper-relevant effect that huge
        pages * big TLB => near-zero misses on A64FX.
        """
        if working_set <= 0:
            return 0.0
        if not 0.0 <= locality < 1.0:
            raise ConfigurationError("locality must be in [0, 1)")
        reach = self.spec.reach_bytes(page_size)
        uncovered = max(0.0, 1.0 - reach / working_set)
        return uncovered * (1.0 - locality)

    def miss_overhead(self, working_set: int, page_size: int,
                      refs_per_second: float, locality: float = 0.9) -> float:
        """Seconds of page-walk time per second of execution."""
        return (
            self.miss_rate(working_set, page_size, locality)
            * refs_per_second
            * self.spec.miss_cost
        )

    # -- flush-side -------------------------------------------------------

    def shootdown_cost(self, n_flushes: int, n_target_cores: int,
                       threads_on_one_core: bool = False) -> float:
        """Issuing-core cost of invalidating ``n_flushes`` entries on
        ``n_target_cores`` remote cores."""
        if n_flushes < 0 or n_target_cores < 0:
            raise ConfigurationError("counts must be non-negative")
        s = self.spec
        if self.flush_mode is TlbFlushMode.LOCAL_ONLY and threads_on_one_core:
            # The RHEL 8.2 patch: single-core processes use non-broadcast
            # TLBI; remote cores are untouched.
            return n_flushes * s.local_flush_cost
        if self.flush_mode is TlbFlushMode.IPI:
            # One IPI round per target core, flushes batched per core.
            return n_target_cores * s.ipi_cost + n_flushes * s.local_flush_cost
        # Broadcast: the instruction itself is cheap for the issuer.
        return n_flushes * s.local_flush_cost

    def victim_delay(self, n_flushes: int,
                     threads_on_one_core: bool = False) -> float:
        """Delay inflicted on each *other* core of the chip by a flush
        storm of ``n_flushes`` invalidations.  This is the §4.2.2 noise:
        200 ns per TLBI, hundreds of microseconds for storms."""
        if n_flushes < 0:
            raise ConfigurationError("n_flushes must be non-negative")
        if self.flush_mode is TlbFlushMode.LOCAL_ONLY and threads_on_one_core:
            return 0.0
        if self.flush_mode is TlbFlushMode.BROADCAST:
            return n_flushes * self.spec.broadcast_victim_cost
        return 0.0  # IPI mode only disturbs explicit targets

    def storm_victim_delays(
        self, storm_sizes: np.ndarray, threads_on_one_core: bool = False
    ) -> np.ndarray:
        """Vectorized :meth:`victim_delay` over an array of storm sizes."""
        sizes = np.asarray(storm_sizes, dtype=float)
        if self.flush_mode is TlbFlushMode.LOCAL_ONLY and threads_on_one_core:
            return np.zeros_like(sizes)
        if self.flush_mode is TlbFlushMode.BROADCAST:
            return sizes * self.spec.broadcast_victim_cost
        return np.zeros_like(sizes)
