"""Declarative fault scenarios: :class:`FaultSpec`.

The paper's production story (§4, §6) is inseparable from failure:
Fugaku's 158,976 nodes make component failures, OOM kills and stuck
daemons routine, and §6's lessons-learned attribute McKernel's limited
production adoption largely to reliability at that scale.  A
:class:`FaultSpec` names a failure environment as *data* — per-node
MTBF, cgroup OOM-kill rate, IKC drop probability, proxy-crash and
daemon-stall rates — plus the tolerance policy that reacts to it
(bounded retries with exponential backoff, optional periodic
checkpointing).

Like every other spec in this package family it is frozen, validated
at construction, and JSON-round-trippable; as an optional field of
:class:`~repro.platform.spec.PlatformSpec` it is part of the canonical
JSON (and therefore of the run-cache key) *only when active*, so every
pre-existing spec, fingerprint and golden output is byte-identical to
the fault-free world.

Rates are expressed per node-hour so that failure exposure scales with
job size × walltime, the way real cluster reliability budgets are
written: a per-node MTBF of 100,000 h gives an aggregate failure rate
of ``n_nodes / 100000`` per hour, which is negligible on a 16-node
testbed and dominant on a full pre-exascale machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from ..errors import ConfigurationError

#: Field name -> (kind, human description) for validation/docs.
_RATE_FIELDS = (
    "node_mtbf_hours",
    "oom_per_node_hour",
    "proxy_crash_per_node_hour",
    "daemon_stall_per_node_hour",
)


@dataclass(frozen=True)
class FaultSpec:
    """One failure environment plus its tolerance policy.

    The default instance (== :meth:`none`) injects nothing: every rate
    and probability is zero, so all behaviour is byte-identical to a
    simulator without fault support.
    """

    # -- fault sources ------------------------------------------------
    #: Per-node mean time between failures, hours; 0 disables node
    #: failures.  Aggregate job failure rate is ``n_nodes / mtbf``.
    node_mtbf_hours: float = 0.0
    #: Cgroup OOM kills per node-hour (the §4.1.3 memcg limit firing).
    oom_per_node_hour: float = 0.0
    #: Proxy-process crashes per node-hour (McKernel jobs only: the
    #: Linux-side twin dies and takes the delegated state with it).
    proxy_crash_per_node_hour: float = 0.0
    #: System-daemon stalls per node-hour (Linux jobs only: McKernel's
    #: LWK runs no daemons, §2).  Non-fatal; each stall adds
    #: ``daemon_stall_seconds`` to the job's walltime.
    daemon_stall_per_node_hour: float = 0.0
    #: Walltime added per daemon stall, seconds.
    daemon_stall_seconds: float = 30.0
    #: Probability an IKC message is dropped in flight (per delivery).
    ikc_drop_prob: float = 0.0
    #: Re-delivery wait after a detected IKC drop, seconds.
    ikc_timeout: float = 5e-5
    #: Re-delivery attempts before an IKC send times out for good.
    ikc_max_redeliveries: int = 3

    # -- tolerance policy ---------------------------------------------
    #: Restart attempts after a fatal fault before a job is FAILED.
    max_retries: int = 3
    #: First retry backoff, seconds.
    backoff_base: float = 30.0
    #: Multiplier applied per additional retry (exponential backoff).
    backoff_factor: float = 2.0
    #: Checkpoint period in payload seconds; 0 disables checkpointing
    #: (a failed attempt then loses all its progress).
    checkpoint_interval: float = 0.0
    #: Walltime cost of writing one checkpoint, seconds.
    checkpoint_cost: float = 0.0
    #: Root seed of the fault streams (independent of the run seed so
    #: A/B comparisons can hold the fault schedule fixed).
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"faults.{name}: expected number, got {value!r}")
            if value < 0:
                raise ConfigurationError(
                    f"faults.{name}: must be >= 0, got {value!r}")
            object.__setattr__(self, name, float(value))
        for name in ("daemon_stall_seconds", "backoff_base",
                     "checkpoint_interval", "checkpoint_cost",
                     "ikc_timeout"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"faults.{name}: expected number, got {value!r}")
            if value < 0:
                raise ConfigurationError(
                    f"faults.{name}: must be >= 0, got {value!r}")
            object.__setattr__(self, name, float(value))
        if not isinstance(self.ikc_drop_prob, (int, float)) or \
                isinstance(self.ikc_drop_prob, bool):
            raise ConfigurationError(
                f"faults.ikc_drop_prob: expected number, "
                f"got {self.ikc_drop_prob!r}")
        if not 0.0 <= self.ikc_drop_prob < 1.0:
            raise ConfigurationError(
                f"faults.ikc_drop_prob: must be in [0, 1), "
                f"got {self.ikc_drop_prob!r}")
        object.__setattr__(self, "ikc_drop_prob", float(self.ikc_drop_prob))
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"faults.backoff_factor: must be >= 1, "
                f"got {self.backoff_factor!r}")
        object.__setattr__(self, "backoff_factor", float(self.backoff_factor))
        for name in ("max_retries", "ikc_max_redeliveries", "seed"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"faults.{name}: expected int, got {value!r}")
        if self.max_retries < 0 or self.ikc_max_redeliveries < 0:
            raise ConfigurationError("faults: retry counts must be >= 0")

    # -- classification ----------------------------------------------

    @classmethod
    def none(cls) -> "FaultSpec":
        """The null scenario: no fault source active (the default)."""
        return cls()

    @property
    def active(self) -> bool:
        """True when at least one fault source can actually fire."""
        return (
            self.node_mtbf_hours > 0.0
            or self.oom_per_node_hour > 0.0
            or self.proxy_crash_per_node_hour > 0.0
            or self.daemon_stall_per_node_hour > 0.0
            or self.ikc_drop_prob > 0.0
        )

    # -- derivation ----------------------------------------------------

    def with_(self, **overrides: Any) -> "FaultSpec":
        """A copy with ``overrides`` applied (validated on construction)."""
        return replace(self, **overrides)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultSpec":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"faults: expected a JSON object, "
                f"got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"faults: unknown field(s) {unknown} "
                f"(known: {sorted(known)})")
        return cls(**dict(payload))

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent,
                          separators=None if indent else (",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"invalid JSON: {exc}") from None
        return cls.from_dict(payload)
