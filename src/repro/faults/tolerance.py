"""Tolerance machinery: retry/backoff and checkpoint/restart policies.

These are the knobs the batch layer uses to *react* to injected
faults, mirroring the canonical fault-tolerant HPC job state machine
(RUNNING → RUN_ERROR → RESTART with bounded retries) of production
workflow systems like Balsam.  Both policies are pure arithmetic over
a :class:`~repro.faults.spec.FaultSpec`, so the scheduler stays the
single owner of job state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .spec import FaultSpec


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff."""

    max_retries: int = 3
    backoff_base: float = 30.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")

    @classmethod
    def from_spec(cls, spec: FaultSpec) -> "RetryPolicy":
        return cls(max_retries=spec.max_retries,
                   backoff_base=spec.backoff_base,
                   backoff_factor=spec.backoff_factor)

    def exhausted(self, attempts: int) -> bool:
        """Has ``attempts`` failures used up the retry budget?"""
        return attempts > self.max_retries

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based):
        ``base * factor**(attempt-1)``."""
        if attempt <= 0:
            raise ConfigurationError("attempt is 1-based")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class CheckpointPolicy:
    """Periodic checkpoint/restart: pay ``cost`` every ``interval``
    payload seconds, lose only the progress since the last checkpoint
    on failure.  ``interval == 0`` disables checkpointing entirely
    (zero overhead, total loss on failure)."""

    interval: float = 0.0
    cost: float = 0.0

    def __post_init__(self) -> None:
        if self.interval < 0 or self.cost < 0:
            raise ConfigurationError(
                "checkpoint interval/cost must be >= 0")

    @classmethod
    def from_spec(cls, spec: FaultSpec) -> "CheckpointPolicy":
        return cls(interval=spec.checkpoint_interval,
                   cost=spec.checkpoint_cost)

    @property
    def enabled(self) -> bool:
        return self.interval > 0.0

    def overhead(self, payload_seconds: float) -> float:
        """Total checkpoint-writing walltime added to a run segment of
        ``payload_seconds`` useful work."""
        if not self.enabled or payload_seconds <= 0:
            return 0.0
        return self.cost * math.floor(payload_seconds / self.interval)

    def restart_point(self, progress: float) -> float:
        """The payload position a restart resumes from: the last
        completed checkpoint at or before ``progress`` (0 without
        checkpointing)."""
        if not self.enabled or progress <= 0:
            return 0.0
        return self.interval * math.floor(progress / self.interval)

    def lost_work(self, progress: float) -> float:
        """Payload seconds thrown away when failing at ``progress``."""
        return max(0.0, progress - self.restart_point(progress))
