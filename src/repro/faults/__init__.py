"""repro.faults — deterministic cluster-scale fault injection.

The happy-path simulator answers "how fast is each kernel?"; this
package answers the production question the paper's §6 lessons-learned
hinge on: "how often does a job *finish*, and how much machine is lost
to failures, restarts and checkpoints?"  Everything is seeded and
declarative:

* :class:`FaultSpec` — a failure environment as data (per-node MTBF,
  OOM/proxy-crash/daemon-stall rates, IKC drop probability) plus the
  tolerance policy (bounded retries, exponential backoff, periodic
  checkpointing).  JSON-round-trippable; an optional field of
  :class:`~repro.platform.spec.PlatformSpec`, cache-keyed only when
  active.
* :class:`FaultInjector` — samples :class:`FaultEvent` schedules from
  named RNG streams; same seed + same spec ⇒ identical schedule on any
  process.
* :class:`RetryPolicy` / :class:`CheckpointPolicy` — the reaction
  arithmetic consumed by
  :class:`~repro.runtime.batchsched.BatchScheduler`.

Quickstart::

    from repro.faults import FaultSpec, FaultInjector
    faults = FaultSpec(node_mtbf_hours=100_000, max_retries=3,
                       checkpoint_interval=1800, checkpoint_cost=60)
    injector = FaultInjector(faults)
    injector.schedule(n_nodes=8192, window=7200, stream="job/lqcd/a0")
"""

from .injector import (
    KINDS_BY_OS,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
)
from .spec import FaultSpec
from .tolerance import CheckpointPolicy, RetryPolicy

__all__ = [
    "CheckpointPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "KINDS_BY_OS",
    "RetryPolicy",
]
