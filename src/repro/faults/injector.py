"""Deterministic, RNG-seeded fault injection.

A :class:`FaultInjector` turns a :class:`~repro.faults.spec.FaultSpec`
into concrete :class:`FaultEvent` schedules.  Every stochastic draw
comes from a named stream seeded by ``(spec.seed, fnv1a(stream))`` —
the same scheme the noise subsystem uses — so a given
``(FaultSpec, stream name)`` pair always produces the identical fault
schedule, on any process, in any execution order.  That is what makes
fault scenarios cache-keyable and lets the fault-sensitivity
experiment produce byte-identical output across ``--jobs 1`` and
``--jobs N``.

Fault sources are Poisson processes whose aggregate rate scales with
``n_nodes`` (exposure grows with job size × walltime, the real-world
reliability budget): node failures at ``n / MTBF`` per hour, OOM
kills, proxy crashes and daemon stalls at their per-node-hour rates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..errors import (
    CgroupLimitExceeded,
    ConfigurationError,
    FaultError,
    NodeFailure,
    ProxyCrashed,
)
from ..obs.metrics import get_metrics
from ..obs.tracer import get_tracer
from ..sim.rng import fnv1a_64
from .spec import FaultSpec

SECONDS_PER_HOUR = 3600.0


class FaultKind(enum.Enum):
    """What broke."""

    NODE_FAILURE = "node_failure"
    OOM_KILL = "oom_kill"
    PROXY_CRASH = "proxy_crash"
    DAEMON_STALL = "daemon_stall"

    @property
    def fatal(self) -> bool:
        """Does this fault kill the job (vs. merely slowing it)?"""
        return self is not FaultKind.DAEMON_STALL


#: Fault kinds that can hit a job under each kernel personality: proxy
#: crashes only exist for McKernel jobs (the Linux-side twin), daemon
#: stalls only for Linux jobs (the LWK runs no daemons, §2).
KINDS_BY_OS = {
    "linux": (FaultKind.NODE_FAILURE, FaultKind.OOM_KILL,
              FaultKind.DAEMON_STALL),
    "mckernel": (FaultKind.NODE_FAILURE, FaultKind.OOM_KILL,
                 FaultKind.PROXY_CRASH),
}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: when, what, and where."""

    time: float          # seconds into the window it was sampled over
    kind: FaultKind
    node: int = 0        # node index within the job

    def exception(self) -> FaultError | CgroupLimitExceeded:
        """The exception this event manifests as (fatal kinds only)."""
        if self.kind is FaultKind.NODE_FAILURE:
            return NodeFailure(
                f"node {self.node} failed at t={self.time:.1f}s",
                node=self.node, at=self.time)
        if self.kind is FaultKind.OOM_KILL:
            # The existing cgroup limit exception: an injected OOM is
            # indistinguishable from the memcg killing the job.
            return CgroupLimitExceeded(
                f"cgroup OOM kill on node {self.node} "
                f"at t={self.time:.1f}s")
        if self.kind is FaultKind.PROXY_CRASH:
            return ProxyCrashed(
                f"proxy process on node {self.node} crashed "
                f"at t={self.time:.1f}s")
        raise ConfigurationError(
            f"{self.kind.value} is not a fatal fault")


@dataclass
class FaultSchedule:
    """All faults sampled for one exposure window, time-ordered."""

    window: float
    events: list[FaultEvent] = field(default_factory=list)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def first_fatal(self, os_kind: str = "linux") -> Optional[FaultEvent]:
        """Earliest job-killing event applicable to ``os_kind``."""
        kinds = _kinds_for(os_kind)
        for ev in self.events:
            if ev.kind.fatal and ev.kind in kinds:
                return ev
        return None

    def stall_time(self, spec: FaultSpec, os_kind: str = "linux",
                   before: Optional[float] = None) -> float:
        """Total daemon-stall walltime added (Linux jobs), counting
        only stalls before ``before`` (e.g. the first fatal event)."""
        if FaultKind.DAEMON_STALL not in _kinds_for(os_kind):
            return 0.0
        total = 0.0
        for ev in self.events:
            if ev.kind is FaultKind.DAEMON_STALL and (
                    before is None or ev.time < before):
                total += spec.daemon_stall_seconds
        return total

    def count(self, kind: FaultKind) -> int:
        return sum(1 for ev in self.events if ev.kind is kind)


def _kinds_for(os_kind: str) -> tuple[FaultKind, ...]:
    try:
        return KINDS_BY_OS[os_kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown os kind {os_kind!r} "
            f"(known: {sorted(KINDS_BY_OS)})") from None


class FaultInjector:
    """Samples deterministic fault schedules from a :class:`FaultSpec`.

    One injector may serve many jobs/attempts; callers keep draws
    independent by naming a distinct ``stream`` per (job, attempt).
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    def rng(self, stream: str) -> np.random.Generator:
        """The named fault stream (same name ⇒ same draws, always)."""
        ss = np.random.SeedSequence([self.spec.seed & 0xFFFFFFFFFFFFFFFF,
                                     fnv1a_64(f"faults/{stream}")])
        return np.random.Generator(np.random.PCG64(ss))

    # -- sampling ------------------------------------------------------

    def _rates_per_second(self, n_nodes: int) -> dict[FaultKind, float]:
        s = self.spec
        rates = {}
        if s.node_mtbf_hours > 0:
            rates[FaultKind.NODE_FAILURE] = (
                n_nodes / s.node_mtbf_hours / SECONDS_PER_HOUR)
        if s.oom_per_node_hour > 0:
            rates[FaultKind.OOM_KILL] = (
                n_nodes * s.oom_per_node_hour / SECONDS_PER_HOUR)
        if s.proxy_crash_per_node_hour > 0:
            rates[FaultKind.PROXY_CRASH] = (
                n_nodes * s.proxy_crash_per_node_hour / SECONDS_PER_HOUR)
        if s.daemon_stall_per_node_hour > 0:
            rates[FaultKind.DAEMON_STALL] = (
                n_nodes * s.daemon_stall_per_node_hour / SECONDS_PER_HOUR)
        return rates

    def schedule(self, n_nodes: int, window: float,
                 stream: str) -> FaultSchedule:
        """Sample every fault hitting an ``n_nodes``-node job over
        ``window`` seconds of exposure.

        Each source is an independent Poisson process (exponential
        interarrivals); the merged schedule is time-sorted.  Identical
        ``(spec, n_nodes, window, stream)`` ⇒ identical schedule.
        """
        if n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        if window < 0:
            raise ConfigurationError("window must be non-negative")
        events: list[FaultEvent] = []
        if window > 0:
            # One sub-stream per kind: adding or removing one fault
            # source never perturbs the draws of another.
            for kind, rate in sorted(self._rates_per_second(n_nodes).items(),
                                     key=lambda kv: kv[0].value):
                rng = self.rng(f"{stream}/{kind.value}")
                t = 0.0
                while True:
                    t += float(rng.exponential(1.0 / rate))
                    if t >= window:
                        break
                    node = int(rng.integers(0, n_nodes))
                    events.append(FaultEvent(time=t, kind=kind, node=node))
        events.sort(key=lambda ev: (ev.time, ev.kind.value, ev.node))
        tracer = get_tracer()
        if tracer is not None and events:
            metrics = get_metrics()
            for ev in events:
                # Timestamps are window-relative (the attempt's own
                # clock); the scheduler separately marks the fault that
                # actually manifests at absolute simulation time.
                tracer.event("faults", f"injected/{ev.kind.value}",
                             ts=ev.time, actor=stream, node=ev.node)
                metrics.counter("faults.injected",
                                kind=ev.kind.value).inc()
        return FaultSchedule(window=window, events=events)

    def first_fatal(self, n_nodes: int, window: float, stream: str,
                    os_kind: str = "linux") -> Optional[FaultEvent]:
        """Convenience: earliest fatal event for one job attempt."""
        return self.schedule(n_nodes, window, stream).first_fatal(os_kind)

    # -- component wiring ---------------------------------------------

    def ikc_channel_rng(self, stream: str) -> Optional[np.random.Generator]:
        """Drop-decision stream for one IKC channel, or None when IKC
        faults are disabled (the channel then takes the zero-cost
        fault-free path)."""
        if self.spec.ikc_drop_prob <= 0:
            return None
        return self.rng(f"ikc/{stream}")
