"""The chaos soak: crash, repair, restart — until the bytes match.

One soak round is the service's whole crash-tolerance story exercised
end to end:

1. submit a small golden workload (one registered experiment plus a
   two-cell sweep) to a fresh service directory, chaos off;
2. install a seeded :class:`~repro.chaos.ChaosSpec` and drain the
   queue with in-process workers, restarting each worker the schedule
   kills (``raise`` mode — an injected crash unwinds like ``kill -9``,
   no cleanup) and running ``fsck --repair``
   (:func:`~repro.service.fsck.verify_service`) after every worker
   exit, chaos suspended;
3. once drained, run a final repair pass, then assert a fresh verify
   is **clean** — every invariant holds;
4. byte-compare every published result directory against the serial
   golden computed directly through the
   :class:`~repro.engine.ExecutionEngine`, no service layer at all.

A round passes only when the queue drains, the directory verifies
clean, every telemetry spool the (telemetry-on) workers wrote reads
back clean after repair, *and* the artifacts are byte-identical to the
serial path — the acceptance bar for "crash tolerance that actually
tolerates crashes".
Each round re-seeds the schedule (``seed + round``), so ``rounds=N``
explores N distinct crash interleavings, reproducibly.

Termination is engineered, not hoped for: per-site ``max_fires`` caps
bound total injected failures, the retry budget is generous enough
(``max_retries=100``) that injected strandings never exhaust a job,
and ``max_restarts`` bounds the crash/restart loop (hitting it is a
soak *failure* — the queue stopped converging).
"""

from __future__ import annotations

import os
import pathlib
from typing import Optional

from ..engine import ExecutionEngine
from ..errors import ConfigurationError, CrashInjected, ReproError, \
    ServiceError
from ..faults.tolerance import RetryPolicy
from ..obs.export import canonical_json
from ..obs.fleet import FleetAggregator
from ..perf.cache import result_to_dict
from ..service.fsck import verify_service
from ..service.jobs import JobSpec
from ..service.queue import TERMINAL, JobQueue
from ..service.worker import Worker
from .hooks import ChaosInjector, chaos_active, chaos_suspended
from .spec import ChaosSpec

__all__ = ["golden_jobspecs", "run_soak"]

#: Retry budget for soak queues: generous enough that injected crashes
#: never push a job to FAILED (a soak asserts convergence, not budget
#: exhaustion — budget behaviour has its own tests).
SOAK_RETRY = RetryPolicy(max_retries=100, backoff_base=0.0)


def golden_jobspecs(seed: int = 0) -> "list[JobSpec]":
    """The soak workload: one experiment export plus a two-cell sweep
    (both CI-scale)."""
    from ..platform import RunSpec, get_platform

    platform = get_platform("ofp-default")
    return [
        JobSpec.for_experiment("eq1", fast=True, seed=seed),
        JobSpec.for_specs([
            RunSpec(platform=platform, app="Milc", n_nodes=64,
                    n_runs=2, seed=seed),
            RunSpec(platform=platform, app="AMG2013", n_nodes=128,
                    n_runs=2, seed=seed),
        ]),
    ]


def _produce_golden(jobspec: JobSpec, outdir: pathlib.Path) -> None:
    """The serial reference: exactly what
    :meth:`~repro.service.worker.Worker._run_jobspec` produces, with
    no service layer involved."""
    outdir.mkdir(parents=True)
    engine = ExecutionEngine.from_options(cache=None)
    if jobspec.kind == "experiment":
        engine.export_experiments(outdir, ids=[jobspec.experiment],
                                  fast=jobspec.fast, seed=jobspec.seed)
        return
    results = engine.run_specs(jobspec.specs)
    payload = {
        "jobspec": jobspec.to_dict(),
        "results": [result_to_dict(r) for r in results],
    }
    (outdir / "results.json").write_text(canonical_json(payload) + "\n")


def _compare_dirs(published: pathlib.Path,
                  golden: pathlib.Path) -> "list[str]":
    """Differences between two artifact trees (empty = identical):
    relative paths present in one side only, or with differing bytes."""
    rel = [sorted(str(p.relative_to(base)) for p in base.rglob("*")
                  if p.is_file())
           for base in (published, golden)]
    diffs = [f"only-published: {p}" for p in rel[0] if p not in rel[1]]
    diffs += [f"only-golden: {p}" for p in rel[1] if p not in rel[0]]
    for name in rel[0]:
        if name in rel[1] and (published / name).read_bytes() \
                != (golden / name).read_bytes():
            diffs.append(f"differs: {name}")
    return sorted(diffs)


def run_soak(directory: "str | os.PathLike", rounds: int = 3,
             seed: int = 0, action: str = "kill", p: float = 1.0,
             max_fires: int = 1, max_restarts: int = 100,
             lease_ticks: int = 3, max_polls: int = 50,
             spec: Optional[ChaosSpec] = None) -> dict:
    """Run ``rounds`` soak rounds under ``directory``; the report dict.

    ``spec`` overrides the default schedule (``ChaosSpec.everywhere``
    with the given action/p/max_fires); either way round ``r`` runs it
    re-seeded to ``seed + r``.  ``report["ok"]`` is True only when
    every round drained, verified clean and matched the golden bytes.
    """
    if rounds < 1:
        raise ConfigurationError("soak needs rounds >= 1")
    base = pathlib.Path(directory)
    schedule = spec if spec is not None else ChaosSpec.everywhere(
        action=action, p=p, max_fires=max_fires, seed=seed, mode="raise")
    if schedule.mode != "raise":
        raise ConfigurationError(
            "the in-process soak needs mode='raise' (exit mode is for "
            "OS-process fleets: repro serve --chaos)")

    jobspecs = golden_jobspecs(seed=0)
    golden_dirs: dict[str, pathlib.Path] = {}
    for jobspec in jobspecs:
        gdir = base / "golden" / jobspec.digest()[:10]
        _produce_golden(jobspec, gdir)
        golden_dirs[jobspec.digest()] = gdir

    report: dict = {
        "spec": schedule.to_dict(),
        "rounds": [],
        "ok": True,
    }
    for r in range(rounds):
        round_report = _run_round(
            base / f"round-{seed + r:04d}",
            schedule.with_seed(seed + r), jobspecs, golden_dirs,
            max_restarts=max_restarts, lease_ticks=lease_ticks,
            max_polls=max_polls)
        round_report["round"] = r
        report["rounds"].append(round_report)
        report["ok"] = report["ok"] and round_report["ok"]
    return report


def _run_round(svc: pathlib.Path, schedule: ChaosSpec,
               jobspecs: "list[JobSpec]", golden_dirs: dict,
               max_restarts: int, lease_ticks: int,
               max_polls: int) -> dict:
    if svc.exists():
        raise ConfigurationError(
            f"soak round directory {svc} already exists; every round "
            "needs a fresh service directory")
    queue = JobQueue(svc, retry=SOAK_RETRY)
    submitted = {queue.submit(js): js for js in jobspecs}

    injector = ChaosInjector(schedule)
    crashes = 0
    worker_runs = 0
    repairs = 0
    with chaos_active(injector):
        while not queue.drained():
            if worker_runs > max_restarts:
                raise ServiceError(
                    f"soak round in {svc} did not converge within "
                    f"{max_restarts} worker restarts ({crashes} "
                    "crashes); the queue has stopped making progress")
            worker = Worker(queue, worker_id=f"w{worker_runs}",
                            poll_interval=0.0, lease_ticks=lease_ticks,
                            drain=True, max_polls=max_polls,
                            telemetry=True)
            worker_runs += 1
            try:
                worker.run()
            except (CrashInjected, OSError, ReproError):
                # The injected failure surface: a kill unwinding out of
                # the worker, an io-error nothing upstream handles, or
                # the journal's torn-tail guard refusing to append.
                crashes += 1
            # Chaos-suspended repair after every worker exit — exactly
            # what an operator (or the CI job) runs after a real crash.
            with chaos_suspended():
                fsck = verify_service(svc, repair=True, retry=SOAK_RETRY)
                repairs += fsck["repaired"]

    with chaos_suspended():
        final_repair = verify_service(svc, repair=True, retry=SOAK_RETRY)
        repairs += final_repair["repaired"]
        final = verify_service(svc, repair=False)
        # The workers ran with telemetry on (and chaos could fire on
        # the spool appends themselves); after repair every surviving
        # spool must read back clean — the flight recorder has to
        # survive the crash it records.
        agg = FleetAggregator(queue)
        telemetry_clean = all(
            not s["problems"]["torn_tail"]
            and not s["problems"]["corrupt_lines"]
            for s in agg.spools.values())

    table = queue.table()
    artifact_diffs: list = []
    jobs_done = 0
    for job_id in sorted(submitted):
        view = table.get(job_id)
        if view is None or view.state not in TERMINAL:
            artifact_diffs.append(f"{job_id}: not terminal")
            continue
        if view.state.value != "done":
            artifact_diffs.append(f"{job_id}: {view.state.value} "
                                  f"({view.error})")
            continue
        jobs_done += 1
        golden = golden_dirs[submitted[job_id].digest()]
        artifact_diffs += [f"{job_id}: {d}" for d in
                           _compare_dirs(queue.result_dir(job_id), golden)]

    ok = final["clean"] and telemetry_clean and not artifact_diffs
    return {
        "service_dir": str(svc),
        "seed": schedule.seed,
        "crashes": crashes,
        "worker_runs": worker_runs,
        "repairs": repairs,
        "chaos": injector.report(),
        "verify_clean": final["clean"],
        "verify_violations": [v["check"] for v in final["violations"]],
        "jobs_done": jobs_done,
        "artifact_diffs": artifact_diffs,
        "telemetry": {"clean": telemetry_clean,
                      "spools": len(agg.spools)},
        "ok": ok,
    }
