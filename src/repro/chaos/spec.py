"""ChaosSpec: a frozen, serializable crash schedule.

A chaos schedule is configuration, not code — the same discipline as
:class:`~repro.platform.spec.PlatformSpec` and
:class:`~repro.faults.spec.FaultSpec`.  A :class:`ChaosSpec` is
canonical JSON on disk, round-trips exactly, and fully determines the
crash schedule: each enabled crash point draws from its own Bernoulli
stream seeded by ``(seed, fnv1a("chaos/<site>"))``, so two runs with
the same spec fire the same actions at the same per-site evaluation
indices.  Adding or removing one site never perturbs another site's
draws — the variance-isolation property every other seeded subsystem
in this package maintains.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..errors import ConfigurationError
from ..obs.export import canonical_json
from .hooks import CRASH_POINTS, WRITE_SITES

__all__ = ["ACTIONS", "MODES", "ChaosSpec", "SitePolicy"]

#: What a firing crash point does.
#:
#: * ``kill`` — raise :class:`~repro.errors.CrashInjected` (or
#:   ``os._exit(137)`` in ``exit`` mode): the process dies at this
#:   instruction, exactly like ``kill -9``.
#: * ``torn-write`` — truncate the in-flight write at a seeded byte
#:   offset, then die: the on-disk state a crash mid-``write(2)``
#:   leaves behind.  Only meaningful at write sites.
#: * ``io-error`` — raise ``OSError`` before the operation: the
#:   filesystem said no (EIO), the process survives to handle it.
ACTIONS = ("kill", "torn-write", "io-error")

#: How *kill* (and the crash half of *torn-write*) is delivered:
#: ``raise`` for in-process workers (the soak harness catches
#: :class:`~repro.errors.CrashInjected` and restarts), ``exit`` for
#: OS-process fleet workers (``os._exit(137)`` — no cleanup, no
#: ``finally``, the real thing).
MODES = ("raise", "exit")


@dataclass(frozen=True)
class SitePolicy:
    """Chaos policy for one named crash point."""

    #: One of :data:`~repro.chaos.hooks.CRASH_POINTS`.
    site: str
    #: One of :data:`ACTIONS`.
    action: str = "kill"
    #: Per-evaluation Bernoulli probability of firing.
    p: float = 1.0
    #: Fires before this site goes quiet (0 = unlimited — beware:
    #: unlimited *kill* can livelock a drain loop).
    max_fires: int = 1
    #: Evaluations to pass through before the site arms, letting a
    #: schedule target "the k-th passage" deterministically with p=1.
    skip: int = 0

    def __post_init__(self) -> None:
        if self.site not in CRASH_POINTS:
            raise ConfigurationError(
                f"unknown crash point {self.site!r}; "
                f"known: {list(CRASH_POINTS)}")
        if self.action not in ACTIONS:
            raise ConfigurationError(
                f"unknown chaos action {self.action!r}; "
                f"known: {list(ACTIONS)}")
        if self.action == "torn-write" and self.site not in WRITE_SITES:
            raise ConfigurationError(
                f"torn-write needs a write site; {self.site!r} is a "
                f"control-flow site (write sites: {sorted(WRITE_SITES)})")
        if not 0.0 <= self.p <= 1.0:
            raise ConfigurationError(
                f"site {self.site}: p must be in [0, 1], got {self.p!r}")
        if self.max_fires < 0:
            raise ConfigurationError(
                f"site {self.site}: max_fires must be >= 0")
        if self.skip < 0:
            raise ConfigurationError(
                f"site {self.site}: skip must be >= 0")

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "action": self.action,
            "p": self.p,
            "max_fires": self.max_fires,
            "skip": self.skip,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SitePolicy":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"site policy must be a JSON object, got "
                f"{type(payload).__name__}")
        known = {"site", "action", "p", "max_fires", "skip"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"site policy: unknown field(s) {unknown}")
        return cls(
            site=str(payload.get("site", "")),
            action=str(payload.get("action", "kill")),
            p=float(payload.get("p", 1.0)),
            max_fires=int(payload.get("max_fires", 1)),
            skip=int(payload.get("skip", 0)),
        )


@dataclass(frozen=True)
class ChaosSpec:
    """One frozen crash schedule: seed, delivery mode, site policies."""

    #: Root seed for every per-site Bernoulli stream.
    seed: int = 0
    #: One of :data:`MODES`.
    mode: str = "raise"
    #: Policies, one per enabled crash point.
    sites: tuple = ()

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown chaos mode {self.mode!r}; known: {list(MODES)}")
        seen = set()
        for policy in self.sites:
            if not isinstance(policy, SitePolicy):
                raise ConfigurationError(
                    f"sites must be SitePolicy instances, got "
                    f"{type(policy).__name__}")
            if policy.site in seen:
                raise ConfigurationError(
                    f"duplicate policy for crash point {policy.site!r}")
            seen.add(policy.site)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "mode": self.mode,
            "sites": [policy.to_dict() for policy in self.sites],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ChaosSpec":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"chaos spec must be a JSON object, got "
                f"{type(payload).__name__}")
        known = {"seed", "mode", "sites"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"chaos spec: unknown field(s) {unknown}")
        sites = payload.get("sites", ())
        if not isinstance(sites, Sequence) or isinstance(sites, (str, bytes)):
            raise ConfigurationError("chaos spec: 'sites' must be a list")
        return cls(
            seed=int(payload.get("seed", 0)),
            mode=str(payload.get("mode", "raise")),
            sites=tuple(SitePolicy.from_dict(s) for s in sites),
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def with_seed(self, seed: int) -> "ChaosSpec":
        """The same schedule shape re-seeded (per-round soak streams)."""
        return replace(self, seed=seed)

    # -- constructors -------------------------------------------------

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "ChaosSpec":
        """Load a spec from a JSON file (the ``--chaos FILE`` shape)."""
        try:
            text = pathlib.Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read chaos spec {path}: {exc}") from exc
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"chaos spec {path}: invalid JSON ({exc})") from exc
        return cls.from_dict(payload)

    @classmethod
    def everywhere(cls, action: str = "kill", p: float = 1.0,
                   max_fires: int = 1, seed: int = 0,
                   mode: str = "raise") -> "ChaosSpec":
        """A policy at *every* crash point that accepts ``action``
        (torn-write skips control-flow sites) — the soak default."""
        sites = tuple(
            SitePolicy(site=site, action=action, p=p, max_fires=max_fires)
            for site in CRASH_POINTS
            if action != "torn-write" or site in WRITE_SITES
        )
        return cls(seed=seed, mode=mode, sites=sites)
