"""Crash points and the ambient chaos injector.

LiveStack's lesson (PAPERS.md) applied to the service layer: recovery
code is only trustworthy if the stack can be interrupted *at every
dangerous instruction*, not just between operations.  Each named crash
point below marks one instruction window where a real ``kill -9``
would leave observable on-disk state — an orphan claim file, a torn
journal line, a published-but-unacked result — and the injector can
make exactly that state happen on demand, reproducibly.

Design constraints, mirroring :func:`~repro.obs.tracer.get_tracer` and
:func:`~repro.analysis.race.get_race_detector`:

* **Zero overhead when off.**  Sites consult the ambient injector
  (:func:`get_chaos`) and bail on ``None`` — one module-global read
  and an ``is None`` test; no injector installed ⇒ byte-identical
  behaviour, no allocation, nothing.
* **Deterministic schedules.**  Each site draws from its own stream
  seeded by ``(spec.seed, fnv1a("chaos/<site>"))``; the k-th
  evaluation of a site fires (or not) identically across runs of the
  same spec, and sites never perturb each other's draws.
* **Honest crashes.**  The *kill* action raises
  :class:`~repro.errors.CrashInjected` (a ``BaseException`` — no
  ``except ReproError`` absorbs it) or, in ``exit`` mode, calls
  ``os._exit(137)``: no ``finally`` blocks, no buffered flushes, the
  state on disk is what a SIGKILL leaves.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, NoReturn, Optional

import numpy as np

from ..errors import CrashInjected
from ..obs.metrics import get_metrics
from ..obs.tracer import get_tracer
from ..sim.rng import fnv1a_64

if TYPE_CHECKING:
    from .spec import ChaosSpec

__all__ = ["CRASH_POINTS", "CRASH_SITE_REGISTRY", "WRITE_SITES",
           "ChaosInjector", "chaos_active", "chaos_suspended",
           "get_chaos", "install_chaos"]

#: The crash-point catalogue, in sorted order.  Hook call sites must
#: name one of these — an unknown site is a ConfigurationError at
#: policy-build time, so a typo never silently disables a schedule.
#: Each entry is one dangerous instruction window; see docs/CHAOS.md
#: for the on-disk state a crash at each point leaves behind.
CRASH_POINTS = (
    "cache.put",
    "engine.run",
    "journal.append",
    "queue.claim",
    "queue.complete",
    "queue.lease_break",
    "queue.lease_bump",
    "queue.submit",
    "telemetry.append",
    "worker.publish.post_rename",
    "worker.publish.pre_rename",
)

#: Sites that wrap an in-flight ``write(2)`` and therefore support the
#: *torn-write* action (truncating the write at a seeded byte offset).
WRITE_SITES = frozenset({
    "cache.put",
    "journal.append",
    "queue.lease_bump",
    "telemetry.append",
})

#: Where each crash point lives, as ``canonical-path::scope`` pairs.
#: ``repro analyze crash`` (rule CC004) enforces *exact* agreement
#: with the ``get_chaos()`` call sites it finds, so deleting or moving
#: a hook — or adding one without registering it here — fails the lint
#: gate instead of silently shrinking the chaos surface.
CRASH_SITE_REGISTRY: dict = {
    "cache.put": (
        "repro/perf/cache.py::RunCache.put",
    ),
    "engine.run": (
        "repro/engine.py::ExecutionEngine.export_experiments",
        "repro/engine.py::ExecutionEngine.run_specs",
    ),
    "journal.append": (
        "repro/service/journal.py::Journal.append",
    ),
    "queue.claim": (
        "repro/service/queue.py::JobQueue.claim_next",
    ),
    "queue.complete": (
        "repro/service/queue.py::JobQueue.complete",
    ),
    "queue.lease_break": (
        "repro/service/queue.py::JobQueue.break_lease",
    ),
    "queue.lease_bump": (
        "repro/service/queue.py::JobQueue.heartbeat",
    ),
    "queue.submit": (
        "repro/service/queue.py::JobQueue.submit",
    ),
    "telemetry.append": (
        "repro/obs/spool.py::TelemetrySpool._append",
    ),
    "worker.publish.post_rename": (
        "repro/service/worker.py::Worker._publish",
    ),
    "worker.publish.pre_rename": (
        "repro/service/worker.py::Worker._publish",
    ),
}

#: Exit status delivered by *kill* in ``exit`` mode — 128 + SIGKILL,
#: what a shell reports for a process killed with ``kill -9``.
KILL_EXIT_STATUS = 137


class ChaosInjector:
    """Evaluates a :class:`~repro.chaos.spec.ChaosSpec` at crash points.

    One injector is one realized schedule: it owns the per-site RNG
    streams and fire counters, so re-evaluating the same spec needs a
    fresh injector (the soak builds one per round).
    """

    def __init__(self, spec: "ChaosSpec") -> None:
        self.spec = spec
        self._policies = {policy.site: policy for policy in spec.sites}
        self._rngs = {
            site: np.random.default_rng(np.random.SeedSequence(
                [spec.seed & 0xFFFFFFFFFFFFFFFF,
                 fnv1a_64(f"chaos/{site}")]))
            for site in self._policies
        }
        #: site -> evaluations seen / actions fired.
        self.evaluations = {site: 0 for site in self._policies}
        self.fires = {site: 0 for site in self._policies}

    # -- the decision stream ------------------------------------------

    def decide(self, site: str) -> Optional[str]:
        """Consume one draw for ``site``; the action to fire, or None.

        Unpoliced sites cost a dict miss and consume nothing, so a
        spec that enables one site leaves every other site's stream —
        and behaviour — untouched.
        """
        policy = self._policies.get(site)
        if policy is None:
            return None
        index = self.evaluations[site]
        self.evaluations[site] = index + 1
        if policy.max_fires and self.fires[site] >= policy.max_fires:
            return None
        # Draw unconditionally so the stream position depends only on
        # the evaluation index, never on skip/max_fires bookkeeping.
        draw = float(self._rngs[site].random())
        if index < policy.skip:
            return None
        if draw >= policy.p:
            return None
        self.fires[site] += 1
        return policy.action

    def report(self) -> dict:
        """Deterministic summary: per-site evaluation and fire counts."""
        return {
            "sites": {
                site: {"evaluations": self.evaluations[site],
                       "fires": self.fires[site],
                       "action": self._policies[site].action}
                for site in sorted(self._policies)
            },
            "total_fires": sum(self.fires.values()),
        }

    # -- hook entry points --------------------------------------------

    def on(self, site: str) -> None:
        """A control-flow crash point: maybe die here.

        *kill* raises/exits; *io-error* raises ``OSError``;
        *torn-write* is rejected at spec build time for these sites.
        """
        action = self.decide(site)
        if action is None:
            return
        self._fire(site, action)

    def write(self, fd: int, data: bytes, site: str) -> None:
        """A write-wrapping crash point: perform ``data``'s write with
        the site's policy applied.

        * no action — one full ``os.write``, exactly the unhooked code;
        * *io-error* — ``OSError`` before any byte is written;
        * *torn-write* — write a seeded strict prefix, then die;
        * *kill* — write everything, then die (the append landed, the
          acknowledgement never did).
        """
        action = self.decide(site)
        if action is None:
            os.write(fd, data)
            return
        if action == "io-error":
            self._fire(site, action)  # raises OSError, nothing written
        if action == "torn-write":
            cut = int(self._rngs[site].integers(0, max(1, len(data))))
            os.write(fd, data[:cut])
            self._fire(site, action)  # dies mid-write
        os.write(fd, data)
        self._fire(site, "kill")  # full write landed, ack never did

    # -- firing -------------------------------------------------------

    def _fire(self, site: str, action: str) -> NoReturn:
        """Deliver ``action`` — never returns (raises or exits)."""
        metrics = get_metrics()
        metrics.counter("chaos.fires", site=site, action=action).inc()
        tracer = get_tracer()
        if tracer is not None:
            tracer.event("faults", f"chaos.{action}",
                         ts=tracer.advance("faults"), actor=site)
        if action == "io-error":
            metrics.counter("chaos.io_errors").inc()
            raise OSError(f"chaos: injected I/O error at {site}")
        if action == "torn-write":
            metrics.counter("chaos.torn_writes").inc()
        else:
            metrics.counter("chaos.kills").inc()
        if self.spec.mode == "exit":
            os._exit(KILL_EXIT_STATUS)
        raise CrashInjected(site)


#: The ambient injector; ``None`` disables every crash point.
_CHAOS: Optional[ChaosInjector] = None


def get_chaos() -> Optional[ChaosInjector]:
    """The installed injector, or ``None`` when chaos is off.

    Hook call sites mirror the tracer's shape — ``cz = get_chaos()`` /
    ``if cz is not None: ...`` — so a run without chaos costs one
    module-global read per dangerous instruction.
    """
    return _CHAOS


def install_chaos(injector: Optional[ChaosInjector]) -> None:
    """Install ``injector`` process-wide (``None`` uninstalls).

    The fleet-worker shape: ``repro serve --chaos SPEC.json`` installs
    for the whole process lifetime.  Scoped use wants
    :func:`chaos_active` instead.
    """
    global _CHAOS
    _CHAOS = injector


@contextmanager
def chaos_active(injector: ChaosInjector) -> Iterator[ChaosInjector]:
    """Install ``injector`` for the block; the previous ambient state
    is restored on exit, so nested scopes never leak."""
    global _CHAOS
    previous = _CHAOS
    _CHAOS = injector
    try:
        yield injector
    finally:
        _CHAOS = previous


@contextmanager
def chaos_suspended() -> Iterator[None]:
    """Disable chaos for the block (fsck/repair runs inside a soak must
    observe crashes, not suffer new ones)."""
    global _CHAOS
    previous = _CHAOS
    _CHAOS = None
    try:
        yield
    finally:
        _CHAOS = previous
