"""Deterministic crash injection for the job service.

``repro.chaos`` turns the service's crash-tolerance story from prose
into a test surface: named crash points threaded through the journal,
queue, worker and cache mark every instruction window where a real
``kill -9`` would leave observable on-disk state, and a frozen,
seedable :class:`ChaosSpec` decides — reproducibly — which of them
fire, with what action (*kill*, *torn-write*, *io-error*).

The package has three layers:

* :mod:`repro.chaos.spec` — the frozen, JSON-round-trippable schedule.
* :mod:`repro.chaos.hooks` — the crash-point catalogue and the ambient
  :class:`ChaosInjector` (zero overhead when off, mirroring the tracer
  and race-detector hooks).
* :mod:`repro.chaos.soak` — the crash/restart/fsck loop that drives a
  worker fleet through a seeded crash schedule and asserts the service
  converges to byte-identical artifacts.
"""

from .hooks import (CRASH_POINTS, KILL_EXIT_STATUS, WRITE_SITES,
                    ChaosInjector, chaos_active, chaos_suspended,
                    get_chaos, install_chaos)
from .spec import ACTIONS, MODES, ChaosSpec, SitePolicy

__all__ = [
    "ACTIONS",
    "CRASH_POINTS",
    "ChaosInjector",
    "ChaosSpec",
    "KILL_EXIT_STATUS",
    "MODES",
    "SitePolicy",
    "WRITE_SITES",
    "chaos_active",
    "chaos_suspended",
    "get_chaos",
    "install_chaos",
]
