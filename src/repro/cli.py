"""Command-line interface.

    python -m repro list
    python -m repro experiments table2 [--full] [--seed N] [--jobs N] [--stats]
    python -m repro experiments table2 --spec my_platform.json
    python -m repro platform list
    python -m repro platform show fugaku-production
    python -m repro platform validate my_platform.json
    python -m repro run my_run.json
    python -m repro run my_platform.json --app LQCD --nodes 2048
    python -m repro compare LQCD --platform fugaku --nodes 2048
    python -m repro fwq --platform fugaku --os mckernel --duration 60
    python -m repro cache info|clear|verify|gc
    python -m repro trace run table2 --out trace.json [--jsonl ev.jsonl]
    python -m repro trace summarize ev.jsonl --top 10
    python -m repro metrics table2 fig5
    python -m repro submit RUN.json | --experiment fig5
    python -m repro serve --drain [--workers N] [--telemetry]
    python -m repro status [JOB] [--json]
    python -m repro fetch JOB [--out DIR]
    python -m repro service verify [--repair]
    python -m repro service top
    python -m repro service report [--format json|prom|chrome] [--check]

The CLI is a thin shell over the library; anything it prints can be
obtained programmatically from :mod:`repro.experiments`,
:mod:`repro.platform` and :func:`repro.quick_compare`.  Platforms are
declarative JSON documents (:class:`repro.platform.PlatformSpec`):
``platform show`` prints any registry entry as a starting point, and
every spec-accepting command takes a JSON file in its place.

Experiment runs fan their sweeps out over ``--jobs`` worker processes
(``0`` = one per available CPU) and memoize RunResults in the run
cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-runs``; disable with
``--no-cache``), so regenerating a figure is parallel the first time
and a cache replay afterwards — byte-identical output either way.

Every execution path — one-shot and service alike — runs through the
shared :class:`repro.engine.ExecutionEngine`, so ``repro submit`` +
``repro serve`` produce artifacts byte-identical to ``repro
experiment``/``repro export`` for any worker count (see
``docs/SERVICE.md``).

``trace run`` re-runs an experiment with the :mod:`repro.obs` tracer
installed and writes a Chrome/Perfetto ``trace.json`` (open it at
https://ui.perfetto.dev); ``--trace FILE`` on ``experiments`` does the
same without changing the printed output.  ``metrics`` dumps the
run's :class:`~repro.obs.metrics.MetricsRegistry` in Prometheus
exposition format.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _auto_jobs() -> int:
    """One worker per CPU actually available to this process."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without affinity masks
        return max(1, os.cpu_count() or 1)


def _make_cache(args: argparse.Namespace):
    from .perf.cache import RunCache

    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return RunCache(args.cache_dir)
    return RunCache.default()


def _cmd_list(args: argparse.Namespace) -> int:
    from .apps import ALL_PROFILES
    from .experiments import EXPERIMENTS

    print("experiments:")
    for eid, (title, _) in EXPERIMENTS.items():
        print(f"  {eid:<10} {title}")
    print("\napplications:")
    for name, factory in ALL_PROFILES.items():
        p = factory()
        print(f"  {name:<10} {p.description}")
    return 0


def _load_spec_file(path: str):
    from .errors import ConfigurationError
    from .platform import load_spec

    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec {path!r}: {exc}")
    return load_spec(text)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from .engine import ExecutionEngine
    from .errors import ConfigurationError
    from .obs.metrics import MetricsRegistry
    from .obs.tracer import tracing
    from .platform import PlatformSpec

    platform = None
    if args.spec:
        platform = _load_spec_file(args.spec)
        if not isinstance(platform, PlatformSpec):
            raise ConfigurationError(
                f"{args.spec}: experiments take a platform spec, not a "
                "run spec (drop the 'platform'/'app' nesting)")
    jobs = _auto_jobs() if args.jobs == 0 else args.jobs
    counters = MetricsRegistry()
    engine = ExecutionEngine.from_options(jobs=jobs,
                                          cache=_make_cache(args),
                                          counters=counters)
    trace_path = getattr(args, "trace", None)
    scope = tracing() if trace_path else nullcontext(None)
    with scope as tracer, engine.session():
        for eid in args.ids:
            result = engine.run_experiment(eid, fast=not args.full,
                                           seed=args.seed,
                                           platform=platform)
            print(result.render())
            if result.paper_reference:
                print(f"[paper reference: {result.paper_reference}]")
            print()
    if trace_path:
        from .obs.export import write_chrome_trace

        write_chrome_trace(tracer, trace_path,
                           metadata={"experiments": args.ids,
                                     "seed": args.seed,
                                     "fast": not args.full})
        print(f"trace written to {trace_path} "
              f"({len(tracer)} events, layers: "
              f"{', '.join(tracer.layers_seen())})", file=sys.stderr)
    if args.stats:
        print(counters.report())
    return 0


def _cmd_platform(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .platform import build, get_platform, platform_names

    if args.action != "list" and not args.name:
        raise ConfigurationError(
            f"platform {args.action} needs a "
            f"{'name' if args.action == 'show' else 'spec JSON file'}")
    if args.action == "list":
        for name in platform_names():
            spec = get_platform(name)
            print(f"  {name:<24} {spec.machine:<16} "
                  f"{spec.os_kind:<9} {spec.tuning}")
    elif args.action == "show":
        print(get_platform(args.name).to_json(indent=2))
    else:  # validate
        spec = _load_spec_file(args.name)
        kind = type(spec).__name__
        # Resolving proves the spec composes, not just parses.
        from .platform import RunSpec

        platform = spec.platform if isinstance(spec, RunSpec) else spec
        build(platform)
        print(f"{args.name}: valid {kind} ({platform.name!r})")
        if isinstance(spec, RunSpec):
            print(f"fingerprint: {spec.fingerprint()}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .engine import ExecutionEngine
    from .errors import ConfigurationError
    from .platform import PlatformSpec, RunSpec

    spec = _load_spec_file(args.spec)
    if isinstance(spec, PlatformSpec):
        if not args.app:
            raise ConfigurationError(
                f"{args.spec} is a platform spec; pass --app (and "
                "--nodes) to make it a run, or supply a run spec")
        spec = RunSpec(platform=spec, app=args.app, n_nodes=args.nodes,
                       n_runs=args.runs, seed=args.seed)
    elif args.app:
        raise ConfigurationError(
            f"{args.spec} is already a run spec; --app conflicts")
    engine = ExecutionEngine.from_options(cache=_make_cache(args))
    result = engine.run_spec(spec)
    print(f"{result.app} on {result.machine} / {result.os_kind}, "
          f"{result.n_nodes} nodes ({result.n_threads} HW threads):")
    print(f"  mean time : {result.mean_time:9.3f} s "
          f"(+/- {result.std_time:.3f})")
    b = result.breakdown
    print(f"  breakdown [s]: compute={b.compute:.2f} tlb={b.tlb:.3f} "
          f"churn={b.churn:.3f} collective={b.collective:.3f} "
          f"noise={b.noise:.3f} init={b.init:.3f}")
    print(f"  fingerprint: {spec.fingerprint()}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = _make_cache(args)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached run(s) from {cache.directory}")
    elif args.action == "gc":
        report = cache.gc(max_age_days=args.max_age_days,
                          max_bytes=args.max_bytes)
        print(f"gc in {cache.directory}: removed {report['removed']} of "
              f"{report['checked']} disk entr(ies), reclaimed "
              f"{report['reclaimed_bytes']} bytes "
              f"({report['kept']} kept; quarantine untouched)")
    elif args.action == "verify":
        report = cache.verify()
        print(f"checked {report['checked']} disk entr(ies) in "
              f"{cache.directory}: {report['ok']} ok, "
              f"{len(report['quarantined'])} quarantined")
        for name in report["quarantined"]:
            print(f"  quarantined: {name}")
        return 1 if report["quarantined"] else 0
    else:
        info = cache.info()
        for field, value in info.items():
            print(f"{field:<14} {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from . import quick_compare

    comp = quick_compare(args.app, platform=args.platform,
                         nodes=args.nodes, n_runs=args.runs,
                         seed=args.seed)
    print(f"{args.app} on {args.platform}, {args.nodes} nodes "
          f"({comp.linux.n_threads} HW threads):")
    print(f"  Linux    : {comp.linux.mean_time:9.3f} s "
          f"(+/- {comp.linux.std_time:.3f})")
    print(f"  McKernel : {comp.mckernel.mean_time:9.3f} s "
          f"(+/- {comp.mckernel.std_time:.3f})")
    print(f"  McKernel relative performance: "
          f"{comp.relative_performance:.3f} "
          f"({comp.speedup_percent:+.1f}%)")
    b = comp.linux.breakdown
    print(f"  Linux breakdown [s]: compute={b.compute:.2f} tlb={b.tlb:.3f} "
          f"churn={b.churn:.3f} collective={b.collective:.3f} "
          f"noise={b.noise:.3f} init={b.init:.3f}")
    return 0


def _cmd_fwq(args: argparse.Namespace) -> int:
    from .apps.fwq import FwqConfig, run_fwq
    from .platform import NoiseSwitches, PlatformSpec, build
    from .units import to_us

    machine = "fugaku" if args.platform == "fugaku" else "oakforest-pacs"
    if args.tuning == "untuned":
        tuning = "untuned"
    else:
        tuning = ("fugaku-production" if args.platform == "fugaku"
                  else "ofp-default")
    spec = PlatformSpec(
        name=f"fwq/{args.platform}/{args.os}/{tuning}",
        machine=machine, os_kind=args.os, tuning=tuning,
        # Single-node, short-horizon characterisation: node-level
        # straggler events would only distort a seeded short run.
        noise=NoiseSwitches(include_stragglers=False),
    )
    resolved = build(spec)
    rng = np.random.default_rng(args.seed)
    result = run_fwq(resolved.noise_sources(),
                     FwqConfig(duration=args.duration), rng)
    print(f"FWQ on {resolved.machine.name} / {args.os} "
          f"({resolved.tuning.name}), {args.duration:.0f} s:")
    print(f"  iterations       : {len(result.iteration_lengths)}")
    print(f"  max noise length : {to_us(result.max_noise_length):.2f} us")
    print(f"  noise rate (Eq.2): {result.noise_rate:.3e}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .engine import ExecutionEngine

    engine = ExecutionEngine()
    written = engine.export_experiments(args.directory,
                                        ids=args.ids or None,
                                        fast=not args.full, seed=args.seed)
    for eid, paths in written.items():
        print(f"{eid}:")
        for p in paths:
            print(f"  {p}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_cmd == "summarize":
        from .obs.attribution import NoiseAttribution

        attribution = NoiseAttribution.from_jsonl(args.file)
        print(attribution.report(top_n=args.top))
        return 0

    # trace run
    from .obs.runtrace import trace_experiment

    jobs = _auto_jobs() if args.jobs == 0 else args.jobs
    traced = trace_experiment(args.id, fast=not args.full, seed=args.seed,
                              jobs=jobs, node_slice=not args.no_node_slice)
    path = traced.write(args.out)
    counts = traced.tracer.layer_counts()
    print(f"{args.id}: {len(traced.tracer)} events -> {path}")
    print("  layers: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    if traced.tracer.dropped:
        print(f"  ring overflow: {traced.tracer.dropped} event(s) dropped "
              "(raise --buffer)", file=sys.stderr)
    if args.jsonl:
        print(f"  event log -> {traced.write_jsonl(args.jsonl)}")
    if args.summary:
        print()
        print(traced.attribution().report(top_n=args.top))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .engine import ExecutionEngine
    from .obs.export import prometheus_text
    from .obs.metrics import MetricsRegistry

    jobs = _auto_jobs() if args.jobs == 0 else args.jobs
    metrics = MetricsRegistry()
    engine = ExecutionEngine.from_options(jobs=jobs,
                                          cache=_make_cache(args),
                                          counters=metrics)
    with engine.session():
        for eid in args.ids:
            engine.run_experiment(eid, fast=not args.full, seed=args.seed)
            metrics.counter("experiments_run", experiment=eid).inc()
    sys.stdout.write(prometheus_text(metrics))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve

    summary = serve(directory=args.dir, workers=args.workers,
                    drain=args.drain, poll_interval=args.poll,
                    lease_ticks=args.lease_ticks,
                    max_retries=args.max_retries, backoff=args.backoff,
                    max_polls=args.max_polls, chaos=args.chaos,
                    telemetry=args.telemetry)
    if "worker" in summary:
        print(f"worker {summary['worker']}: {summary['executed']} job(s) "
              f"executed, {summary['failed']} failed, "
              f"{summary['leases_broken']} lease(s) broken, "
              f"{summary['discarded']} attempt(s) discarded")
    else:
        print(f"fleet of {summary['workers']} worker(s) finished "
              f"(exit codes: {summary['worker_exit_codes']})")
    return summary["exit_code"]


def _cmd_submit(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .service import JobQueue, JobSpec, load_jobspec

    if bool(args.spec) == bool(args.experiment):
        raise ConfigurationError(
            "submit takes exactly one of: a SPEC.json file, or "
            "--experiment ID")
    if args.experiment:
        jobspec = JobSpec.for_experiment(args.experiment,
                                         fast=not args.full,
                                         seed=args.seed)
    else:
        try:
            with open(args.spec, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read spec {args.spec!r}: {exc}")
        jobspec = load_jobspec(text)
    queue = JobQueue(args.dir)
    # Bare id on stdout so scripts can do JOB=$(repro submit ...).
    print(queue.submit(jobspec))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .service import JobQueue, JobState

    # Read-only (create=False): asking about an empty service is a
    # question, not a reason to scaffold directories.
    queue = JobQueue(args.dir, create=False)
    if getattr(args, "json", False):
        return _status_json(queue, args.job)
    if not args.job and not queue.root.is_dir():
        print(f"no service directory at {queue.root} "
              "(nothing submitted yet — see 'repro submit')")
        return 0
    if args.job:
        view = queue.job(args.job)
        for key, value in sorted(view.to_dict().items()):
            print(f"{key:<10} {value}")
        claim = queue.read_claim(args.job)
        if claim:
            print(f"{'claim':<10} worker={claim.get('worker', '?')} "
                  f"attempt={claim.get('attempt', '?')} "
                  f"heartbeat={claim.get('heartbeat', '?')}")
        if view.state is JobState.DONE:
            print(f"{'artifacts':<10} "
                  f"{len(queue.result_files(args.job))} file(s) in "
                  f"{queue.result_dir(args.job)}")
        return 1 if view.state is JobState.FAILED else 0
    table = queue.table()
    if not table:
        print(f"no jobs under {queue.root}")
        return 0
    print(f"{'job':<20} {'state':<9} {'attempts':<9} {'kind':<11} worker")
    for job_id in sorted(table):
        view = table[job_id]
        print(f"{view.job_id:<20} {view.state.value:<9} "
              f"{view.attempts:<9} {view.kind:<11} {view.worker}")
    return 0


def _status_json(queue, job: "str | None") -> int:
    """``status --json``: the same facts as the text form, as one
    canonical-JSON document (sorted keys, no whitespace drift — safe
    to diff across invocations)."""
    from .obs.export import canonical_json
    from .service import JobState

    if not job:
        table = queue.table() if queue.root.is_dir() else {}
        print(canonical_json(
            {"jobs": [table[j].to_dict() for j in sorted(table)]}))
        return 0
    view = queue.job(job)
    artifacts = []
    if view.state is JobState.DONE:
        base = queue.result_dir(job)
        artifacts = [str(p.relative_to(base))
                     for p in queue.result_files(job)]
    print(canonical_json({
        "artifacts": artifacts,
        "claim": queue.read_claim(job),
        "job": view.to_dict(),
    }))
    return 1 if view.state is JobState.FAILED else 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    import pathlib
    import shutil

    from .errors import ServiceError
    from .service import JobQueue

    queue = JobQueue(args.dir, create=False)
    if not queue.root.is_dir():
        raise ServiceError(
            f"no service directory at {queue.root} "
            "(nothing submitted yet — see 'repro submit')")
    files = queue.result_files(args.job)
    if not args.out:
        for path in files:
            print(path)
        return 0
    base = queue.result_dir(args.job)
    outdir = pathlib.Path(args.out)
    for path in files:
        dest = outdir / path.relative_to(base)
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(path, dest)
        print(dest)
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    if args.service_cmd == "verify":
        from .service.fsck import report_json, verify_service

        report = verify_service(args.dir, repair=args.repair)
        print(report_json(report))
        return 0 if report["ok"] else 1
    if args.service_cmd == "status":
        return _cmd_status(args)

    from .obs.fleet import FleetAggregator

    agg = FleetAggregator.from_service_dir(args.dir)
    if args.service_cmd == "top":
        print(agg.top())
        return 0

    # service report [--format json|prom|chrome] [--check [SLO.json]]
    renders = {"json": agg.report_json, "prom": agg.prometheus,
               "chrome": agg.chrome}
    sys.stdout.write(renders[args.format]())
    if args.check is None:
        return 0
    from .obs.fleet import load_slo

    slo = load_slo(args.check) if args.check else None
    result = agg.check(slo)
    # The report itself owns stdout (scripts pipe/cmp it); verdicts
    # are operator-facing commentary, so they go to stderr.
    for violation in result["violations"]:
        print(f"SLO violation: {violation}", file=sys.stderr)
    print("SLO check: " + ("ok" if result["ok"] else
                           f"{len(result['violations'])} violation(s)"),
          file=sys.stderr)
    return 0 if result["ok"] else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.chaos_cmd == "points":
        from .chaos.hooks import CRASH_POINTS, WRITE_SITES

        for site in CRASH_POINTS:
            kind = "write" if site in WRITE_SITES else "control"
            print(f"{site:<28} {kind}")
        return 0

    # chaos soak
    from .chaos.soak import run_soak
    from .chaos.spec import ChaosSpec
    from .obs.export import canonical_json

    spec = ChaosSpec.load(args.spec) if args.spec else None
    report = run_soak(args.directory, rounds=args.rounds, seed=args.seed,
                      action=args.action, p=args.p,
                      max_fires=args.max_fires, spec=spec)
    print(canonical_json(report))
    return 0 if report["ok"] else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.analyze_cmd == "lint":
        from .analysis.linter import run_lint

        return run_lint(
            args.paths or None,
            baseline_path=args.baseline,
            no_baseline=args.no_baseline,
            output_format="json" if args.json else "text",
            list_rules=args.list_rules,
            prune_baseline=args.prune_baseline,
        )

    if args.analyze_cmd == "crash":
        from .analysis.crashsafe import run_crash

        return run_crash(
            args.paths or None,
            baseline_path=args.baseline,
            no_baseline=args.no_baseline,
            output_format="json" if args.json else "text",
            docs=args.docs,
            prune_baseline=args.prune_baseline,
        )

    if args.analyze_cmd == "rules":
        from .analysis.linter import run_rules

        return run_rules(
            output_format="json" if args.json else "text")

    # analyze race
    from .analysis.runrace import analyze_races

    run = analyze_races(args.id, fast=not args.full, seed=args.seed,
                        node_slice=not args.no_node_slice)
    print(run.report())
    if args.out:
        print(f"race report -> {run.write(args.out)}")
    return 0 if run.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Linux vs. Lightweight Multi-kernels "
                    "for HPC' (SC '21)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and applications")

    p_exp = sub.add_parser("experiment", aliases=["experiments"],
                           help="run paper experiments")
    p_exp.add_argument("ids", nargs="+", help="experiment ids (see list)")
    p_exp.add_argument("--full", action="store_true")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for sweep cells "
                            "(0 = one per available CPU; default 1)")
    p_exp.add_argument("--stats", action="store_true",
                       help="print executor/cache timing counters")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="disable the memoized run cache")
    p_exp.add_argument("--cache-dir", metavar="DIR",
                       help="run cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-runs)")
    p_exp.add_argument("--spec", metavar="FILE",
                       help="platform spec JSON to re-target "
                            "platform-parameterised experiments at")
    p_exp.add_argument("--trace", metavar="FILE",
                       help="also record a cross-layer trace and write "
                            "it as Chrome trace JSON (output and cache "
                            "keys are unchanged)")

    p_plat = sub.add_parser("platform",
                            help="list, show or validate platform specs")
    p_plat.add_argument("action", choices=["list", "show", "validate"])
    p_plat.add_argument("name", nargs="?",
                        help="platform name (show) or spec JSON file "
                             "(validate)")

    p_run = sub.add_parser(
        "run", help="execute one run/platform spec JSON")
    p_run.add_argument("spec", help="RunSpec or PlatformSpec JSON file")
    p_run.add_argument("--app", help="application (with a platform spec)")
    p_run.add_argument("--nodes", type=int, default=1024)
    p_run.add_argument("--runs", type=int, default=3)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--no-cache", action="store_true",
                       help="disable the memoized run cache")
    p_run.add_argument("--cache-dir", metavar="DIR",
                       help="run cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-runs)")

    p_cache = sub.add_parser(
        "cache", help="inspect, clear, verify or garbage-collect the "
                      "run cache")
    p_cache.add_argument("action", choices=["info", "clear", "verify",
                                            "gc"])
    p_cache.add_argument("--cache-dir", metavar="DIR",
                         help="run cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro-runs)")
    p_cache.add_argument("--max-age-days", type=float, metavar="DAYS",
                         help="gc: prune disk entries older than DAYS")
    p_cache.add_argument("--max-bytes", type=int, metavar="N",
                         help="gc: prune oldest entries until the disk "
                              "tier fits N bytes")

    p_cmp = sub.add_parser("compare", help="Linux vs McKernel for one app")
    p_cmp.add_argument("app")
    p_cmp.add_argument("--platform", default="fugaku",
                       help="registered platform name or alias "
                            "(fugaku, ofp, ...; see 'platform list')")
    p_cmp.add_argument("--nodes", type=int, default=1024)
    p_cmp.add_argument("--runs", type=int, default=3)
    p_cmp.add_argument("--seed", type=int, default=0)

    p_exp_out = sub.add_parser(
        "export", help="run experiments and write JSON/CSV/text outputs")
    p_exp_out.add_argument("directory")
    p_exp_out.add_argument("ids", nargs="*",
                           help="experiment ids (default: all)")
    p_exp_out.add_argument("--full", action="store_true")
    p_exp_out.add_argument("--seed", type=int, default=0)

    p_trace = sub.add_parser(
        "trace", help="record or summarize cross-layer traces")
    trace_sub = p_trace.add_subparsers(dest="trace_cmd", required=True)
    p_tr_run = trace_sub.add_parser(
        "run", help="run one experiment with tracing on")
    p_tr_run.add_argument("id", help="experiment id (see list)")
    p_tr_run.add_argument("--out", default="trace.json", metavar="FILE",
                          help="Chrome trace output (default trace.json; "
                               "open at https://ui.perfetto.dev)")
    p_tr_run.add_argument("--jsonl", metavar="FILE",
                          help="also write the raw event log as JSONL")
    p_tr_run.add_argument("--full", action="store_true")
    p_tr_run.add_argument("--seed", type=int, default=0)
    p_tr_run.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes (0 = one per CPU); the "
                               "trace bytes are identical for any value")
    p_tr_run.add_argument("--no-node-slice", action="store_true",
                          help="skip the synthetic cross-layer node "
                               "slice; trace only what the experiment "
                               "itself exercises")
    p_tr_run.add_argument("--summary", action="store_true",
                          help="print the noise-attribution ranking")
    p_tr_run.add_argument("--top", type=int, default=10, metavar="N",
                          help="rows in the --summary ranking")
    p_tr_sum = trace_sub.add_parser(
        "summarize", help="rank interference actors from a JSONL log")
    p_tr_sum.add_argument("file", help="trace JSONL (from trace run "
                                       "--jsonl or experiments --trace)")
    p_tr_sum.add_argument("--top", type=int, default=10, metavar="N")

    p_metrics = sub.add_parser(
        "metrics", help="run experiments, dump Prometheus-format metrics")
    p_metrics.add_argument("ids", nargs="+", help="experiment ids")
    p_metrics.add_argument("--full", action="store_true")
    p_metrics.add_argument("--seed", type=int, default=0)
    p_metrics.add_argument("--jobs", type=int, default=1, metavar="N")
    p_metrics.add_argument("--no-cache", action="store_true")
    p_metrics.add_argument("--cache-dir", metavar="DIR")

    p_ana = sub.add_parser(
        "analyze", help="determinism lint, crash-consistency lint and "
                        "simulated-race detection")
    ana_sub = p_ana.add_subparsers(dest="analyze_cmd", required=True)
    p_lint = ana_sub.add_parser(
        "lint", help="run the determinism sanitizer (DET001..DET010)")
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "installed repro package)")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="suppression baseline JSON (default: the "
                             "checked-in analysis/baseline.json)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="report every finding, suppressing nothing")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline dropping stale "
                             "entries; exit 1 when anything was pruned")
    p_crash = ana_sub.add_parser(
        "crash", help="run the crash-consistency analyzer "
                      "(CC001..CC009)")
    p_crash.add_argument("paths", nargs="*",
                         help="files/directories to scan (default: "
                              "the installed repro package)")
    p_crash.add_argument("--baseline", metavar="FILE",
                         help="suppression baseline JSON (default: "
                              "the checked-in "
                              "analysis/crash_baseline.json)")
    p_crash.add_argument("--no-baseline", action="store_true",
                         help="report every finding, suppressing "
                              "nothing")
    p_crash.add_argument("--json", action="store_true",
                         help="canonical-JSON report on stdout")
    p_crash.add_argument("--docs", metavar="FILE",
                         help="chaos catalogue docs to cross-check "
                              "(default: docs/CHAOS.md discovered "
                              "near the scan targets)")
    p_crash.add_argument("--prune-baseline", action="store_true",
                         help="rewrite the baseline dropping stale "
                              "entries; exit 1 when anything was "
                              "pruned")
    p_rules = ana_sub.add_parser(
        "rules", help="list every registered lint rule (DET + CC)")
    p_rules.add_argument("--json", action="store_true",
                         help="canonical-JSON catalogue on stdout")
    p_race = ana_sub.add_parser(
        "race", help="run one experiment under the race detector")
    p_race.add_argument("id", help="experiment id (see list)")
    p_race.add_argument("--full", action="store_true")
    p_race.add_argument("--seed", type=int, default=0)
    p_race.add_argument("--out", metavar="FILE",
                        help="also write the canonical JSON race report")
    p_race.add_argument("--no-node-slice", action="store_true",
                        help="skip the synthetic node slice; observe "
                             "only what the experiment itself exercises")

    service_dir_help = ("service directory (default: $REPRO_SERVICE_DIR "
                        "or ~/.local/state/repro-service)")
    p_serve = sub.add_parser(
        "serve", help="run a job-queue worker (or worker fleet)")
    p_serve.add_argument("--dir", metavar="DIR", help=service_dir_help)
    p_serve.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes (N > 1 spawns a fleet "
                              "of OS processes; default 1, in-process)")
    p_serve.add_argument("--drain", action="store_true",
                         help="exit once every job is terminal instead "
                              "of serving forever")
    p_serve.add_argument("--poll", type=float, default=0.1, metavar="S",
                         help="idle poll interval, seconds (default 0.1)")
    p_serve.add_argument("--lease-ticks", type=int, default=50,
                         metavar="K",
                         help="break a lease after its heartbeat stalls "
                              "for K of this worker's polls (default 50)")
    p_serve.add_argument("--max-retries", type=int, default=3, metavar="N",
                         help="attempts per job beyond the first "
                              "(default 3)")
    p_serve.add_argument("--backoff", type=float, default=0.0,
                         metavar="S",
                         help="base backoff before re-running a failed "
                              "attempt, seconds (default 0)")
    p_serve.add_argument("--max-polls", type=int, default=None,
                         help=argparse.SUPPRESS)
    p_serve.add_argument("--chaos", metavar="FILE",
                         help="inject crashes per this ChaosSpec JSON "
                              "(propagated to every fleet worker; see "
                              "docs/CHAOS.md)")
    p_serve.add_argument("--telemetry", action="store_true",
                         help="spool lifecycle events, trace segments "
                              "and counter snapshots to telemetry/ "
                              "(read back with 'repro service top' / "
                              "'report')")

    p_svc = sub.add_parser(
        "service", help="service-directory maintenance and health "
                        "(fsck, top, report)")
    svc_sub = p_svc.add_subparsers(dest="service_cmd", required=True)
    p_verify = svc_sub.add_parser(
        "verify", help="check service-directory invariants; optionally "
                       "repair the safely repairable")
    p_verify.add_argument("--repair", action="store_true",
                          help="perform the safe repairs (quarantine "
                               "debris, heal the journal tail, re-queue "
                               "stranded jobs); never deletes anything")
    p_verify.add_argument("--dir", metavar="DIR", help=service_dir_help)
    p_svc_status = svc_sub.add_parser(
        "status", help="alias for 'repro status' (job table / one job)")
    p_svc_status.add_argument("job", nargs="?",
                              help="job id (default: all)")
    p_svc_status.add_argument("--json", action="store_true",
                              help="canonical-JSON output (byte-stable; "
                                   "for scripts)")
    p_svc_status.add_argument("--dir", metavar="DIR",
                              help=service_dir_help)
    p_top = svc_sub.add_parser(
        "top", help="one-screen fleet health console (queue, goodput, "
                    "per-worker spools)")
    p_top.add_argument("--dir", metavar="DIR", help=service_dir_help)
    p_report = svc_sub.add_parser(
        "report", help="deterministic fleet report (byte-identical for "
                       "any worker count); optionally check SLOs")
    p_report.add_argument("--format", choices=["json", "prom", "chrome"],
                          default="json",
                          help="json (canonical report), prom "
                               "(Prometheus exposition) or chrome "
                               "(trace-viewer JSON); default json")
    p_report.add_argument("--check", nargs="?", const="", default=None,
                          metavar="SLO.json",
                          help="evaluate SLO rules (default thresholds, "
                               "or the JSON rule file) and exit 1 on "
                               "violation; verdicts go to stderr")
    p_report.add_argument("--dir", metavar="DIR", help=service_dir_help)

    p_chaos = sub.add_parser(
        "chaos", help="deterministic crash injection and the soak")
    chaos_sub = p_chaos.add_subparsers(dest="chaos_cmd", required=True)
    chaos_sub.add_parser(
        "points", help="list the crash-point catalogue")
    p_soak = chaos_sub.add_parser(
        "soak", help="crash/repair/restart rounds against a golden "
                     "workload; asserts clean verify and byte-identical "
                     "artifacts")
    p_soak.add_argument("directory",
                        help="base directory for golden + round state "
                             "(each round needs a fresh subdirectory)")
    p_soak.add_argument("--rounds", type=int, default=3, metavar="N")
    p_soak.add_argument("--seed", type=int, default=0,
                        help="base schedule seed (round r uses seed+r)")
    p_soak.add_argument("--action", choices=["kill", "torn-write",
                                             "io-error"],
                        default="kill",
                        help="action at every applicable crash point "
                             "(default kill)")
    p_soak.add_argument("--p", type=float, default=1.0,
                        help="per-evaluation fire probability")
    p_soak.add_argument("--max-fires", type=int, default=1,
                        help="fires per site per round (default 1)")
    p_soak.add_argument("--spec", metavar="FILE",
                        help="full ChaosSpec JSON (overrides --action/"
                             "--p/--max-fires)")

    p_submit = sub.add_parser(
        "submit", help="submit a run/sweep/experiment job to the queue")
    p_submit.add_argument("spec", nargs="?",
                          help="RunSpec/JobSpec JSON file (or a JSON "
                               "list of RunSpecs for a sweep)")
    p_submit.add_argument("--experiment", metavar="ID",
                          help="submit a registered experiment instead "
                               "of a spec file")
    p_submit.add_argument("--full", action="store_true",
                          help="experiment jobs: paper-scale layout")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--dir", metavar="DIR", help=service_dir_help)

    p_status = sub.add_parser(
        "status", help="show the job table, or one job's state")
    p_status.add_argument("job", nargs="?", help="job id (default: all)")
    p_status.add_argument("--json", action="store_true",
                          help="canonical-JSON output (byte-stable; "
                               "for scripts)")
    p_status.add_argument("--dir", metavar="DIR", help=service_dir_help)

    p_fetch = sub.add_parser(
        "fetch", help="list or copy a finished job's artifacts")
    p_fetch.add_argument("job", help="job id")
    p_fetch.add_argument("--out", metavar="DIR",
                         help="copy artifacts here (default: just list "
                              "their paths)")
    p_fetch.add_argument("--dir", metavar="DIR", help=service_dir_help)

    p_fwq = sub.add_parser("fwq", help="run the FWQ noise benchmark")
    p_fwq.add_argument("--platform", choices=["fugaku", "ofp"],
                       default="fugaku")
    p_fwq.add_argument("--os", choices=["linux", "mckernel"],
                       default="linux")
    p_fwq.add_argument("--tuning", choices=["production", "untuned"],
                       default="production")
    p_fwq.add_argument("--duration", type=float, default=60.0)
    p_fwq.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "experiments": _cmd_experiment,
        "platform": _cmd_platform,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "export": _cmd_export,
        "fwq": _cmd_fwq,
        "cache": _cmd_cache,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "fetch": _cmd_fetch,
        "service": _cmd_service,
        "chaos": _cmd_chaos,
    }[args.command]
    from .errors import ReproError

    try:
        return handler(args)
    except ReproError as exc:
        # Library failures are user-facing diagnostics, not tracebacks.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
