"""Command-line interface.

    python -m repro list
    python -m repro experiments table2 [--full] [--seed N] [--jobs N] [--stats]
    python -m repro compare LQCD --platform fugaku --nodes 2048
    python -m repro fwq --platform fugaku --os mckernel --duration 60
    python -m repro cache info|clear

The CLI is a thin shell over the library; anything it prints can be
obtained programmatically from :mod:`repro.experiments` and
:func:`repro.quick_compare`.

Experiment runs fan their sweeps out over ``--jobs`` worker processes
(``0`` = one per available CPU) and memoize RunResults in the run
cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-runs``; disable with
``--no-cache``), so regenerating a figure is parallel the first time
and a cache replay afterwards — byte-identical output either way.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _auto_jobs() -> int:
    """One worker per CPU actually available to this process."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without affinity masks
        return max(1, os.cpu_count() or 1)


def _make_cache(args: argparse.Namespace):
    from .perf.cache import RunCache

    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return RunCache(args.cache_dir)
    return RunCache.default()


def _cmd_list(args: argparse.Namespace) -> int:
    from .apps import ALL_PROFILES
    from .experiments import EXPERIMENTS

    print("experiments:")
    for eid, (title, _) in EXPERIMENTS.items():
        print(f"  {eid:<10} {title}")
    print("\napplications:")
    for name, factory in ALL_PROFILES.items():
        p = factory()
        print(f"  {name:<10} {p.description}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import run_experiment
    from .perf.context import perf_context
    from .perf.counters import PerfCounters

    jobs = _auto_jobs() if args.jobs == 0 else args.jobs
    counters = PerfCounters()
    with perf_context(jobs=jobs, cache=_make_cache(args), counters=counters):
        for eid in args.ids:
            result = run_experiment(eid, fast=not args.full, seed=args.seed)
            print(result.render())
            if result.paper_reference:
                print(f"[paper reference: {result.paper_reference}]")
            print()
    if args.stats:
        print(counters.report())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = _make_cache(args)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached run(s) from {cache.directory}")
    else:
        info = cache.info()
        for field, value in info.items():
            print(f"{field:<14} {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from . import quick_compare

    comp = quick_compare(args.app, platform=args.platform,
                         nodes=args.nodes, n_runs=args.runs,
                         seed=args.seed)
    print(f"{args.app} on {args.platform}, {args.nodes} nodes "
          f"({comp.linux.n_threads} HW threads):")
    print(f"  Linux    : {comp.linux.mean_time:9.3f} s "
          f"(+/- {comp.linux.std_time:.3f})")
    print(f"  McKernel : {comp.mckernel.mean_time:9.3f} s "
          f"(+/- {comp.mckernel.std_time:.3f})")
    print(f"  McKernel relative performance: "
          f"{comp.relative_performance:.3f} "
          f"({comp.speedup_percent:+.1f}%)")
    b = comp.linux.breakdown
    print(f"  Linux breakdown [s]: compute={b.compute:.2f} tlb={b.tlb:.3f} "
          f"churn={b.churn:.3f} collective={b.collective:.3f} "
          f"noise={b.noise:.3f} init={b.init:.3f}")
    return 0


def _cmd_fwq(args: argparse.Namespace) -> int:
    from .apps.fwq import FwqConfig, run_fwq_on
    from .hardware.machines import fugaku, oakforest_pacs
    from .kernel.linux import LinuxKernel
    from .kernel.tuning import fugaku_production, ofp_default, untuned
    from .mckernel.lwk import boot_mckernel
    from .units import to_us

    if args.platform == "fugaku":
        machine, tuning = fugaku(), fugaku_production()
    else:
        machine, tuning = oakforest_pacs(), ofp_default()
    if args.tuning == "untuned":
        tuning = untuned()
    if args.os == "linux":
        os_instance = LinuxKernel(machine.node, tuning,
                                  interconnect=machine.interconnect)
    else:
        os_instance = boot_mckernel(machine.node, host_tuning=tuning)
    rng = np.random.default_rng(args.seed)
    result = run_fwq_on(os_instance, FwqConfig(duration=args.duration), rng)
    print(f"FWQ on {machine.name} / {args.os} ({tuning.name}), "
          f"{args.duration:.0f} s:")
    print(f"  iterations       : {len(result.iteration_lengths)}")
    print(f"  max noise length : {to_us(result.max_noise_length):.2f} us")
    print(f"  noise rate (Eq.2): {result.noise_rate:.3e}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .experiments.export import export_all

    written = export_all(args.directory, ids=args.ids or None,
                         fast=not args.full, seed=args.seed)
    for eid, paths in written.items():
        print(f"{eid}:")
        for p in paths:
            print(f"  {p}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Linux vs. Lightweight Multi-kernels "
                    "for HPC' (SC '21)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and applications")

    p_exp = sub.add_parser("experiment", aliases=["experiments"],
                           help="run paper experiments")
    p_exp.add_argument("ids", nargs="+", help="experiment ids (see list)")
    p_exp.add_argument("--full", action="store_true")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for sweep cells "
                            "(0 = one per available CPU; default 1)")
    p_exp.add_argument("--stats", action="store_true",
                       help="print executor/cache timing counters")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="disable the memoized run cache")
    p_exp.add_argument("--cache-dir", metavar="DIR",
                       help="run cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-runs)")

    p_cache = sub.add_parser("cache", help="inspect or clear the run cache")
    p_cache.add_argument("action", choices=["info", "clear"])
    p_cache.add_argument("--cache-dir", metavar="DIR",
                         help="run cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro-runs)")

    p_cmp = sub.add_parser("compare", help="Linux vs McKernel for one app")
    p_cmp.add_argument("app")
    p_cmp.add_argument("--platform", choices=["fugaku", "ofp"],
                       default="fugaku")
    p_cmp.add_argument("--nodes", type=int, default=1024)
    p_cmp.add_argument("--runs", type=int, default=3)
    p_cmp.add_argument("--seed", type=int, default=0)

    p_exp_out = sub.add_parser(
        "export", help="run experiments and write JSON/CSV/text outputs")
    p_exp_out.add_argument("directory")
    p_exp_out.add_argument("ids", nargs="*",
                           help="experiment ids (default: all)")
    p_exp_out.add_argument("--full", action="store_true")
    p_exp_out.add_argument("--seed", type=int, default=0)

    p_fwq = sub.add_parser("fwq", help="run the FWQ noise benchmark")
    p_fwq.add_argument("--platform", choices=["fugaku", "ofp"],
                       default="fugaku")
    p_fwq.add_argument("--os", choices=["linux", "mckernel"],
                       default="linux")
    p_fwq.add_argument("--tuning", choices=["production", "untuned"],
                       default="production")
    p_fwq.add_argument("--duration", type=float, default=60.0)
    p_fwq.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "experiments": _cmd_experiment,
        "compare": _cmd_compare,
        "export": _cmd_export,
        "fwq": _cmd_fwq,
        "cache": _cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
