"""One-command traced runs: ``repro trace run <experiment>``.

:func:`trace_experiment` wraps any registered experiment in an ambient
:func:`~repro.obs.tracer.tracing` scope plus a fresh
:class:`~repro.obs.metrics.MetricsRegistry`, so every instrumentation
hook along the way — scheduler ticks, IKC deliveries, proxy crashes,
batch-job attempts, fault injections, sweep cells — lands in one
buffer, ready for the :mod:`repro.obs.export` writers.

Not every experiment exercises every layer (``table1`` never boots a
DES, ``eq1`` never sweeps), so by default the traced run is prefixed
with :func:`capture_node_slice`: a small, fully deterministic slice of
simulated node life — an ftrace capture on an untuned Linux kernel, an
LWK process issuing local and delegated syscalls through its proxy
(including a crash/respawn cycle), an unreliable IKC channel under a
DES engine, a fault-injected batch scheduler, and a one-cell perf
sweep.  That guarantees the exported trace carries events from all
eight layers regardless of which experiment rides behind it, which is
what the CI smoke step asserts.

Determinism: everything here is seeded; the trace bytes depend only on
``(experiment_id, fast, seed, node_slice)`` — never on ``--jobs``,
wall time, or process scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .metrics import MetricsRegistry
from .tracer import Tracer, tracing

#: Default ring size for traced runs: big enough that a fast-mode
#: experiment plus the node slice never wraps.
DEFAULT_BUFFER = 1_000_000


def capture_node_slice(seed: int = 0) -> None:
    """Emit a deterministic cross-layer slice of simulated node life
    into the ambient tracer (a no-op when tracing is disabled).

    The slice touches every instrumented layer exactly the way the
    live components do — by running them, not by faking events — so a
    trace viewer shows one representative of each mechanism the paper
    discusses: kernel noise actors (§4.2.1), syscall delegation over
    IKC (§5), the proxy's crash fragility (§6), batch-scheduler retry
    loops and fault injection, and a perf-executor sweep cell.
    """
    from ..apps import lqcd
    from ..errors import ProxyCrashed
    from ..faults.injector import FaultInjector
    from ..faults.spec import FaultSpec
    from ..hardware import a64fx_testbed
    from ..kernel.ftrace import Ftrace, TraceEvent
    from ..kernel.linux import LinuxKernel
    from ..kernel.tuning import fugaku_production, untuned
    from ..mckernel.ikc import IkcChannel, IkcSpec
    from ..mckernel.lwk import boot_mckernel
    from ..runtime.batchsched import BatchJob, BatchScheduler
    from ..runtime.job import OsChoice
    from ..runtime.runner import compare
    from ..sim.engine import Engine
    from .tracer import get_tracer

    tracer = get_tracer()
    if tracer is None:
        return
    machine = a64fx_testbed()
    node = machine.node

    # -- hw: the platform under the microscope -------------------------
    tracer.event("hw", "node", ts=0.0, actor=machine.name,
                 arch=node.arch, cores=node.topology.physical_cores,
                 interconnect=machine.interconnect)

    # -- kernel: ftrace interference capture on an untuned host --------
    # (the §4.2.1 workflow; Ftrace.record re-emits into the tracer)
    linux = LinuxKernel(node, untuned())
    ft = Ftrace()
    ft.start()
    rng = np.random.default_rng(seed)
    app_cpu = linux.app_cpu_ids()[0]
    for task in linux.noise_tasks_on_app_cores():
        n_events = min(32, int(rng.poisson(10.0 / task.interval)))
        for ts in np.sort(rng.uniform(0.0, 10.0, n_events)):
            ft.record(TraceEvent(
                timestamp=float(ts), cpu_id=app_cpu, actor=task.name,
                event="sched_switch",
                duration=task.duration.sample_one(rng)))
    ft.stop()

    # -- lwk + proxy: delegation, then the §6 crash/respawn cycle ------
    mck = boot_mckernel(node, host_tuning=fugaku_production())
    proc = mck.spawn()
    proc.syscall("getpid")
    vma = proc.syscall("mmap", 1 << 20)
    fd = proc.syscall("open", "/scratch/input.dat", "r")
    proc.syscall("write", fd, 4096)
    proc.syscall("read", fd, 1024)
    proc.proxy.crash()
    try:
        proc.syscall("open", "/scratch/output.dat", "w")
    except ProxyCrashed:
        proc.proxy.respawn()
    fd = proc.syscall("open", "/scratch/output.dat", "w")
    proc.syscall("close", fd)
    proc.syscall("munmap", vma)
    proc.exit()

    # -- ikc: an unreliable channel under the DES ----------------------
    engine = Engine()
    injector = FaultInjector(FaultSpec(ikc_drop_prob=0.3, seed=seed))
    chan = IkcChannel(IkcSpec(drop_prob=0.3), name="lwk->linux",
                      drop_rng=injector.ikc_channel_rng("node-slice"))
    for payload in range(6):
        chan.post_async(engine, payload)
    engine.run()

    # -- sched + faults: a fault-injected batch trace ------------------
    engine = Engine()
    faults = FaultSpec(node_mtbf_hours=2.0, oom_per_node_hour=0.3,
                       proxy_crash_per_node_hour=0.3,
                       daemon_stall_per_node_hour=0.2,
                       max_retries=2, backoff_base=10.0, seed=seed)
    sched = BatchScheduler(engine, total_nodes=16, faults=faults)
    sched.submit(BatchJob("lin-a", n_nodes=8, runtime=3600.0,
                          estimate=4000.0, os_choice=OsChoice.LINUX))
    sched.submit(BatchJob("mck-b", n_nodes=8, runtime=3600.0,
                          estimate=4000.0, os_choice=OsChoice.MCKERNEL))
    sched.submit(BatchJob("lin-c", n_nodes=16, runtime=1800.0,
                          estimate=2000.0, os_choice=OsChoice.LINUX))
    engine.run()

    # -- perf: one Linux/McKernel sweep cell pair ----------------------
    compare(machine, lqcd.profile(),
            LinuxKernel(node, fugaku_production()),
            boot_mckernel(node, host_tuning=fugaku_production()),
            node_counts=[1], n_runs=1, seed=seed)


@dataclass
class TracedRun:
    """One experiment's result together with its trace and metrics."""

    experiment_id: str
    seed: int
    fast: bool
    result: object                   # the ExperimentResult
    tracer: Tracer
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def metadata(self) -> dict:
        """Deterministic trace metadata — intentionally excludes
        ``jobs`` (and anything else that must not change the bytes)."""
        return {"experiment": self.experiment_id, "seed": self.seed,
                "fast": self.fast}

    def chrome_json(self) -> str:
        from .export import chrome_trace_json

        return chrome_trace_json(self.tracer, metadata=self.metadata())

    def write(self, path: str) -> str:
        from .export import write_chrome_trace

        return write_chrome_trace(self.tracer, path,
                                  metadata=self.metadata())

    def write_jsonl(self, path: str) -> str:
        from .export import write_jsonl

        return write_jsonl(self.tracer, path)

    def attribution(self):
        from .attribution import NoiseAttribution

        return NoiseAttribution.from_tracer(self.tracer)


def trace_experiment(
    experiment_id: str,
    fast: bool = True,
    seed: int = 0,
    jobs: int = 1,
    node_slice: bool = True,
    buffer_size: int = DEFAULT_BUFFER,
    tracer: Optional[Tracer] = None,
) -> TracedRun:
    """Run one registered experiment with tracing on.

    The run executes under a fresh :class:`MetricsRegistry` and with
    the run cache disabled, so a traced run can never pollute cache
    keys or global counters; ``jobs`` still fans sweeps out, and the
    resulting trace is byte-identical for any ``jobs`` value.
    """
    from ..experiments.registry import run_experiment
    from ..perf.context import perf_context

    metrics = MetricsRegistry()
    if tracer is None:
        tracer = Tracer(buffer_size=buffer_size)
    with tracing(tracer):
        with perf_context(jobs=jobs, cache=None, counters=metrics):
            if node_slice:
                capture_node_slice(seed)
            result = run_experiment(experiment_id, fast=fast, seed=seed)
    return TracedRun(experiment_id=experiment_id, seed=seed, fast=fast,
                     result=result, tracer=tracer, metrics=metrics)
