"""Telemetry spool — the worker fleet's durable flight recorder.

Since PR 7 the system's real execution surface is a multi-process
worker fleet, and everything :mod:`repro.obs` observes in a worker —
metric snapshots, trace segments, job-lifecycle events — evaporates
when the worker exits (or is ``kill -9``'d by the chaos layer).  The
spool fixes that the same way the journal fixed queue state: each
worker appends canonical-JSONL records to its own file under
``<service-root>/telemetry/<worker-id>.jsonl``, one ``os.write`` per
record on an ``O_APPEND`` descriptor, fsync'd when ``durable=True`` —
so a crash loses at most the final record, and what survives is
exactly what the worker had acknowledged writing.

Differences from :class:`~repro.service.journal.Journal`, on purpose:

* **Single writer.**  A spool has exactly one writing source (the
  worker it is named after), so a torn tail is always *our own* crash
  evidence — the appender self-heals by truncating the fragment
  instead of refusing like the journal (whose refusal protects
  concurrent appenders from gluing records onto foreign fragments).
* **Best-effort reads.**  The journal is the queue's source of truth
  and interior corruption there is an integrity failure; a spool is
  telemetry, so :func:`read_spool` skips-and-counts damaged lines and
  lets ``repro service verify`` quarantine the evidence.

Records carry a per-spool logical clock (``lc``), never wall time, so
merged fleet views (:mod:`repro.obs.fleet`) sort deterministically.
The ``telemetry.append`` chaos site wraps the write, putting the spool
under the same torn-write/kill/io-error soak as every other durable
file in the service directory.
"""

from __future__ import annotations

import json
import os
import pathlib

from ..errors import ConfigurationError
from .export import canonical_json

__all__ = ["TelemetrySpool", "read_spool", "spool_dir"]

#: Record kinds a spool carries.  ``event`` — one job-lifecycle or
#: worker-lifecycle transition; ``segment`` — the layer/event summary
#: of one traced job execution; ``metrics`` — a point-in-time snapshot
#: of the worker's counters.
RECORD_KINDS = ("event", "metrics", "segment")

#: Subdirectory (under the service root) that holds the spools.
TELEMETRY_DIR = "telemetry"


def spool_dir(root: "str | os.PathLike") -> pathlib.Path:
    """Where a service directory's telemetry spools live."""
    return pathlib.Path(root) / TELEMETRY_DIR


def _torn_tail_bytes(fd: int) -> int:
    """Bytes past the last newline (0 when the tail is healthy) —
    the journal's torn-tail scan, inlined so the spool never depends
    on the service layer it observes."""
    size = os.fstat(fd).st_size
    if size == 0 or os.pread(fd, 1, size - 1) == b"\n":
        return 0
    torn = 0
    pos = size
    while pos > 0:
        step = min(4096, pos)
        chunk = os.pread(fd, step, pos - step)
        cut = chunk.rfind(b"\n")
        if cut >= 0:
            return torn + (len(chunk) - cut - 1)
        torn += len(chunk)
        pos -= step
    return torn


class TelemetrySpool:
    """One worker's append-only telemetry file.

    ``source`` names the writer (the worker id) and is stamped into
    every record; ``durable=True`` fsyncs each append, matching the
    journal's acked-record-survives-kill-9 contract.  The spool is
    single-writer: a torn tail found at append time is this source's
    own prior crash and is truncated (self-healed) before the new
    record lands.
    """

    def __init__(self, path: "str | os.PathLike", source: str,
                 durable: bool = True) -> None:
        if not source:
            raise ConfigurationError("a telemetry spool needs a source id")
        self.path = pathlib.Path(path)
        self.source = source
        self.durable = durable
        #: Per-spool logical clock: the deterministic record order the
        #: fleet aggregator merges on.  Never wall time.
        self.lc = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- recording -----------------------------------------------------

    def emit(self, kind: str, name: str, **fields: object) -> dict:
        """Append one record; returns it.  ``fields`` must be
        JSON-serializable annotations (job ids, counts — small)."""
        if kind not in RECORD_KINDS:
            raise ConfigurationError(
                f"unknown spool record kind {kind!r}; "
                f"known: {RECORD_KINDS}")
        record = dict(fields)
        record.update({"kind": kind, "lc": self.lc, "name": name,
                       "source": self.source})
        self.lc += 1
        self._append(record)
        return record

    def event(self, name: str, job: str = "", **fields: object) -> dict:
        """A lifecycle event (``submit``/``claim``/``run``/... on the
        job side, ``worker.start``/``worker.exit`` on the worker side)."""
        return self.emit("event", name, job=job, **fields)

    def segment(self, job: str, layers: dict, events: int,
                dropped: int) -> dict:
        """The trace-segment summary of one executed job: per-layer
        event counts from the execution-scoped tracer."""
        return self.emit("segment", "trace", job=job, layers=dict(layers),
                         events=int(events), dropped=int(dropped))

    def metrics(self, snapshot: dict) -> dict:
        """A point-in-time snapshot of the worker's counters."""
        return self.emit("metrics", "snapshot", **snapshot)

    # -- the append ----------------------------------------------------

    def _append(self, record: dict) -> None:
        from ..chaos.hooks import get_chaos

        data = (canonical_json(record) + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_RDWR,
                     0o644)
        try:
            torn = _torn_tail_bytes(fd)
            if torn:
                # Single writer: the fragment is our own prior crash.
                # Truncate it so the new record starts on a line
                # boundary (fsck quarantines fragments it finds first).
                os.ftruncate(fd, os.fstat(fd).st_size - torn)
            cz = get_chaos()
            if cz is None:
                os.write(fd, data)
            else:
                cz.write(fd, data, "telemetry.append")
            if self.durable:
                os.fsync(fd)
        finally:
            os.close(fd)


def read_spool(path: "str | os.PathLike"
               ) -> "tuple[list[dict], dict]":
    """Every intact record of one spool, plus a damage summary.

    Returns ``(records, problems)`` where ``problems`` is
    ``{"torn_tail": bool, "corrupt_lines": int}``.  A missing file is
    an empty spool.  An unparseable *final* line is a crash-truncated
    append (``torn_tail``); unparseable interior lines are counted and
    skipped — telemetry reads are best-effort, the journal stays the
    source of truth.
    """
    problems = {"torn_tail": False, "corrupt_lines": 0}
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError:
        return [], problems
    out: list[dict] = []
    lines = text.split("\n")
    for i, line in enumerate(lines):
        if not line:
            continue
        final = i == len(lines) - 1
        try:
            record = json.loads(line)
        except ValueError:
            if final:
                problems["torn_tail"] = True
            else:
                problems["corrupt_lines"] += 1
            continue
        if not isinstance(record, dict):
            if final:
                problems["torn_tail"] = True
            else:
                problems["corrupt_lines"] += 1
            continue
        out.append(record)
    return out, problems
