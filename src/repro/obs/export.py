"""Trace and metrics exporters — byte-deterministic artifacts.

Following the gem5 standardization argument (PAPERS.md): a reproducible
simulator must emit *machine-readable, versioned* stats artifacts, not
printed tables.  Three formats:

* **Chrome/Perfetto trace** (:func:`chrome_trace_json`) — the
  ``trace.json`` event format (``chrome://tracing``, https://ui.perfetto.dev):
  one process, one thread per instrumented layer, ``X`` (complete) and
  ``i`` (instant) phases, microsecond timestamps.
* **JSONL** (:func:`jsonl_lines`) — one JSON object per event, for
  ``grep``/``jq`` pipelines and :func:`repro.obs.attribution.NoiseAttribution.from_jsonl`.
* **Prometheus text** (:func:`prometheus_text`) — the
  :class:`~repro.obs.metrics.MetricsRegistry` as an exposition-format
  dump (``repro metrics``).

Every serialization is canonical — keys sorted, fixed separators,
events ordered by ``(ts, seq)``, timestamps rounded to 1 ns — so the
same seeded run always produces the identical bytes, which the
determinism tests assert and CI validates.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterator

from ..errors import ConfigurationError
from .tracer import LAYERS, Tracer

if TYPE_CHECKING:
    from .metrics import MetricsRegistry

#: Format version stamped into ``otherData`` (and bumped on layout
#: changes, like the cache's SCHEMA_VERSION).
TRACE_FORMAT_VERSION = 1

_SECONDS_TO_US = 1e6


def canonical_json(obj: object) -> str:
    """Canonical serialization — sorted keys, fixed separators — the
    one byte form every exporter, cache digest and race report shares.
    Public so other subsystems hash exactly what the exporters emit."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


_canon_json = canonical_json


def _us(seconds: float) -> float:
    """Simulated seconds → microseconds, rounded to 1 ns so float noise
    can never leak into the byte stream."""
    return round(seconds * _SECONDS_TO_US, 3)


def chrome_trace(tracer: Tracer, metadata: dict | None = None) -> dict:
    """The trace as a Chrome trace-event ``dict`` (JSON object format).

    Layers map to threads of one ``repro`` process; events are sorted
    by ``(layer, ts, seq)`` so the output is independent of interleaved
    record order across layers.
    """
    events: list[dict] = []
    for i, layer in enumerate(LAYERS):
        events.append({
            "ph": "M", "pid": 1, "tid": i, "name": "thread_name",
            "args": {"name": layer},
        })
    events.append({
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": "repro"},
    })
    if tracer.dropped:
        # Ring overflow is loss of evidence: surface it as a metadata
        # event (in addition to otherData.droppedEvents) so viewers
        # and downstream tooling can't miss it.
        events.append({
            "ph": "M", "pid": 1, "tid": 0, "name": "obs_dropped_total",
            "args": {"value": tracer.dropped},
        })
    recorded = sorted(tracer.events,
                      key=lambda ev: (ev.layer, ev.ts, ev.seq))
    for ev in recorded:
        args: dict = dict(ev.args)
        if ev.actor:
            args["actor"] = ev.actor
        entry = {
            "name": ev.name,
            "cat": ev.layer,
            "pid": 1,
            "tid": LAYERS.index(ev.layer),
            "ts": _us(ev.ts),
            "args": args,
        }
        if ev.is_span:
            entry["ph"] = "X"
            entry["dur"] = _us(ev.duration)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
    other = {"formatVersion": TRACE_FORMAT_VERSION,
             "droppedEvents": tracer.dropped,
             "layers": tracer.layer_counts()}
    if metadata:
        other.update(metadata)
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def chrome_trace_json(tracer: Tracer, metadata: dict | None = None) -> str:
    """Canonical (byte-deterministic) JSON text of :func:`chrome_trace`."""
    return _canon_json(chrome_trace(tracer, metadata)) + "\n"


def write_chrome_trace(tracer: Tracer, path: str,
                       metadata: dict | None = None) -> str:
    """Write ``trace.json``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(tracer, metadata))
    return path


def jsonl_lines(tracer: Tracer) -> Iterator[str]:
    """One canonical JSON object per event, in ``(ts, seq)`` order.

    A tracer that overflowed its ring additionally yields a trailer
    object carrying ``obs_dropped_total`` — the event stream must not
    read as complete when it is not.  Consumers key on ``layer`` to
    tell events from the trailer.
    """
    for ev in sorted(tracer.events, key=lambda e: (e.ts, e.seq)):
        yield _canon_json({
            "layer": ev.layer, "name": ev.name, "ts": _us(ev.ts),
            "dur": _us(ev.duration), "actor": ev.actor, "args": ev.args,
            "seq": ev.seq,
        })
    if tracer.dropped:
        yield _canon_json({"obs_dropped_total": tracer.dropped})


def write_jsonl(tracer: Tracer, path: str) -> str:
    """Write the JSONL event log; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        for line in jsonl_lines(tracer):
            fh.write(line + "\n")
    return path


def prometheus_text(registry: "MetricsRegistry",
                    prefix: str = "repro",
                    tracer: "Tracer | None" = None) -> str:
    """The registry in Prometheus exposition format.

    Metric names are sanitized (``.`` → ``_``) and prefixed; series are
    emitted in sorted order, so the dump is deterministic for a given
    registry state.  Wall-clock timings surface as
    ``<prefix>_timing_seconds{name="..."}``.  Passing a ``tracer``
    additionally emits ``<prefix>_obs_dropped_total`` — its ring
    overflow counter, so silent trace truncation has a metric.
    """
    def name_of(key) -> str:
        base = key[0].replace(".", "_").replace("-", "_")
        return f"{prefix}_{base}"

    def labels_of(key, extra: dict | None = None) -> str:
        pairs = list(key[1]) + sorted((extra or {}).items())
        if not pairs:
            return ""
        return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"

    def fmt(v: float) -> str:
        return str(int(v)) if v == int(v) else repr(float(v))

    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        # One TYPE comment per metric name; series of the same name
        # (sorted, so adjacent) share it.
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for c in registry.counter_series():
        type_line(name_of(c.key), "counter")
        lines.append(f"{name_of(c.key)}{labels_of(c.key)} {fmt(c.value)}")
    for g in registry.gauge_series():
        type_line(name_of(g.key), "gauge")
        lines.append(f"{name_of(g.key)}{labels_of(g.key)} {fmt(g.value)}")
    for h in registry.histogram_series():
        base = name_of(h.key)
        type_line(base, "histogram")
        cumulative = 0
        for bound, n in zip(h.bounds, h.bucket_counts):
            cumulative += n
            lines.append(f"{base}_bucket"
                         f"{labels_of(h.key, {'le': repr(bound)})} "
                         f"{cumulative}")
        lines.append(f"{base}_bucket{labels_of(h.key, {'le': '+Inf'})} "
                     f"{h.count}")
        lines.append(f"{base}_sum{labels_of(h.key)} {fmt(h.total)}")
        lines.append(f"{base}_count{labels_of(h.key)} {h.count}")
    for name in sorted(registry.timings):
        type_line(f"{prefix}_timing_seconds", "gauge")
        lines.append(f"{prefix}_timing_seconds{{name=\"{name}\"}} "
                     f"{registry.timings[name]:.6f}")
    if tracer is not None:
        type_line(f"{prefix}_obs_dropped_total", "counter")
        lines.append(f"{prefix}_obs_dropped_total {tracer.dropped}")
    return "\n".join(lines) + "\n" if lines else ""


# -- validation (the CI trace-smoke gate) ------------------------------

_VALID_PHASES = {"X", "i", "M"}


def validate_chrome_trace(obj: object) -> list[str]:
    """Structural checks on a parsed ``trace.json``; returns problems
    (empty list == valid).  Used by the CI smoke step and the tests, so
    a format regression fails loudly instead of producing a file the
    viewers silently reject."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return ["top level is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        if ev.get("cat") not in LAYERS:
            problems.append(f"{where}: cat {ev.get('cat')!r} is not a "
                            "known layer")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems


def ensure_valid_chrome_trace(obj: object) -> None:
    """Raise :class:`~repro.errors.ConfigurationError` on an invalid
    trace object."""
    problems = validate_chrome_trace(obj)
    if problems:
        raise ConfigurationError(
            "invalid Chrome trace: " + "; ".join(problems[:5]))
