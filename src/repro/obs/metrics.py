"""Labeled metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is the successor of
:class:`repro.perf.counters.PerfCounters` (which is now a deprecated
alias): it keeps the legacy flat-counter / wall-time-timer API that the
executor and the ``--stats`` flag rely on, and adds **labeled series**
(``registry.counter("runs", kernel="mckernel").inc()``) plus gauges and
fixed-bucket histograms, so one registry can answer the questions the
gem5 standardization paper argues simulators must emit as
machine-readable artifacts — per-kernel, per-node, per-experiment
breakdowns rather than one global number.

Rendering is deterministic: :func:`repro.obs.export.prometheus_text`
sorts series by (name, labels), so two identical runs dump identical
text.  Wall-clock timers are the one intentionally non-deterministic
corner — they never appear in trace exports, only in the human-facing
``--stats`` / ``repro metrics`` reports.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from ..errors import ConfigurationError

#: Histogram bucket upper bounds (seconds) used when none are given:
#: log-spaced from microseconds to hours, matching the span of costs
#: the simulation produces (syscall latencies .. job walltimes).
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
                   100.0, 1000.0, 10000.0)

#: (name, sorted (label, value) pairs) — the identity of one series.
SeriesKey = tuple[str, tuple[tuple[str, str], ...]]


def _series_key(name: str, labels: dict[str, object]) -> SeriesKey:
    if not name:
        raise ConfigurationError("metric name must be non-empty")
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(key: SeriesKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing value for one labeled series."""

    __slots__ = ("key", "value")

    def __init__(self, key: SeriesKey) -> None:
        self.key = key
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ConfigurationError("counters only go up")
        self.value += n


class Gauge:
    """A value that can be set to anything (queue depths, rates)."""

    __slots__ = ("key", "value")

    def __init__(self, key: SeriesKey) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus-style)."""

    __slots__ = ("key", "bounds", "bucket_counts", "total", "count")

    def __init__(self, key: SeriesKey,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                "histogram bounds must be non-empty and ascending")
        self.key = key
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Registry of labeled counters/gauges/histograms.

    Also implements the full legacy ``PerfCounters`` surface —
    :meth:`add`, :meth:`timer`, :attr:`counts`, :attr:`timings`,
    :meth:`hit_rate`, :meth:`report`, :meth:`snapshot` — so every
    pre-existing call site and test keeps working against the
    superseding type.
    """

    def __init__(self) -> None:
        self._counters: dict[SeriesKey, Counter] = {}
        self._gauges: dict[SeriesKey, Gauge] = {}
        self._histograms: dict[SeriesKey, Histogram] = {}
        self.timings: dict[str, float] = {}

    # -- labeled series ------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = _series_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(key)
        return c

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _series_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(key)
        return g

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        key = _series_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(key, buckets)
        return h

    # -- legacy PerfCounters API --------------------------------------

    def add(self, name: str, n: int = 1) -> None:
        """Increment the (unlabeled) event counter ``name`` by ``n``."""
        self.counter(name).inc(n)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timings[name] = (self.timings.get(name, 0.0)
                                  + time.perf_counter() - t0)

    @property
    def counts(self) -> dict[str, int]:
        """Flat view of every counter (labeled series rendered as
        ``name{k="v"}``), values as ints when whole."""
        out = {}
        for key, c in self._counters.items():
            v = c.value
            out[_render_key(key)] = int(v) if v == int(v) else v
        return out

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.timings.clear()

    def snapshot(self) -> dict:
        """Plain-dict copy (counts, timings) for assertions/export."""
        return {"counts": dict(self.counts), "timings": dict(self.timings)}

    def _counter_value(self, name: str) -> float:
        """Read an unlabeled counter without creating it."""
        c = self._counters.get(_series_key(name, {}))
        return c.value if c is not None else 0.0

    def hit_rate(self, prefix: str = "cache") -> float:
        """``<prefix>.hits / (<prefix>.hits + <prefix>.misses)``; 0.0
        when nothing was recorded."""
        hits = self._counter_value(f"{prefix}.hits")
        misses = self._counter_value(f"{prefix}.misses")
        total = hits + misses
        return hits / total if total else 0.0

    def report(self) -> str:
        """Human-readable summary (the ``--stats`` output)."""
        lines = ["perf counters:"]
        counts = self.counts
        if not counts and not self.timings and not self._gauges:
            lines.append("  (nothing recorded)")
            return "\n".join(lines)
        for name in sorted(counts):
            lines.append(f"  {name:<28} {counts[name]}")
        for key in sorted(self._gauges):
            lines.append(f"  {_render_key(key):<28} "
                         f"{self._gauges[key].value:g}")
        for name in sorted(self.timings):
            lines.append(f"  {name:<28} {self.timings[name]:.3f} s")
        total = (self._counter_value("cache.hits")
                 + self._counter_value("cache.misses"))
        if total:
            lines.append(f"  {'cache.hit_rate':<28} {self.hit_rate():.1%}")
        return "\n".join(lines)

    # -- iteration (used by the exporters) ----------------------------

    def counter_series(self) -> list[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauge_series(self) -> list[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histogram_series(self) -> list[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]


#: Process-wide default instance; the perf context layer points at it
#: unless a scope installs its own.
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The ambient registry: the innermost
    :class:`repro.perf.context.PerfContext`'s, falling back to the
    global instance."""
    from ..perf.context import get_context

    ctx = get_context()
    return ctx.counters if ctx.counters is not None else _GLOBAL
