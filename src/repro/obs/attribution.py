"""Cross-layer noise attribution — §4.2.1 / Table 2, stack-wide.

The paper's tuning loop ranked interference *actors* by the time they
stole from application cores, using ftrace on one kernel.  With the
unified tracer the same workflow spans every layer: kernel daemons,
IKC redeliveries, proxy crashes, scheduler restarts, injected faults —
each event carries a layer and an actor, and
:class:`NoiseAttribution` aggregates them into ranked
:class:`~repro.kernel.ftrace.ActorSummary` rows per layer.

``repro trace summarize trace.jsonl`` is the CLI face of this module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..kernel.ftrace import ActorSummary
from .tracer import LAYERS, Tracer


@dataclass
class NoiseAttribution:
    """Interference ranked per (layer, actor) — worst total time first."""

    #: layer -> actor -> summary (populated by :meth:`record`).
    by_layer: dict[str, dict[str, ActorSummary]] = field(
        default_factory=dict)

    # -- building ------------------------------------------------------

    def record(self, layer: str, actor: str, duration: float) -> None:
        if layer not in LAYERS:
            raise ConfigurationError(
                f"unknown trace layer {layer!r} (known: {LAYERS})")
        actors = self.by_layer.setdefault(layer, {})
        s = actors.get(actor)
        if s is None:
            s = actors[actor] = ActorSummary(actor=actor)
        s.count += 1
        s.total_time += duration
        s.max_duration = max(s.max_duration, duration)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "NoiseAttribution":
        attr = cls()
        for ev in tracer.events:
            attr.record(ev.layer, ev.actor or ev.name, ev.duration)
        return attr

    @classmethod
    def from_jsonl(cls, path: str) -> "NoiseAttribution":
        """Rebuild attribution from a ``trace.jsonl`` event log (the
        :func:`repro.obs.export.write_jsonl` format; ``ts``/``dur`` are
        microseconds there and converted back to seconds)."""
        attr = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    ev = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"{path}:{lineno}: not JSON ({exc})") from None
                if isinstance(ev, dict) and "layer" not in ev \
                        and "obs_dropped_total" in ev:
                    continue  # the ring-overflow trailer, not an event
                try:
                    attr.record(ev["layer"], ev.get("actor") or ev["name"],
                                float(ev.get("dur", 0.0)) / 1e6)
                except (KeyError, TypeError) as exc:
                    raise ConfigurationError(
                        f"{path}:{lineno}: not a trace event "
                        f"({exc})") from None
        return attr

    # -- reading -------------------------------------------------------

    def rank(self, top_n: int = 10) -> list[tuple[str, ActorSummary]]:
        """The ``top_n`` worst (layer, actor) pairs stack-wide, by total
        time (ties broken by count, then name, for determinism)."""
        rows = [(layer, s)
                for layer, actors in self.by_layer.items()
                for s in actors.values()]
        rows.sort(key=lambda r: (-r[1].total_time, -r[1].count,
                                 r[0], r[1].actor))
        return rows[:top_n]

    def layer_report(self, layer: str) -> list[ActorSummary]:
        """All actors of one layer, worst first (§4.2.1 per-layer view)."""
        actors = self.by_layer.get(layer, {})
        return sorted(actors.values(),
                      key=lambda s: (-s.total_time, s.actor))

    def report(self, top_n: int = 10) -> str:
        """The ranked interference table (the Table-2 workflow, now
        cross-layer)."""
        from ..experiments.report import format_table

        rows = []
        for layer, s in self.rank(top_n):
            rows.append([
                layer, s.actor, s.count,
                f"{s.total_time * 1e3:.3f}",
                f"{s.max_duration * 1e6:.1f}",
            ])
        if not rows:
            return "no trace events recorded"
        return format_table(
            ["Layer", "Actor", "Events", "Total (ms)", "Worst (us)"],
            rows,
            title=f"Top {len(rows)} interference actors across the stack",
        )
