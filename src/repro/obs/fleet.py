"""Fleet telemetry aggregation — deterministic views over worker spools.

A worker fleet leaves two kinds of evidence behind: the journal (the
queue's source of truth) and one telemetry spool per worker
(:mod:`repro.obs.spool`).  This module folds both into fleet-level
views, split deliberately into two tiers:

* **The deterministic core** (:meth:`FleetAggregator.report`): per-job
  canonical lifecycle spans on logical clocks, artifact digests, and
  state totals — derived only from *committed* facts (the folded job
  table and the published bytes), never from worker ids, attempt
  counts, wall time, or scheduling accidents.  The report is therefore
  **byte-identical for 1..N workers and across re-runs** of the same
  submission sequence — the gem5-reproducibility bar applied to
  telemetry itself — and doubles as an artifact-integrity manifest
  (every published file appears with its SHA-256).  ``repro service
  report`` prints it; CI ``cmp``'s it across worker counts.
* **Forensic rollups** (:meth:`FleetAggregator.rollups`): retries,
  lease breaks, goodput, queue-depth high-water mark, per-worker spool
  stats — the operational truth of *this particular* run, exactly the
  numbers that differ across crash interleavings.  ``repro service
  top`` renders them; ``report --check`` holds them against an SLO
  rule file; they are never byte-compared.

Exports reuse the PR-4 writers: :meth:`chrome` renders the canonical
span timeline on the 9th ("service") trace layer via
:func:`~repro.obs.export.chrome_trace_json`; :meth:`prometheus`
renders the core as a :class:`~repro.obs.metrics.MetricsRegistry`
through :func:`~repro.obs.export.prometheus_text`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Optional

from ..errors import ConfigurationError, ServiceError
from .export import canonical_json, chrome_trace_json, prometheus_text
from .metrics import MetricsRegistry
from .spool import read_spool, spool_dir
from .tracer import Tracer

__all__ = ["DEFAULT_SLO", "FleetAggregator", "load_slo"]

#: Format version stamped into the aggregated report (bumped on layout
#: changes, like TRACE_FORMAT_VERSION).
REPORT_FORMAT_VERSION = 1

#: Default SLO rules ``report --check`` evaluates when no rule file is
#: given.  ``max_retry_rate`` — journaled retries per claim;
#: ``max_lease_breaks`` — absolute broken-lease count;
#: ``min_goodput`` — done jobs per claim (1.0 when nothing claimed).
DEFAULT_SLO = {
    "max_retry_rate": 0.5,
    "max_lease_breaks": 8,
    "min_goodput": 0.5,
}

#: The canonical committed lifecycle per folded state: span names in
#: logical-clock order.  Only committed facts — no worker ids, no
#: attempt counts — so the span tree is identical for any fleet size.
_STATE_SPANS = {
    "queued": ("submit",),
    "claimed": ("submit", "claim"),
    "running": ("submit", "claim", "run"),
    "retrying": ("submit", "retry"),
    "done": ("submit", "claim", "run", "done"),
    "failed": ("submit", "fail"),
}


def load_slo(path: "str | os.PathLike") -> dict:
    """Load an SLO rule file (JSON object; keys from
    :data:`DEFAULT_SLO`, values numeric).  Unknown keys are a
    :class:`~repro.errors.ConfigurationError` so a typo never silently
    disables a rule."""
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read SLO rules {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(
            f"SLO rules {path}: invalid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"SLO rules {path}: expected a JSON object")
    unknown = sorted(set(payload) - set(DEFAULT_SLO))
    if unknown:
        raise ConfigurationError(
            f"SLO rules {path}: unknown rule(s) {unknown}; "
            f"known: {sorted(DEFAULT_SLO)}")
    for key, value in payload.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigurationError(
                f"SLO rules {path}: {key} must be a number, "
                f"got {value!r}")
    return dict(payload)


class FleetAggregator:
    """One aggregation pass over a service directory's evidence."""

    def __init__(self, queue) -> None:
        self.queue = queue
        #: worker id -> {"records": [...], "problems": {...}} for every
        #: spool on disk, in sorted order.
        self.spools: dict[str, dict] = {}
        tdir = spool_dir(queue.root)
        if tdir.is_dir():
            for path in sorted(tdir.glob("*.jsonl")):
                records, problems = read_spool(path)
                self.spools[path.name[:-len(".jsonl")]] = {
                    "records": records, "problems": problems}
        self._records = queue.journal.records()
        self._table = queue.table()

    @classmethod
    def from_service_dir(cls, directory: "str | os.PathLike | None" = None
                         ) -> "FleetAggregator":
        from ..service.queue import JobQueue

        queue = JobQueue(directory, create=False)
        if not queue.root.is_dir():
            raise ServiceError(
                f"no service directory at {queue.root} "
                "(nothing submitted yet — see 'repro submit')")
        return cls(queue)

    # -- the deterministic core ---------------------------------------

    def report(self) -> dict:
        """The canonical fleet report — byte-identical for any worker
        count and across re-runs of the same submission sequence."""
        jobs = []
        by_state: dict[str, int] = {}
        total_files = 0
        total_bytes = 0
        for job_id in sorted(self._table):
            view = self._table[job_id]
            state = view.state.value
            by_state[state] = by_state.get(state, 0) + 1
            artifacts = self._artifacts(job_id, state)
            total_files += len(artifacts)
            total_bytes += sum(a["bytes"] for a in artifacts)
            jobs.append({
                "artifacts": artifacts,
                "job": job_id,
                "kind": view.kind,
                "spans": [{"lc": lc, "name": name} for lc, name
                          in enumerate(_STATE_SPANS[state])],
                "state": state,
            })
        return {
            "formatVersion": REPORT_FORMAT_VERSION,
            "jobs": jobs,
            "totals": {
                "artifact_bytes": total_bytes,
                "artifact_files": total_files,
                "by_state": dict(sorted(by_state.items())),
                "jobs": len(jobs),
            },
        }

    def _artifacts(self, job_id: str, state: str) -> list:
        """Sorted (path, sha256, bytes) manifest of a DONE job's
        published files — the committed bytes, digested."""
        if state != "done":
            return []
        base = self.queue.result_dir(job_id)
        if not base.is_dir():
            return []
        out = []
        for path in sorted(base.rglob("*")):
            if not path.is_file():
                continue
            data = path.read_bytes()
            out.append({
                "bytes": len(data),
                "path": str(path.relative_to(base)),
                "sha256": hashlib.sha256(data).hexdigest(),
            })
        return out

    def report_json(self) -> str:
        return canonical_json(self.report()) + "\n"

    def chrome(self) -> str:
        """The canonical span timeline as Chrome trace JSON: one
        instant event per committed lifecycle step on the ``service``
        layer, jobs laid end to end in id order on a logical clock."""
        tracer = Tracer()
        for job in self.report()["jobs"]:
            for span in job["spans"]:
                tracer.event("service", span["name"],
                             ts=tracer.advance("service"),
                             actor=job["job"], lc=span["lc"])
        return chrome_trace_json(
            tracer, metadata={"reportFormatVersion": REPORT_FORMAT_VERSION,
                              "source": "repro service report"})

    def prometheus(self) -> str:
        """The deterministic core as Prometheus exposition text, plus
        ``repro_obs_dropped_total`` summed from spool trace segments
        (a fleet whose rings overflowed says so here)."""
        report = self.report()
        registry = MetricsRegistry()
        for state, n in report["totals"]["by_state"].items():
            registry.gauge("service.fleet.jobs", state=state).set(n)
        registry.gauge("service.fleet.artifact_files").set(
            report["totals"]["artifact_files"])
        registry.gauge("service.fleet.artifact_bytes").set(
            report["totals"]["artifact_bytes"])
        tracer = Tracer()
        tracer.dropped = self._segments_dropped()
        return prometheus_text(registry, tracer=tracer)

    def _segments_dropped(self) -> int:
        dropped = 0
        for worker in sorted(self.spools):
            for record in self.spools[worker]["records"]:
                if record.get("kind") == "segment":
                    dropped += int(record.get("dropped", 0) or 0)
        return dropped

    # -- forensic rollups ---------------------------------------------

    def rollups(self) -> dict:
        """Operational truth of this particular run — never
        byte-compared across runs or worker counts."""
        counts = {"submit": 0, "claim": 0, "run": 0, "retry": 0,
                  "done": 0, "fail": 0}
        lease_breaks = 0
        claimable: set = set()
        depth_max = 0
        for record in self._records:
            rtype = record.get("type")
            job = record.get("job")
            if rtype in counts:
                counts[rtype] += 1
            if rtype in ("retry", "fail") and \
                    str(record.get("error", "")).startswith("lease expired"):
                lease_breaks += 1
            if rtype in ("submit", "retry"):
                claimable.add(job)
            elif rtype in ("claim", "done", "fail"):
                claimable.discard(job)
            depth_max = max(depth_max, len(claimable))
        claims = counts["claim"]
        goodput = counts["done"] / claims if claims else 1.0
        retry_rate = counts["retry"] / claims if claims else 0.0
        workers = {}
        for worker in sorted(self.spools):
            spool = self.spools[worker]
            kinds = {"event": 0, "metrics": 0, "segment": 0}
            for record in spool["records"]:
                kind = record.get("kind")
                if kind in kinds:
                    kinds[kind] += 1
            workers[worker] = {
                "records": len(spool["records"]),
                "events": kinds["event"],
                "segments": kinds["segment"],
                "snapshots": kinds["metrics"],
                "torn_tail": spool["problems"]["torn_tail"],
                "corrupt_lines": spool["problems"]["corrupt_lines"],
            }
        return {
            "claims": claims,
            "dones": counts["done"],
            "fails": counts["fail"],
            "goodput": goodput,
            "lease_breaks": lease_breaks,
            "max_queue_depth": depth_max,
            "retries": counts["retry"],
            "retry_rate": retry_rate,
            "submits": counts["submit"],
            "telemetry": {
                "corrupt_lines": sum(w["corrupt_lines"]
                                     for w in workers.values()),
                "spools": len(workers),
                "torn_tails": sum(1 for w in workers.values()
                                  if w["torn_tail"]),
            },
            "workers": workers,
        }

    # -- SLO evaluation -----------------------------------------------

    def check(self, slo: Optional[dict] = None) -> dict:
        """Hold the rollups against SLO rules; ``ok`` is the verdict.

        Rules default to :data:`DEFAULT_SLO`; a partial ``slo`` dict
        overrides individual rules (unknown keys are a configuration
        error — same contract as :func:`load_slo`).
        """
        rules = dict(DEFAULT_SLO)
        if slo:
            unknown = sorted(set(slo) - set(DEFAULT_SLO))
            if unknown:
                raise ConfigurationError(
                    f"unknown SLO rule(s) {unknown}; "
                    f"known: {sorted(DEFAULT_SLO)}")
            rules.update(slo)
        r = self.rollups()
        measured = {
            "goodput": r["goodput"],
            "lease_breaks": r["lease_breaks"],
            "retry_rate": r["retry_rate"],
        }
        violations = []
        if measured["retry_rate"] > rules["max_retry_rate"]:
            violations.append(
                f"retry_rate {measured['retry_rate']:.3f} > "
                f"max_retry_rate {rules['max_retry_rate']}")
        if measured["lease_breaks"] > rules["max_lease_breaks"]:
            violations.append(
                f"lease_breaks {measured['lease_breaks']} > "
                f"max_lease_breaks {rules['max_lease_breaks']}")
        if measured["goodput"] < rules["min_goodput"]:
            violations.append(
                f"goodput {measured['goodput']:.3f} < "
                f"min_goodput {rules['min_goodput']}")
        return {
            "measured": measured,
            "ok": not violations,
            "rules": dict(sorted(rules.items())),
            "violations": violations,
        }

    # -- the health console -------------------------------------------

    def top(self) -> str:
        """The ``repro service top`` rendering: a point-in-time fleet,
        queue and worker table from spools + journal — no running
        fleet required."""
        r = self.rollups()
        claims = self.queue.active_claims()
        lines = [f"service {self.queue.root}"]
        lines.append(
            f"queue: {r['submits']} submitted, {r['dones']} done, "
            f"{r['fails']} failed, depth now "
            f"{self.queue.depth()} (max {r['max_queue_depth']})")
        lines.append(
            f"health: goodput={r['goodput']:.2f} "
            f"retry_rate={r['retry_rate']:.2f} "
            f"retries={r['retries']} lease_breaks={r['lease_breaks']}")
        lines.append(f"{'job':<20} {'state':<9} {'kind':<11} "
                     f"{'attempts':<9} worker")
        for job_id in sorted(self._table):
            view = self._table[job_id]
            live = ""
            claim = claims.get(job_id)
            if claim:
                live = (f" [claim hb={claim.get('heartbeat', '?')}"
                        f" by {claim.get('worker', '?')}]")
            lines.append(f"{view.job_id:<20} {view.state.value:<9} "
                         f"{view.kind:<11} {view.attempts:<9} "
                         f"{view.worker}{live}")
        if not self._table:
            lines.append("(no jobs)")
        lines.append(f"telemetry: {r['telemetry']['spools']} spool(s), "
                     f"{r['telemetry']['torn_tails']} torn tail(s), "
                     f"{r['telemetry']['corrupt_lines']} corrupt line(s)")
        for worker in sorted(r["workers"]):
            w = r["workers"][worker]
            lines.append(
                f"  {worker:<18} records={w['records']} "
                f"events={w['events']} segments={w['segments']} "
                f"snapshots={w['snapshots']}"
                + (" TORN" if w["torn_tail"] else "")
                + (f" CORRUPT={w['corrupt_lines']}"
                   if w["corrupt_lines"] else ""))
        return "\n".join(lines)
