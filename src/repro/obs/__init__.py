"""repro.obs — unified observability across the simulation stack.

The paper's method *is* observability: "we utilize execution time
profiling and ftrace" (§4.2.1) is how every countermeasure in Table 2
was found.  This package generalizes that microscope from one kernel
to the whole simulated system:

* :mod:`repro.obs.tracer` — a cross-layer span/event
  :class:`Tracer` (named layers, bounded ring, deterministic
  simulated-time stamps, zero overhead when disabled);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, labeled
  counters/gauges/histograms superseding ``repro.perf.counters``;
* :mod:`repro.obs.export` — byte-deterministic Chrome/Perfetto
  ``trace.json``, JSONL, and Prometheus exposition writers;
* :mod:`repro.obs.attribution` — :class:`NoiseAttribution`, the ranked
  interference-actor report, now spanning every layer;
* :mod:`repro.obs.runtrace` — :func:`trace_experiment`, the engine of
  ``repro trace run``;
* :mod:`repro.obs.spool` — :class:`TelemetrySpool`, the per-worker
  durable flight recorder behind ``repro serve --telemetry``;
* :mod:`repro.obs.fleet` — :class:`FleetAggregator`, the deterministic
  fold of journal + spools behind ``repro service top`` / ``report``.

Instrumentation hooks live in the instrumented modules themselves
(ftrace, CFS scheduler, IKC, proxy, LWK syscalls, batch scheduler,
fault injector, perf executor); they all consult :func:`get_tracer`
and do nothing when no tracer is installed.
"""

from .export import (
    TRACE_FORMAT_VERSION,
    chrome_trace,
    chrome_trace_json,
    ensure_valid_chrome_trace,
    jsonl_lines,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from .spool import TelemetrySpool, read_spool, spool_dir
from .tracer import LAYERS, TraceSpan, Tracer, get_tracer, tracing

#: Lazily imported (PEP 562): these submodules reach back into the
#: instrumented packages (kernel, experiments, service), and the hooks
#: there import ``repro.obs.tracer`` — eager imports here would be a
#: cycle.
_LAZY = {
    "DEFAULT_SLO": "fleet",
    "FleetAggregator": "fleet",
    "NoiseAttribution": "attribution",
    "TracedRun": "runtrace",
    "capture_node_slice": "runtrace",
    "load_slo": "fleet",
    "trace_experiment": "runtrace",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_SLO",
    "FleetAggregator",
    "Gauge",
    "Histogram",
    "LAYERS",
    "MetricsRegistry",
    "NoiseAttribution",
    "TRACE_FORMAT_VERSION",
    "TelemetrySpool",
    "TraceSpan",
    "TracedRun",
    "Tracer",
    "capture_node_slice",
    "chrome_trace",
    "chrome_trace_json",
    "ensure_valid_chrome_trace",
    "get_metrics",
    "get_tracer",
    "jsonl_lines",
    "load_slo",
    "prometheus_text",
    "read_spool",
    "spool_dir",
    "trace_experiment",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
