"""Cross-layer span/event tracer.

The paper's central methodology (§4.2.1) is observability: the blk-mq
placement bug and every per-countermeasure noise reduction were found
with "execution time profiling and ftrace".  :class:`Tracer` is that
microscope for the *whole* simulated stack: one bounded ring buffer of
timestamped events, partitioned into named **layers** (:data:`LAYERS`),
fed by instrumentation hooks threaded through the hardware, kernel,
LWK, IKC, proxy, scheduler, perf and fault modules.

Design constraints, in order:

* **Zero overhead when disabled.**  Hooks consult the ambient tracer
  (:func:`get_tracer`) and bail on ``None`` — one module-global read
  and an ``is None`` test.  No tracer installed ⇒ no allocation, no
  event object, byte-identical simulation output.
* **Deterministic timestamps.**  Events carry *simulated* time (a DES
  engine clock, a cost-model accumulation, or a per-layer logical
  clock via :meth:`Tracer.advance`) — never wall time.  Two runs of
  the same seeded configuration produce identical event streams, which
  is what makes exported traces byte-reproducible (see
  :mod:`repro.obs.export`).
* **Bounded memory.**  The buffer is a ring: past ``buffer_size``
  events the oldest is overwritten and :attr:`Tracer.dropped` counts
  the loss, mirroring :class:`repro.kernel.ftrace.Ftrace` semantics.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from ..errors import ConfigurationError

#: The instrumented layers, in fixed display order (Chrome-trace track
#: order).  Hooks must name one of these; anything else is a
#: configuration error so typos never silently create a new track.
LAYERS = ("hw", "kernel", "lwk", "ikc", "proxy", "sched", "perf", "faults",
          "service")

_LAYER_INDEX = {name: i for i, name in enumerate(LAYERS)}


@dataclass
class TraceSpan:
    """One traced event: an instant (``duration == 0``) or a span.

    ``ts``/``duration`` are simulated seconds.  ``args`` holds small
    JSON-serializable annotations (cell keys, sequence numbers, fault
    kinds); ``seq`` is the tracer-assigned record order, the
    deterministic tie-breaker for equal timestamps.
    """

    layer: str
    name: str
    ts: float
    duration: float = 0.0
    actor: str = ""
    args: dict = field(default_factory=dict)
    seq: int = 0

    @property
    def is_span(self) -> bool:
        return self.duration > 0.0


class Tracer:
    """Bounded ring buffer of :class:`TraceSpan` records across layers."""

    def __init__(self, buffer_size: int = 1_000_000) -> None:
        if buffer_size <= 0:
            raise ConfigurationError("buffer_size must be positive")
        self.buffer_size = buffer_size
        self._events: deque[TraceSpan] = deque(maxlen=buffer_size)
        #: Events overwritten by the ring (oldest-first), like ftrace.
        self.dropped = 0
        self._seq = 0
        #: Per-layer logical clocks for layers with no native time
        #: source (see :meth:`advance`).
        self._clocks: dict[str, float] = {}

    # -- recording -----------------------------------------------------

    def event(self, layer: str, name: str, ts: float,
              duration: float = 0.0, actor: str = "",
              **args: object) -> TraceSpan:
        """Record one event.  ``duration > 0`` makes it a span."""
        if layer not in _LAYER_INDEX:
            raise ConfigurationError(
                f"unknown trace layer {layer!r} (known: {LAYERS})")
        if len(self._events) == self.buffer_size:
            self.dropped += 1  # deque(maxlen) evicts the oldest
        ev = TraceSpan(layer=layer, name=name, ts=float(ts),
                       duration=float(duration), actor=actor,
                       args=dict(args) if args else {}, seq=self._seq)
        self._seq += 1
        self._events.append(ev)
        return ev

    def span(self, layer: str, name: str, ts: float, duration: float,
             actor: str = "", **args: object) -> TraceSpan:
        """Record a completed span (explicit begin + length)."""
        return self.event(layer, name, ts, duration=duration,
                          actor=actor, **args)

    def advance(self, layer: str, amount: float = 1.0) -> float:
        """Advance the layer's logical clock; returns the *pre*-advance
        value.  Gives deterministic, monotone timestamps to layers that
        have no simulated-time source of their own (e.g. the perf
        executor laying sweep cells end to end)."""
        now = self._clocks.get(layer, 0.0)
        self._clocks[layer] = now + amount
        return now

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self._seq = 0
        self._clocks.clear()

    # -- reading -------------------------------------------------------

    @property
    def events(self) -> list[TraceSpan]:
        """Events in record order (a copy; the ring stays untouched)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def layers_seen(self) -> list[str]:
        """Distinct layers with at least one event, in display order."""
        seen = {ev.layer for ev in self._events}
        return [name for name in LAYERS if name in seen]

    def layer_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for ev in self._events:
            counts[ev.layer] = counts.get(ev.layer, 0) + 1
        return {name: counts[name] for name in LAYERS if name in counts}

    def filter(
        self,
        layers: Optional[Iterable[str]] = None,
        actors: Optional[Iterable[str]] = None,
        predicate: Optional[Callable[[TraceSpan], bool]] = None,
    ) -> list[TraceSpan]:
        layer_set = set(layers) if layers is not None else None
        actor_set = set(actors) if actors is not None else None
        out = []
        for ev in self._events:
            if layer_set is not None and ev.layer not in layer_set:
                continue
            if actor_set is not None and ev.actor not in actor_set:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out


#: The ambient tracer.  ``None`` means tracing is disabled and every
#: instrumentation hook is a no-op.
_TRACER: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off.

    Instrumentation hooks call this on their hot path; keep call sites
    shaped as ``t = get_tracer()`` / ``if t is not None: ...`` so the
    disabled case costs one attribute read and a comparison.
    """
    return _TRACER


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install ``tracer`` (a fresh one by default) for the block.

    Nests: the previous tracer (or the disabled state) is restored on
    exit, so a traced sub-scope never leaks into its caller.
    """
    global _TRACER
    if tracer is None:
        tracer = Tracer()
    previous = _TRACER
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous
