"""Unit helpers.

Internally the simulator uses **seconds** (float) for time and **bytes**
(int) for memory sizes.  These helpers exist so that configuration code
reads like the paper ("6.5 ms quanta", "32 GB HBM2") instead of raw
exponents, and so that unit bugs are greppable.
"""

from __future__ import annotations

# --- time ----------------------------------------------------------------

#: One nanosecond in seconds.
NS = 1e-9
#: One microsecond in seconds.
US = 1e-6
#: One millisecond in seconds.
MS = 1e-3
#: One second.
SEC = 1.0
#: One minute in seconds.
MINUTE = 60.0


def ns(x: float) -> float:
    """Convert nanoseconds to seconds."""
    return x * NS


def us(x: float) -> float:
    """Convert microseconds to seconds."""
    return x * US


def ms(x: float) -> float:
    """Convert milliseconds to seconds."""
    return x * MS


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / US


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MS


# --- memory sizes ---------------------------------------------------------

#: One kibibyte.
KiB = 1024
#: One mebibyte.
MiB = 1024 * KiB
#: One gibibyte.
GiB = 1024 * MiB
#: One tebibyte.
TiB = 1024 * GiB


def kib(x: float) -> int:
    """Convert KiB to bytes."""
    return int(x * KiB)


def mib(x: float) -> int:
    """Convert MiB to bytes."""
    return int(x * MiB)


def gib(x: float) -> int:
    """Convert GiB to bytes."""
    return int(x * GiB)


def fmt_bytes(n: int) -> str:
    """Human-readable byte count (binary units), e.g. ``fmt_bytes(2<<20)``
    -> ``'2.0 MiB'``."""
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(size) < 1024.0 or unit == "TiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration, choosing ns/us/ms/s automatically."""
    a = abs(seconds)
    if a < US:
        return f"{seconds / NS:.1f} ns"
    if a < MS:
        return f"{seconds / US:.2f} us"
    if a < SEC:
        return f"{seconds / MS:.3f} ms"
    return f"{seconds:.3f} s"
