"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine, kernel, or experiment configuration is inconsistent."""


class ResourceError(ReproError):
    """A hardware resource request cannot be satisfied.

    Raised e.g. when IHK tries to reserve more cores than the node has, or
    when the buddy allocator runs out of physical memory.
    """


class OutOfMemoryError(ResourceError):
    """Physical memory exhausted (buddy allocator or cgroup limit)."""


class CgroupLimitExceeded(OutOfMemoryError):
    """A memory cgroup charge would exceed the cgroup's limit."""


class PartitionError(ResourceError):
    """Invalid CPU/memory partitioning request (overlap, unknown core...)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class SyscallError(ReproError):
    """A simulated system call failed.

    Carries a POSIX-style ``errno`` name so tests can assert on the exact
    failure mode (e.g. ``ENOMEM``, ``ENOSYS``).
    """

    def __init__(self, errno_name: str, message: str = "") -> None:
        self.errno_name = errno_name
        super().__init__(f"{errno_name}: {message}" if message else errno_name)


class FaultError(ReproError):
    """Base class for injected faults (see :mod:`repro.faults`).

    Raised when a seeded :class:`~repro.faults.FaultInjector` fires a
    fault that the simulated component turns into a hard failure —
    never raised unless fault injection is explicitly enabled.
    """


class NodeFailure(FaultError):
    """A compute node died mid-run (exponential per-node MTBF model).

    Carries ``node`` (the failed node index within the job) and ``at``
    (the simulation time of the failure) when known.
    """

    def __init__(self, message: str = "", node: int | None = None,
                 at: float | None = None) -> None:
        self.node = node
        self.at = at
        super().__init__(message or "node failure")


class ProxyCrashed(FaultError):
    """The Linux-side proxy process of a McKernel job crashed.

    The LWK process loses every delegated-state item the proxy held
    (fd table, file positions); recovery requires a proxy respawn.
    """


class IkcTimeoutError(FaultError):
    """An IKC message was dropped and re-delivery attempts timed out."""


class JobRetriesExhausted(FaultError):
    """A batch job failed more times than its retry policy allows."""


class CacheCorruptionError(ReproError):
    """A run-cache disk entry is unreadable or structurally invalid.

    The cache never raises this on the hot path — corrupt entries are
    quarantined and treated as misses — but :meth:`RunCache.verify`
    uses it to classify entries in its report.
    """


class ServiceError(ReproError):
    """Base class for job-service failures (see :mod:`repro.service`)."""


class JobNotFoundError(ServiceError):
    """A job id names no submission recorded in the service journal."""


class ClaimConflict(ServiceError):
    """A worker's lease on a job no longer exists or belongs to
    another worker.

    Raised when a heartbeat or completion finds the claim file gone or
    re-owned — the job's lease expired and another worker re-claimed
    it.  The losing worker must discard its attempt without publishing.
    """


class JournalCorruptionError(ServiceError):
    """A non-final journal line is unparseable.

    A truncated *final* line (a crash mid-append) is tolerated and
    skipped; corruption anywhere earlier means the journal can no
    longer be trusted as the queue's source of truth.
    """


class CrashInjected(BaseException):
    """A :mod:`repro.chaos` crash point fired with the *kill* action.

    Deliberately **not** a :class:`ReproError`: a simulated crash must
    behave like ``kill -9`` — it must never be absorbed by the
    ``except ReproError`` job-failure paths (which would turn a crash
    into a polite retry and hide exactly the recovery gaps chaos
    testing exists to find).  Like :class:`KeyboardInterrupt`, it roots
    in :class:`BaseException` so only code that explicitly expects a
    crash (the soak harness, worker crash handling) catches it.

    Never raised unless a chaos injector is explicitly installed.
    """

    def __init__(self, site: str, message: str = "") -> None:
        self.site = site
        super().__init__(message or f"chaos: injected crash at {site}")
