"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine, kernel, or experiment configuration is inconsistent."""


class ResourceError(ReproError):
    """A hardware resource request cannot be satisfied.

    Raised e.g. when IHK tries to reserve more cores than the node has, or
    when the buddy allocator runs out of physical memory.
    """


class OutOfMemoryError(ResourceError):
    """Physical memory exhausted (buddy allocator or cgroup limit)."""


class CgroupLimitExceeded(OutOfMemoryError):
    """A memory cgroup charge would exceed the cgroup's limit."""


class PartitionError(ResourceError):
    """Invalid CPU/memory partitioning request (overlap, unknown core...)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class SyscallError(ReproError):
    """A simulated system call failed.

    Carries a POSIX-style ``errno`` name so tests can assert on the exact
    failure mode (e.g. ``ENOMEM``, ``ENOSYS``).
    """

    def __init__(self, errno_name: str, message: str = "") -> None:
        self.errno_name = errno_name
        super().__init__(f"{errno_name}: {message}" if message else errno_name)
