"""Content fingerprints: stable digests of run configurations.

The run cache is *content-addressed*.  The primary path is
:func:`spec_key`: cells constructed from a declarative
:class:`~repro.platform.spec.RunSpec` are keyed by the SHA-256 of the
spec's canonical JSON, so cache identity is auditable from a text
artifact.  Cells built from raw objects fall back to :func:`run_key`,
a canonical serialization of everything a :meth:`AppRunner.run`
outcome depends on — machine, workload profile, OS personality (node
spec, tuning, cost model, feature switches), node count, repetition
count and root seed.  Either way, any change to any component (a
tuning flag, a cost-model price, a profile field, the package version)
produces a different key, so stale entries can never be returned; they
are simply never looked up again.

Canonicalization walks dataclasses, enums, containers and NumPy
scalars/arrays recursively.  Objects whose ``repr`` is not
deterministic across processes (the default ``object.__repr__``) are
rejected loudly rather than silently hashed by address.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..apps.base import WorkloadProfile
    from ..hardware.machines import Machine
    from ..kernel.base import OsInstance

#: Bump when the RunResult serialization or the key layout changes;
#: part of every digest, so old on-disk entries become unreachable.
#: v2: spec-addressed keys — cells carrying a ``RunSpec`` are keyed by
#: the SHA-256 of the canonical RunSpec JSON (:func:`spec_key`), and
#: disk entries store that JSON alongside the result, so cache
#: identity is auditable from a text artifact instead of a recursive
#: object walk.
SCHEMA_VERSION = 2


def _canon(obj: Any, out: list[str]) -> None:
    """Append canonical tokens for ``obj`` to ``out``."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        out.append(f"{type(obj).__name__}:{obj!r}")
    elif isinstance(obj, float):
        # repr() round-trips doubles exactly (shortest representation).
        out.append(f"float:{obj!r}")
    elif isinstance(obj, enum.Enum):
        out.append(f"enum:{type(obj).__qualname__}.{obj.name}")
    elif isinstance(obj, np.ndarray):
        out.append(f"ndarray:{obj.dtype!s}:{obj.shape!r}:"
                   f"{hashlib.sha256(np.ascontiguousarray(obj)).hexdigest()}")
    elif isinstance(obj, (np.integer, np.floating)):
        _canon(obj.item(), out)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out.append(f"dc:{type(obj).__qualname__}{{")
        for f in dataclasses.fields(obj):
            out.append(f"{f.name}=")
            _canon(getattr(obj, f.name), out)
        out.append("}")
    elif isinstance(obj, dict):
        out.append("dict{")
        for key in sorted(obj, key=repr):
            _canon(key, out)
            out.append("->")
            _canon(obj[key], out)
        out.append("}")
    elif isinstance(obj, (list, tuple)):
        out.append(f"{type(obj).__name__}[")
        for item in obj:
            _canon(item, out)
        out.append("]")
    elif isinstance(obj, (set, frozenset)):
        out.append("set{")
        for item in sorted(obj, key=repr):
            _canon(item, out)
        out.append("}")
    elif hasattr(obj, "__dict__") and not callable(obj):
        # Plain value objects (CpuTopology, NumaLayout, ...): the class
        # plus every attribute, canonicalized recursively — never the
        # (address-bearing) default repr.
        out.append(f"obj:{type(obj).__qualname__}{{")
        for name in sorted(vars(obj)):
            out.append(f"{name}=")
            _canon(vars(obj)[name], out)
        out.append("}")
    else:
        raise ConfigurationError(
            f"cannot fingerprint {type(obj).__qualname__!r}: no "
            f"deterministic canonical form (add one to perf.fingerprint)"
        )


def fingerprint(obj: Any) -> str:
    """Hex SHA-256 of the canonical serialization of ``obj``."""
    out: list[str] = []
    _canon(obj, out)
    return hashlib.sha256("\x1f".join(out).encode("utf-8")).hexdigest()


def spec_key(spec) -> str:
    """The content address of one :class:`~repro.platform.spec.RunSpec`.

    SHA-256 over the schema version, the package version and the
    spec's canonical JSON — the primary cache-key path: any spec field
    (machine override, tuning override, noise switch, seed, …) is
    legible in the JSON that produced the digest, so a cache entry's
    identity can be audited from a text artifact.
    """
    from .. import __version__

    payload = (f"schema:{SCHEMA_VERSION}|version:{__version__}|"
               f"{spec.canonical_json()}")
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def os_signature(os_instance: "OsInstance") -> dict:
    """The cache-relevant identity of a booted OS personality.

    OS instances are stateful composites (allocator pools, schedulers),
    so instead of hashing the whole object graph the signature extracts
    exactly what :meth:`AppRunner.run` consumes: kind, node design,
    cost model, tuning, and the McKernel feature switches.
    """
    sig: dict[str, Any] = {
        "kind": os_instance.kind,
        "node": os_instance.node,
        "costs": os_instance.costs,
    }
    for attr in ("tuning", "host_tuning"):
        value = getattr(os_instance, attr, None)
        if value is not None:
            sig[attr] = value
    picodriver = getattr(os_instance, "picodriver_enabled", None)
    if picodriver is not None:
        sig["picodriver"] = picodriver
    partition = getattr(os_instance, "partition", None)
    if partition is not None:
        sig["partition_cpus"] = partition.cpus
        sig["partition_memory"] = partition.total_memory()
    return sig


def run_key(
    machine: "Machine",
    profile: "WorkloadProfile",
    os_instance: "OsInstance",
    n_nodes: int,
    n_runs: int,
    seed: int,
    memo: dict | None = None,
) -> str:
    """The content address of one (machine, profile, OS, n_nodes,
    n_runs, seed) simulation cell.

    ``memo`` (an id-keyed dict scoped to one sweep, where the component
    objects are guaranteed alive) amortizes the machine/profile/OS
    digests across the hundreds of cells that share them.
    """
    from .. import __version__

    def part(tag: str, key_obj: Any, make: Any = None) -> str:
        if memo is None:
            return fingerprint(make() if make is not None else key_obj)
        k = (tag, id(key_obj))
        if k not in memo:
            memo[k] = fingerprint(make() if make is not None else key_obj)
        return memo[k]

    head = (f"schema:{SCHEMA_VERSION}|version:{__version__}"
            f"|n_nodes:{int(n_nodes)}|n_runs:{int(n_runs)}|seed:{int(seed)}")
    body = (part("machine", machine), part("profile", profile),
            part("os", os_instance, lambda: os_signature(os_instance)))
    return hashlib.sha256("|".join((head,) + body).encode()).hexdigest()
