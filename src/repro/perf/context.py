"""Ambient execution context for sweeps.

Threading ``jobs=``/``cache=`` through every experiment entry point
would force a signature change on each of the 13 registered
experiments.  Instead the registry installs a :class:`PerfContext` and
the sweep layers (:func:`repro.runtime.runner.compare`,
:func:`repro.experiments.appfigs.sweep_apps`) consult it whenever the
caller passes ``None``:

    with perf_context(jobs=4, cache=RunCache(tmp)):
        run_experiment("fig5", fast=False)   # fans out, memoizes

The context also owns the shared :class:`ProcessPoolExecutor` so that
consecutive fan-outs inside one block reuse warm workers instead of
re-forking per sweep.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:
    from concurrent.futures import ProcessPoolExecutor

    from ..obs.metrics import MetricsRegistry
    from .cache import RunCache


@dataclass
class PerfContext:
    """Execution knobs every sweep inside the scope inherits."""

    #: Worker processes for cell fan-out; 1 = serial.
    jobs: int = 1
    #: Memoization cache for RunResults; None disables caching.
    cache: Optional["RunCache"] = None
    #: Instrumentation sink (a :class:`repro.obs.metrics.MetricsRegistry`);
    #: None falls back to the global registry.
    counters: Optional["MetricsRegistry"] = None
    #: Wall-clock budget per cell in the parallel path, seconds; None
    #: waits forever.  A timed-out cell counts as a pool failure and is
    #: retried like one.
    cell_timeout: Optional[float] = None
    #: Pool dispatch attempts before the executor degrades to serial.
    max_retries: int = 2
    #: Variance-adaptive Monte-Carlo stopping: keep drawing trial
    #: batches for a sweep cell until the 95% CI half-width of its mean
    #: wall time falls below ``target_ci`` (a fraction of the mean).
    #: None (the default) keeps the fixed trial count and is
    #: byte-identical to every release before the knob existed.
    target_ci: Optional[float] = None
    #: Hard trial ceiling per cell when ``target_ci`` is active.
    max_adaptive_runs: int = 64
    _pool: Optional["ProcessPoolExecutor"] = field(
        default=None, repr=False, compare=False)
    _pool_broken: bool = field(default=False, repr=False, compare=False)

    def pool(self) -> Optional["ProcessPoolExecutor"]:
        """The shared worker pool (created lazily), or None when the
        context is serial or pool creation failed earlier."""
        if self.jobs <= 1 or self._pool_broken:
            return None
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            try:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            except (OSError, ValueError):
                self._pool_broken = True
                return None
        return self._pool

    def mark_pool_broken(self) -> None:
        """Record a pool failure; subsequent sweeps run serially."""
        self.shutdown()
        self._pool_broken = True

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


#: Stack of installed contexts; the default (serial, uncached) base is
#: always present so get_context() never fails.
_STACK: list[PerfContext] = [PerfContext()]


def get_context() -> PerfContext:
    """The innermost installed context."""
    return _STACK[-1]


@contextmanager
def perf_context(
    jobs: int = 1,
    cache: Optional["RunCache"] = None,
    counters: Optional["MetricsRegistry"] = None,
    cell_timeout: Optional[float] = None,
    max_retries: int = 2,
    target_ci: Optional[float] = None,
    max_adaptive_runs: int = 64,
) -> Iterator[PerfContext]:
    """Install a :class:`PerfContext` for the duration of the block."""
    ctx = PerfContext(jobs=max(1, int(jobs)), cache=cache, counters=counters,
                      cell_timeout=cell_timeout,
                      max_retries=max(0, int(max_retries)),
                      target_ci=target_ci,
                      max_adaptive_runs=max(1, int(max_adaptive_runs)))
    _STACK.append(ctx)
    try:
        yield ctx
    finally:
        _STACK.pop()
        ctx.shutdown()
