"""Deterministic parallel sweep executor.

A sweep — Figs. 5-7, ``compare``, ``run_all`` — is a list of
independent simulation *cells* ``(machine, profile, OS, n_nodes,
n_runs, seed)``.  Each cell derives its RNG streams from its own
coordinates (see :meth:`AppRunner.run`), so cells can execute in any
order, on any process, and produce bit-identical results; the executor
exploits that by fanning cells out over a
:class:`concurrent.futures.ProcessPoolExecutor` and reassembling
results in submission order.

Failure containment: pool infrastructure errors (a worker killed, an
unpicklable payload, fork failure) degrade transparently to the serial
path — the sweep still completes, just slower.  Model errors raised by
a cell propagate unchanged in both modes.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from .context import get_context
from .counters import get_counters
from .fingerprint import run_key, spec_key

if TYPE_CHECKING:
    from ..apps.base import WorkloadProfile
    from ..hardware.machines import Machine
    from ..kernel.base import OsInstance
    from ..platform.spec import RunSpec
    from ..runtime.runner import RunResult
    from .cache import RunCache


@dataclass(frozen=True)
class RunCell:
    """One independent unit of sweep work.

    Cells built by the :mod:`repro.platform` sweep helpers carry the
    declarative :class:`RunSpec` they came from; their cache key is
    then the SHA-256 of the spec's canonical JSON (auditable from the
    on-disk entry).  Raw-object cells fall back to the recursive
    object-walk fingerprint.
    """

    machine: "Machine"
    profile: "WorkloadProfile"
    os_instance: "OsInstance"
    n_nodes: int
    n_runs: int
    seed: int
    spec: Optional["RunSpec"] = None

    def key(self, memo: dict | None = None) -> str:
        """Content address of this cell (the cache key)."""
        if self.spec is not None:
            return spec_key(self.spec)
        return run_key(self.machine, self.profile, self.os_instance,
                       self.n_nodes, self.n_runs, self.seed, memo=memo)


def _execute_cell(cell: RunCell) -> "RunResult":
    """Run one cell; module-level so worker processes can unpickle it."""
    from ..runtime.runner import AppRunner

    runner = AppRunner(cell.machine, cell.profile, seed=cell.seed)
    return runner.run(cell.os_instance, cell.n_nodes, n_runs=cell.n_runs)


def _run_serial(cells: Sequence[RunCell]) -> list["RunResult"]:
    return [_execute_cell(cell) for cell in cells]


def _run_pool(pool: ProcessPoolExecutor, cells: Sequence[RunCell],
              jobs: int) -> list["RunResult"]:
    # map() preserves submission order, which is all the determinism
    # the reassembly step needs.  Chunking bounds the per-task IPC and
    # lets pickle share the machine/profile/OS objects within a chunk;
    # two chunks per worker keeps some slack for load imbalance.
    chunksize = max(1, -(-len(cells) // (jobs * 2)))
    return list(pool.map(_execute_cell, cells, chunksize=chunksize))


def execute_cells(
    cells: Sequence[RunCell],
    jobs: Optional[int] = None,
    cache: Optional["RunCache"] = None,
) -> list["RunResult"]:
    """Execute ``cells``, returning results in cell order.

    ``jobs``/``cache`` default to the ambient :class:`PerfContext`.
    Cache lookups and stores happen in the parent process only, so
    workers stay pure compute and the disk tier sees no write races.
    """
    ctx = get_context()
    if jobs is None:
        jobs = ctx.jobs
    if cache is None:
        cache = ctx.cache
    counters = get_counters()
    counters.add("executor.cells", len(cells))

    results: list[Optional["RunResult"]] = [None] * len(cells)
    pending: list[int] = []
    keys: dict[int, str] = {}
    if cache is not None:
        memo: dict = {}
        with counters.timer("cache.lookup"):
            for i, cell in enumerate(cells):
                keys[i] = cell.key(memo)
                hit = cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    counters.add("cache.hits")
                else:
                    pending.append(i)
                    counters.add("cache.misses")
    else:
        pending = list(range(len(cells)))

    todo = [cells[i] for i in pending]
    with counters.timer("executor.compute"):
        computed = _dispatch(todo, jobs, ctx, counters)
    for i, result in zip(pending, computed):
        results[i] = result
        if cache is not None:
            cache.put(keys[i], result, spec=cells[i].spec)
    return results  # type: ignore[return-value]


def _dispatch(cells: Sequence[RunCell], jobs: int, ctx,
              counters) -> list["RunResult"]:
    if jobs <= 1 or len(cells) <= 1:
        counters.add("executor.serial_cells", len(cells))
        return _run_serial(cells)
    shared = ctx.pool() if jobs == ctx.jobs else None
    try:
        if shared is not None:
            out = _run_pool(shared, cells, jobs)
        else:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(cells))
            ) as pool:
                out = _run_pool(pool, cells, jobs)
    except (BrokenProcessPool, OSError, pickle.PicklingError):
        # Infrastructure failure, not a model error: degrade to serial.
        if shared is not None:
            ctx.mark_pool_broken()
        counters.add("executor.pool_failures")
        counters.add("executor.serial_cells", len(cells))
        return _run_serial(cells)
    counters.add("executor.parallel_cells", len(cells))
    return out
