"""Deterministic parallel sweep executor.

A sweep — Figs. 5-7, ``compare``, ``run_all`` — is a list of
independent simulation *cells* ``(machine, profile, OS, n_nodes,
n_runs, seed)``.  Each cell derives its RNG streams from its own
coordinates (see :meth:`AppRunner.run`), so cells can execute in any
order, on any process, and produce bit-identical results; the executor
exploits that by fanning cells out over a
:class:`concurrent.futures.ProcessPoolExecutor` and reassembling
results in submission order.

Failure containment is *cell-granular*: pool infrastructure errors (a
worker killed, an unpicklable payload, fork failure, a cell exceeding
its timeout) cost only the unfinished cells — completed results are
harvested, a warning names the failing cell's cache key, and only the
remainder is retried (bounded attempts over a fresh pool, then the
serial path).  The sweep always completes, and model errors raised by
a cell propagate unchanged in both modes.
"""

from __future__ import annotations

import logging
import pickle
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from ..obs.metrics import get_metrics
from ..obs.tracer import get_tracer
from .context import get_context
from .fingerprint import run_key, spec_key

if TYPE_CHECKING:
    from ..apps.base import WorkloadProfile
    from ..hardware.machines import Machine
    from ..kernel.base import OsInstance
    from ..platform.spec import RunSpec
    from ..runtime.runner import RunResult
    from .cache import RunCache

logger = logging.getLogger(__name__)

#: Exceptions that mean "the pool broke", never "the model is wrong".
_POOL_ERRORS = (BrokenProcessPool, OSError, pickle.PicklingError)


@dataclass(frozen=True)
class RunCell:
    """One independent unit of sweep work.

    Cells built by the :mod:`repro.platform` sweep helpers carry the
    declarative :class:`RunSpec` they came from; their cache key is
    then the SHA-256 of the spec's canonical JSON (auditable from the
    on-disk entry).  Raw-object cells fall back to the recursive
    object-walk fingerprint.

    ``target_ci`` switches the cell to variance-adaptive Monte-Carlo
    sampling (:meth:`AppRunner.run_adaptive`); it travels in the cell
    (not the ambient context) because worker processes never see the
    parent's :class:`PerfContext`.  The knob folds into the cache key
    only when active, so default-config keys — and every cache entry
    written before the knob existed — are untouched (mirroring how
    ``FaultSpec`` composes into the canonical spec JSON only when
    faults are enabled).
    """

    machine: "Machine"
    profile: "WorkloadProfile"
    os_instance: "OsInstance"
    n_nodes: int
    n_runs: int
    seed: int
    spec: Optional["RunSpec"] = None
    target_ci: Optional[float] = None
    max_adaptive_runs: int = 64

    def key(self, memo: dict | None = None) -> str:
        """Content address of this cell (the cache key)."""
        if self.spec is not None:
            base = spec_key(self.spec)
        else:
            base = run_key(self.machine, self.profile, self.os_instance,
                           self.n_nodes, self.n_runs, self.seed, memo=memo)
        if self.target_ci is None:
            return base
        import hashlib

        payload = (f"{base}|target_ci:{self.target_ci!r}"
                   f"|max_adaptive_runs:{int(self.max_adaptive_runs)}")
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def adaptive_fields() -> dict:
    """The ambient context's adaptive-stopping knobs as RunCell kwargs.

    Sweep builders call this in the parent process, where the installed
    :class:`PerfContext` is visible, and bake the values into each cell
    so worker processes honour them.
    """
    ctx = get_context()
    if ctx.target_ci is None:
        return {}
    return {"target_ci": ctx.target_ci,
            "max_adaptive_runs": ctx.max_adaptive_runs}


def _execute_cell(cell: RunCell) -> "RunResult":
    """Run one cell; module-level so worker processes can unpickle it."""
    from ..runtime.runner import AppRunner

    runner = AppRunner(cell.machine, cell.profile, seed=cell.seed)
    if cell.target_ci is not None:
        return runner.run_adaptive(cell.os_instance, cell.n_nodes,
                                   n_runs=cell.n_runs,
                                   target_ci=cell.target_ci,
                                   max_runs=cell.max_adaptive_runs)
    return runner.run(cell.os_instance, cell.n_nodes, n_runs=cell.n_runs)


def _run_serial(cells: Sequence[RunCell]) -> list["RunResult"]:
    return [_execute_cell(cell) for cell in cells]


@dataclass
class _PartialPoolFailure(Exception):
    """A pool dispatch died part-way: carries what *did* finish.

    ``done`` maps positions (within the dispatched batch) to harvested
    results, ``failed_index`` names the cell whose future raised, and
    ``cause`` explains why.  Internal to this module — callers of
    :func:`execute_cells` never see it.
    """

    done: dict[int, "RunResult"] = field(default_factory=dict)
    failed_index: int = 0
    cause: str = ""

    def __post_init__(self) -> None:
        super().__init__(self.cause)


def _run_pool(pool: ProcessPoolExecutor, cells: Sequence[RunCell],
              jobs: int, timeout: Optional[float] = None
              ) -> list["RunResult"]:
    """Fan ``cells`` out over ``pool``; results in submission order.

    One future per cell so a pool failure is attributable: when a
    future raises an infrastructure error (or exceeds ``timeout``
    seconds), every already-finished result is harvested and shipped
    back inside :class:`_PartialPoolFailure` so the caller retries only
    the remainder.
    """
    futures = [pool.submit(_execute_cell, cell) for cell in cells]
    out: list["RunResult"] = []
    for i, future in enumerate(futures):
        try:
            out.append(future.result(timeout=timeout))
        except (*_POOL_ERRORS, FuturesTimeoutError) as exc:
            done = dict(enumerate(out))
            # Harvest everything that finished behind the failure
            # before cancelling the rest.
            for j in range(i + 1, len(futures)):
                f = futures[j]
                if f.done() and not f.cancelled():
                    try:
                        done[j] = f.result(timeout=0)
                    except Exception:
                        pass
                else:
                    f.cancel()
            kind = ("timeout" if isinstance(exc, FuturesTimeoutError)
                    else type(exc).__name__)
            raise _PartialPoolFailure(
                done=done, failed_index=i,
                cause=f"{kind}: {exc}") from exc
    return out


def execute_cells(
    cells: Sequence[RunCell],
    jobs: Optional[int] = None,
    cache: Optional["RunCache"] = None,
    cell_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
) -> list["RunResult"]:
    """Execute ``cells``, returning results in cell order.

    ``jobs``/``cache``/``cell_timeout``/``max_retries`` default to the
    ambient :class:`PerfContext`.  Cache lookups and stores happen in
    the parent process only, so workers stay pure compute and the disk
    tier sees no write races.  ``cell_timeout`` bounds each cell's
    parallel execution (seconds); a timed-out or pool-killed dispatch
    retries only its unfinished cells, ``max_retries`` times, before
    degrading to the serial path.
    """
    ctx = get_context()
    if jobs is None:
        jobs = ctx.jobs
    if cache is None:
        cache = ctx.cache
    if cell_timeout is None:
        cell_timeout = ctx.cell_timeout
    if max_retries is None:
        max_retries = ctx.max_retries
    counters = get_metrics()
    counters.add("executor.cells", len(cells))

    results: list[Optional["RunResult"]] = [None] * len(cells)
    pending: list[int] = []
    keys: dict[int, str] = {}
    if cache is not None:
        memo: dict = {}
        with counters.timer("cache.lookup"):
            for i, cell in enumerate(cells):
                keys[i] = cell.key(memo)
                hit = cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    counters.add("cache.hits")
                else:
                    pending.append(i)
                    counters.add("cache.misses")
    else:
        pending = list(range(len(cells)))

    todo = [cells[i] for i in pending]
    with counters.timer("executor.compute"):
        computed = _dispatch(todo, jobs, ctx, counters,
                             timeout=cell_timeout,
                             max_retries=max_retries)
    for i, result in zip(pending, computed):
        results[i] = result
        if cache is not None:
            cache.put(keys[i], result, spec=cells[i].spec)
    tracer = get_tracer()
    if tracer is not None:
        # Parent-side spans in submission order: deterministic for any
        # --jobs value and laid end to end on the perf layer's logical
        # clock, with the cell's *simulated* mean time as the length
        # (wall time is nondeterministic and stays out of the trace).
        computed_set = set(pending)
        for i, result in enumerate(results):
            counters.counter("executor.cells_by_kernel",
                             kernel=result.os_kind).inc()
            tracer.span(
                "perf",
                f"{result.app}/{result.os_kind}/n{result.n_nodes}",
                ts=tracer.advance("perf", result.mean_time),
                duration=result.mean_time, actor="executor",
                cached=i not in computed_set,
                key=keys[i] if i in keys else cells[i].key())
    return results  # type: ignore[return-value]


def _dispatch(cells: Sequence[RunCell], jobs: int, ctx, counters,
              timeout: Optional[float] = None,
              max_retries: int = 2) -> list["RunResult"]:
    if jobs <= 1 or len(cells) <= 1:
        counters.add("executor.serial_cells", len(cells))
        return _run_serial(cells)

    results: dict[int, "RunResult"] = {}
    pending = list(range(len(cells)))
    failures = 0
    while pending and failures <= max_retries:
        batch = [cells[i] for i in pending]
        shared = (ctx.pool()
                  if jobs == ctx.jobs and failures == 0 else None)
        # Tests monkeypatch _run_pool with the historical 3-arg
        # signature, so the timeout travels only when it is set.
        extra = () if timeout is None else (timeout,)
        try:
            if shared is not None:
                out = _run_pool(shared, batch, jobs, *extra)
            else:
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(batch))
                ) as pool:
                    out = _run_pool(pool, batch, jobs, *extra)
        except _PartialPoolFailure as failure:
            if shared is not None:
                ctx.mark_pool_broken()
            failures += 1
            if failures == 1:
                counters.add("executor.pool_failures")
            counters.add("executor.cell_retries")
            failed_cell = batch[failure.failed_index]
            # Soak logs must attribute failures to a specific retry
            # attempt, not just the cell key.
            logger.warning(
                "sweep cell %s failed in the worker pool (%s); "
                "%d/%d cells of this batch finished, retrying the rest "
                "(retry attempt %d/%d)",
                failed_cell.key(), failure.cause, len(failure.done),
                len(batch), failures, max_retries)
            for pos, result in failure.done.items():
                results[pending[pos]] = result
            pending = [i for i in pending if i not in results]
            continue
        except _POOL_ERRORS as exc:
            # The pool died without per-cell attribution (fork failed,
            # batch-level pickling error): every pending cell remains.
            if shared is not None:
                ctx.mark_pool_broken()
            failures += 1
            if failures == 1:
                counters.add("executor.pool_failures")
            logger.warning(
                "worker pool failed before any cell could be "
                "attributed (%s: %s); retrying %d cells "
                "(retry attempt %d/%d)", type(exc).__name__, exc,
                len(pending), failures, max_retries)
            continue
        for pos, result in zip(pending, out):
            results[pos] = result
        pending = []

    if pending:
        # Retry budget exhausted: infrastructure is unusable, degrade
        # to serial — the sweep still completes, just slower.
        logger.warning(
            "worker pool unusable after %d attempts; running %d "
            "remaining cells serially", failures, len(pending))
        counters.add("executor.serial_cells", len(pending))
        serial = _run_serial([cells[i] for i in pending])
        for pos, result in zip(pending, serial):
            results[pos] = result
    else:
        counters.add("executor.parallel_cells", len(cells))

    return [results[i] for i in range(len(cells))]
