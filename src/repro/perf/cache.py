"""Memoized run cache: content-addressed storage of RunResults.

Two tiers under one interface:

* **memory** — a plain dict, always on; repeated sweeps within one
  process (e.g. ``run_all`` regenerating figures that share cells) hit
  it for free;
* **disk** — one JSON file per key under the cache directory, written
  atomically (temp file + rename), so repeated *invocations* of the
  benchmark/figure harness skip resimulation entirely.

The cache directory resolves to ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro-runs``.  JSON float serialization uses ``repr``
round-tripping, so a cached replay reconstructs every wall time and
breakdown component bit-for-bit — rendered figure text is unchanged.

Disk entries written from spec-driven sweeps embed the canonical
:class:`~repro.platform.spec.RunSpec` JSON whose SHA-256 is the file
name, so every entry is self-describing: ``{"spec": {...}, "result":
{...}}`` — cache identity is auditable with a text editor.

Corruption containment: a disk entry that fails to parse or decode
(truncated write, bit rot, hand edit) is **quarantined** — moved to a
``quarantine/`` subdirectory for post-mortem — and reported as a miss,
so one bad file can never kill a sweep.  ``repro cache verify`` walks
the whole disk tier applying the same check.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pathlib
import tempfile
import time
from typing import TYPE_CHECKING, Optional

from ..analysis.race import get_race_detector
from ..chaos.hooks import get_chaos
from ..errors import CacheCorruptionError, ConfigurationError

logger = logging.getLogger(__name__)

#: Subdirectory (inside the cache dir) where corrupt entries land.
QUARANTINE_DIR = "quarantine"

if TYPE_CHECKING:
    from ..runtime.runner import RunResult


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-runs``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-runs"


def result_to_dict(result: "RunResult") -> dict:
    """JSON-able representation of a RunResult (exact round trip)."""
    b = result.breakdown
    return {
        "app": result.app,
        "machine": result.machine,
        "os_kind": result.os_kind,
        "n_nodes": result.n_nodes,
        "n_threads": result.n_threads,
        "times": list(result.times),
        "breakdown": {
            "compute": b.compute,
            "tlb": b.tlb,
            "churn": b.churn,
            "collective": b.collective,
            "noise": b.noise,
            "init": b.init,
        },
    }


def result_from_dict(payload: dict) -> "RunResult":
    from ..runtime.runner import Breakdown, RunResult

    return RunResult(
        app=payload["app"],
        machine=payload["machine"],
        os_kind=payload["os_kind"],
        n_nodes=int(payload["n_nodes"]),
        n_threads=int(payload["n_threads"]),
        times=tuple(float(t) for t in payload["times"]),
        breakdown=Breakdown(**{
            k: float(v) for k, v in payload["breakdown"].items()
        }),
    )


class RunCache:
    """In-memory + optional on-disk store of RunResults by content key.

    ``directory=None`` keeps the cache purely in memory (one process);
    a path enables the persistent tier.  Use :meth:`default` for the
    standard location honouring ``$REPRO_CACHE_DIR``.

    ``durable=False`` skips the fsync before the atomic publish —
    an escape hatch for throwaway test caches; the durable default is
    what the crash-consistency gate (CC002) checks.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 durable: bool = True) -> None:
        self._memory: dict[str, "RunResult"] = {}
        #: Corrupt disk entries moved aside by this instance.
        self.quarantined = 0
        self.durable = durable
        self.directory: Optional[pathlib.Path] = (
            pathlib.Path(directory) if directory is not None else None
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    @classmethod
    def default(cls) -> "RunCache":
        """Persistent cache at the standard location."""
        return cls(default_cache_dir())

    # -- access -------------------------------------------------------

    def _path(self, key: str) -> pathlib.Path:
        assert self.directory is not None
        if not key or any(c in key for c in "/\\."):
            raise ConfigurationError(f"malformed cache key {key!r}")
        return self.directory / f"{key}.json"

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        """Move a corrupt entry aside (never delete: post-mortems need
        the bytes) and log a warning.  Best-effort: a failed move must
        not turn a cache miss into a sweep failure."""
        assert self.directory is not None
        qdir = self.directory / QUARANTINE_DIR
        target = qdir / path.name
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            n = 0
            while target.exists():
                n += 1
                target = qdir / f"{path.stem}.{n}{path.suffix}"
            os.replace(path, target)
        except OSError:
            logger.warning("run cache: could not quarantine corrupt "
                           "entry %s (%s)", path.name, reason)
            return
        self.quarantined += 1
        logger.warning("run cache: quarantined corrupt entry %s -> %s "
                       "(%s)", path.name, target, reason)

    @staticmethod
    def _decode_entry(payload) -> "RunResult":
        """Entry JSON -> RunResult; :class:`CacheCorruptionError` on any
        structural problem (shared by :meth:`get` and :meth:`verify`)."""
        if not isinstance(payload, dict):
            raise CacheCorruptionError(
                f"entry is {type(payload).__name__}, expected object")
        try:
            return result_from_dict(payload.get("result", payload))
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CacheCorruptionError(
                f"undecodable result payload: {exc}") from exc

    def get(self, key: str) -> Optional["RunResult"]:
        """The cached result for ``key``, or None on a miss.

        A present-but-corrupt disk entry (``json.JSONDecodeError``,
        missing/ill-typed fields, truncated file) is quarantined and
        reported as a miss — the sweep recomputes and overwrites."""
        rd = get_race_detector()
        if rd is not None:
            rd.cache_read(rd.resource_for(self, "runcache"), key)
        result = self._memory.get(key)
        if result is not None:
            return result
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            # Missing or unreadable: a plain miss.
            return None
        try:
            payload = json.loads(text)
            result = self._decode_entry(payload)
        except ValueError as exc:  # JSONDecodeError is a ValueError
            self._quarantine(path, f"invalid JSON: {exc}")
            return None
        except CacheCorruptionError as exc:
            self._quarantine(path, str(exc))
            return None
        self._memory[key] = result
        return result

    def put(self, key: str, result: "RunResult", spec=None) -> None:
        """Store a result; ``spec`` (a RunSpec) makes the disk entry
        self-describing — the JSON that hashed to ``key`` is written
        next to the result, so cache identity is auditable with a text
        editor."""
        rd = get_race_detector()
        if rd is not None:
            digest = hashlib.sha256(
                json.dumps(result_to_dict(result), sort_keys=True,
                           separators=(",", ":")).encode()
            ).hexdigest()
            rd.cache_put(rd.resource_for(self, "runcache"), key, digest)
        self._memory[key] = result
        if self.directory is None:
            return
        path = self._path(key)
        entry = {"result": result_to_dict(result)}
        if spec is not None:
            entry["spec"] = spec.to_dict()
        # Storage payload, not a digest input: the entry's identity is
        # its file name (the spec hash), so key order here is free.
        payload = json.dumps(entry)
        data = payload.encode("utf-8")
        # Atomic publish: never expose a half-written entry.  A crash
        # mid-write (chaos or real) leaves only a stray ``*.tmp`` —
        # never a corrupt ``*.json`` — and an injected I/O error is a
        # silent skip: the cache degrades, correctness is unaffected.
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            try:
                cz = get_chaos()
                if cz is None:
                    os.write(fd, data)
                else:
                    cz.write(fd, data, "cache.put")
                # The rename is only atomic for bytes that reached the
                # disk: without the fsync a power cut shortly *after*
                # os.replace can leave the entry published but empty
                # or torn (CC002).
                if self.durable:
                    os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        """Distinct entries reachable from this cache instance."""
        keys = set(self._memory)
        if self.directory is not None:
            keys.update(p.stem for p in sorted(self.directory.glob("*.json")))
        return len(keys)

    # -- maintenance --------------------------------------------------

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns entries removed."""
        removed = len(self)
        self._memory.clear()
        if self.directory is not None:
            for path in sorted(self.directory.glob("*.json")):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def verify(self) -> dict:
        """Walk the disk tier, quarantine every corrupt entry, and
        report: ``{"checked", "ok", "quarantined": [filenames]}``.

        Safe to run concurrently with sweeps — entries are only ever
        moved into ``quarantine/``, never deleted or rewritten.
        """
        report: dict = {"checked": 0, "ok": 0, "quarantined": []}
        if self.directory is None:
            return report
        for path in sorted(self.directory.glob("*.json")):
            report["checked"] += 1
            try:
                payload = json.loads(path.read_text())
                self._decode_entry(payload)
            except (OSError, ValueError, CacheCorruptionError) as exc:
                self._quarantine(path, str(exc))
                report["quarantined"].append(path.name)
            else:
                report["ok"] += 1
        return report

    def gc(self, max_age_days: Optional[float] = None,
           max_bytes: Optional[int] = None) -> dict:
        """Prune disk-tier entries by age and/or total size.

        ``max_age_days`` removes entries older than the cutoff (by
        mtime); ``max_bytes`` then removes oldest-first until the tier
        fits the budget.  At least one bound is required.  Returns
        ``{"checked", "removed", "kept", "reclaimed_bytes"}``.

        Quarantined entries are *never* touched: ``quarantine/`` holds
        corruption evidence for post-mortems, and reclaiming it would
        destroy exactly the bytes someone needs to inspect.  Pruned
        keys are dropped from the memory tier too, so a gc'd entry is
        a true miss afterwards.
        """
        if max_age_days is None and max_bytes is None:
            raise ConfigurationError(
                "cache gc needs a bound: max_age_days and/or max_bytes")
        if max_age_days is not None and max_age_days < 0:
            raise ConfigurationError("max_age_days must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError("max_bytes must be >= 0")
        report = {"checked": 0, "removed": 0, "kept": 0,
                  "reclaimed_bytes": 0}
        if self.directory is None:
            return report
        entries = []  # (mtime, path, size) — oldest first after sort
        for path in sorted(self.directory.glob("*.json")):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, str(path), st.st_size))
        entries.sort()
        report["checked"] = len(entries)
        doomed = []
        survivors = []
        if max_age_days is not None:
            # Entry ages are measured against the host clock: gc is an
            # operator command, not a simulation path.
            cutoff = time.time() - max_age_days * 86400.0
            for entry in entries:
                (doomed if entry[0] < cutoff else survivors).append(entry)
        else:
            survivors = entries
        if max_bytes is not None:
            total = sum(size for _, _, size in survivors)
            while survivors and total > max_bytes:
                oldest = survivors.pop(0)
                doomed.append(oldest)
                total -= oldest[2]
        for _, pathname, size in doomed:
            path = pathlib.Path(pathname)
            try:
                path.unlink()
            except OSError:
                continue
            self._memory.pop(path.stem, None)
            report["removed"] += 1
            report["reclaimed_bytes"] += size
        report["kept"] = report["checked"] - report["removed"]
        return report

    def info(self) -> dict:
        """Cache location and population summary."""
        on_disk = (
            sorted(p.stem for p in self.directory.glob("*.json"))
            if self.directory is not None else []
        )
        in_quarantine = (
            len(list((self.directory / QUARANTINE_DIR).glob("*.json*")))
            if self.directory is not None
            and (self.directory / QUARANTINE_DIR).is_dir() else 0
        )
        return {
            "directory": str(self.directory) if self.directory else None,
            "memory_entries": len(self._memory),
            "disk_entries": len(on_disk),
            "quarantined_entries": in_quarantine,
        }
