"""repro.perf — the performance subsystem of the experiment engine.

Three cooperating layers make repeated artefact regeneration fast
without perturbing a single simulated number:

* :mod:`repro.perf.executor` — a deterministic parallel sweep executor:
  independent (app, OS, n_nodes) cells fan out over a
  ``concurrent.futures.ProcessPoolExecutor`` (with a transparent serial
  fallback) and are reassembled in submission order, so parallel runs
  are byte-identical to serial ones;
* :mod:`repro.perf.cache` — a content-addressed memoization cache for
  :class:`~repro.runtime.runner.RunResult`: keys are SHA-256 digests of
  the complete run configuration (machine, profile, OS tuning,
  n_nodes, n_runs, seed), values live in memory and optionally on disk
  (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-runs``);
* :mod:`repro.obs.metrics` — wall-time / hit-rate / labeled-series
  instrumentation surfaced by ``repro experiments --stats`` and
  ``repro metrics`` (:mod:`repro.perf.counters` is the deprecated
  compatibility shim).

:mod:`repro.perf.context` ties them together: ``perf_context(jobs=4,
cache=...)`` makes every sweep inside the block fan out and memoize.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry
from .cache import RunCache, default_cache_dir
from .context import PerfContext, get_context, perf_context
from .counters import PerfCounters, get_counters
from .executor import RunCell, execute_cells
from .fingerprint import fingerprint, run_key, spec_key

__all__ = [
    "MetricsRegistry",
    "PerfContext",
    "PerfCounters",
    "RunCache",
    "RunCell",
    "default_cache_dir",
    "execute_cells",
    "fingerprint",
    "get_context",
    "get_counters",
    "perf_context",
    "run_key",
    "spec_key",
]
