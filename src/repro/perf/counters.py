"""Deprecated shim — superseded by :mod:`repro.obs.metrics`.

``PerfCounters`` grew labels, gauges and histograms and moved to
:class:`repro.obs.metrics.MetricsRegistry`; the registry implements the
complete legacy surface (:meth:`add`, :meth:`timer`, :attr:`counts`,
:attr:`timings`, :meth:`hit_rate`, :meth:`report`, :meth:`snapshot`),
so every existing import and call keeps working:

    from repro.perf.counters import PerfCounters, get_counters  # still fine

New code should import :class:`~repro.obs.metrics.MetricsRegistry` /
:func:`~repro.obs.metrics.get_metrics` directly; this module exists
only so old imports don't break and will be removed in a future major
version.
"""

from __future__ import annotations

import warnings

from ..obs.metrics import MetricsRegistry, get_metrics

#: Deprecated alias of :class:`repro.obs.metrics.MetricsRegistry`.
PerfCounters = MetricsRegistry


def get_counters() -> MetricsRegistry:
    """Deprecated alias of :func:`repro.obs.metrics.get_metrics`."""
    warnings.warn(
        "repro.perf.counters.get_counters() is deprecated; use "
        "repro.obs.metrics.get_metrics()",
        DeprecationWarning, stacklevel=2)
    return get_metrics()
