"""Lightweight timing and hit-rate instrumentation.

A :class:`PerfCounters` holds named monotonic counters and accumulated
wall-time timers.  The executor and the run cache record into the
ambient instance (:func:`get_counters`); ``repro experiments --stats``
prints :meth:`PerfCounters.report` after the run.

The layer is deliberately dependency-free and cheap enough to stay on
in production: one dict update per event, one ``perf_counter`` pair per
timed block.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator


class PerfCounters:
    """Named event counters plus accumulated wall-clock timers."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = defaultdict(int)
        self.timings: dict[str, float] = defaultdict(float)

    # -- recording ----------------------------------------------------

    def add(self, name: str, n: int = 1) -> None:
        """Increment the event counter ``name`` by ``n``."""
        self.counts[name] += n

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timings[name] += time.perf_counter() - t0

    def reset(self) -> None:
        self.counts.clear()
        self.timings.clear()

    # -- reading ------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict copy (counts, timings) for assertions/export."""
        return {"counts": dict(self.counts), "timings": dict(self.timings)}

    def hit_rate(self, prefix: str = "cache") -> float:
        """``<prefix>.hits / (<prefix>.hits + <prefix>.misses)``; 0.0
        when nothing was recorded."""
        hits = self.counts.get(f"{prefix}.hits", 0)
        misses = self.counts.get(f"{prefix}.misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    def report(self) -> str:
        """Human-readable summary (the ``--stats`` output)."""
        lines = ["perf counters:"]
        if not self.counts and not self.timings:
            lines.append("  (nothing recorded)")
            return "\n".join(lines)
        for name in sorted(self.counts):
            lines.append(f"  {name:<28} {self.counts[name]}")
        for name in sorted(self.timings):
            lines.append(f"  {name:<28} {self.timings[name]:.3f} s")
        total = self.counts.get("cache.hits", 0) + self.counts.get(
            "cache.misses", 0)
        if total:
            lines.append(f"  {'cache.hit_rate':<28} {self.hit_rate():.1%}")
        return "\n".join(lines)


#: Process-wide default instance; the context layer points at it unless
#: a scope installs its own.
_GLOBAL = PerfCounters()


def get_counters() -> PerfCounters:
    """The ambient counters (the context's, falling back to the global
    instance)."""
    from .context import get_context

    ctx = get_context()
    return ctx.counters if ctx.counters is not None else _GLOBAL
