"""Resolving declarative specs into booted composites, and the
spec-driven sweep entry points the experiments consume.

:func:`build` is the only place a :class:`PlatformSpec` turns into
live objects; resolutions are memoized by canonical JSON so every
sweep that names the same platform shares one booted instance (the
pre-refactor behaviour of constructing one kernel per sweep, made
global).  :func:`run_cells` / :func:`compare_platforms` /
:func:`sweep_platform_apps` construct spec-carrying
:class:`~repro.perf.executor.RunCell` grids, so the run cache keys
every result by the SHA-256 of its RunSpec JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..hardware.machines import Machine
from ..kernel.base import OsInstance
from ..kernel.tuning import LinuxTuning
from ..net.fabric import FabricSpec
from .compose import compose_os, noise_sources, resolve_fabric
from .spec import PlatformSpec, RunSpec

if TYPE_CHECKING:
    from ..noise.source import NoiseSource
    from ..runtime.runner import Comparison, RunResult


@dataclass(frozen=True)
class ResolvedPlatform:
    """The concrete composite behind one PlatformSpec."""

    spec: PlatformSpec
    machine: Machine
    os_instance: OsInstance
    fabric: FabricSpec
    tuning: LinuxTuning

    def noise_sources(self) -> "list[NoiseSource]":
        """The platform's noise catalogue, honouring the spec's
        noise switches."""
        return noise_sources(
            self.os_instance,
            include_stragglers=self.spec.noise.include_stragglers,
        )


#: canonical spec JSON -> resolved composite (booted instances are
#: shareable across sweeps: run results depend only on cell values).
_RESOLVED: dict[str, ResolvedPlatform] = {}


def build(spec: PlatformSpec, fresh: bool = False) -> ResolvedPlatform:
    """Resolve a spec into ``(machine, OS, fabric, tuning)``.

    ``fresh=True`` bypasses the memo and boots a new instance — needed
    when the caller mutates OS-level state (e.g. spawning processes,
    as the Fig. 2 live rendering does).
    """
    key = spec.canonical_json()
    if not fresh:
        hit = _RESOLVED.get(key)
        if hit is not None:
            return hit
    machine = spec.resolved_machine()
    tuning = spec.resolved_tuning()
    os_instance = compose_os(
        machine, spec.os_kind, tuning,
        mck_memory_fraction=spec.mckernel.memory_fraction,
        mck_picodriver=spec.mckernel.picodriver,
    )
    resolved = ResolvedPlatform(
        spec=spec,
        machine=machine,
        os_instance=os_instance,
        fabric=resolve_fabric(machine),
        tuning=tuning,
    )
    if not fresh:
        _RESOLVED[key] = resolved
    return resolved


def clear_build_cache() -> int:
    """Drop all memoized resolutions (tests, long-lived processes)."""
    n = len(_RESOLVED)
    _RESOLVED.clear()
    return n


def run_cells(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache=None,
) -> "list[RunResult]":
    """Execute one RunSpec per cell through the perf executor.

    Results come back in spec order, bit-identical to a serial run;
    cache keys are the SHA-256 of each spec's canonical JSON.
    """
    from ..perf.executor import RunCell, adaptive_fields, execute_cells

    adaptive = adaptive_fields()
    cells = []
    for spec in specs:
        resolved = build(spec.platform)
        profile = _profile(spec.app)
        cells.append(RunCell(resolved.machine, profile,
                             resolved.os_instance, spec.n_nodes,
                             spec.n_runs, spec.seed, spec=spec,
                             **adaptive))
    return execute_cells(cells, jobs=jobs, cache=cache)


def _profile(app: str):
    from ..apps import ALL_PROFILES

    return ALL_PROFILES[app]()


def compare_platforms(
    platform: PlatformSpec,
    app: str,
    node_counts: Sequence[int],
    n_runs: int = 3,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache=None,
) -> "list[Comparison]":
    """Linux-vs-McKernel comparison sweep, declaratively.

    ``platform`` fixes machine/tuning/noise; both OS personalities are
    derived from it, mirroring the paper's methodology of running each
    pair on the exact same nodes (here: the same seed stream).
    """
    from ..runtime.runner import Comparison

    linux_spec = platform.with_os("linux")
    mck_spec = platform.with_os("mckernel")
    specs = []
    for n in node_counts:
        for os_spec in (linux_spec, mck_spec):
            specs.append(RunSpec(platform=os_spec, app=app, n_nodes=n,
                                 n_runs=n_runs, seed=seed))
    results = run_cells(specs, jobs=jobs, cache=cache)
    return [
        Comparison(n_nodes=n, linux=results[2 * i],
                   mckernel=results[2 * i + 1])
        for i, n in enumerate(node_counts)
    ]


def sweep_platform_apps(
    platform: PlatformSpec,
    apps: Sequence[str],
    node_counts: Sequence[int],
    n_runs: int,
    seed: int,
    jobs: Optional[int] = None,
    cache=None,
) -> "dict[str, list[Comparison]]":
    """The Figs. 5-7 grid: every (app, OS, node count) cell of one
    platform, flattened into a single executor fan-out."""
    from ..runtime.runner import Comparison

    linux_spec = platform.with_os("linux")
    mck_spec = platform.with_os("mckernel")
    specs = []
    for app in apps:
        for n in node_counts:
            for os_spec in (linux_spec, mck_spec):
                specs.append(RunSpec(platform=os_spec, app=app,
                                     n_nodes=n, n_runs=n_runs,
                                     seed=seed))
    results = run_cells(specs, jobs=jobs, cache=cache)
    out: dict[str, list[Comparison]] = {}
    flat = iter(results)
    for app in apps:
        out[app] = [
            Comparison(n_nodes=n, linux=next(flat), mckernel=next(flat))
            for n in node_counts
        ]
    return out
