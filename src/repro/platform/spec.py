"""Declarative platform and run specifications.

A :class:`PlatformSpec` names the five ingredients the paper's
evaluation grid composes — machine, OS personality, Linux tuning (plus
field-level overrides), fabric, and noise switches — as *data*: plain
strings, numbers and booleans with a canonical JSON form.  A
:class:`RunSpec` adds the workload coordinates (application profile,
node count, repetition count, root seed), so one JSON document pins
down one simulation cell completely.

Nothing here is behavioural.  :func:`repro.platform.build` resolves a
spec into the concrete ``(Machine, OsInstance, FabricSpec, noise
sources)`` composite; the canonical JSON doubles as the run cache's
content address (see :func:`repro.perf.fingerprint.spec_key`), so
cache identity is auditable from a text artifact.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import typing
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from ..errors import ConfigurationError
from ..faults.spec import FaultSpec
from ..hardware.machines import Machine, a64fx_testbed, fugaku, oakforest_pacs
from ..kernel.tuning import (
    LinuxTuning,
    fugaku_production,
    ofp_default,
    untuned,
)

#: Machine id -> factory (the paper's three environments, Table 1/§6.3).
MACHINES: dict[str, Callable[[], Machine]] = {
    "oakforest-pacs": oakforest_pacs,
    "fugaku": fugaku,
    "a64fx-testbed": a64fx_testbed,
}

#: Tuning preset id -> factory (§4's three Linux deployments).
TUNINGS: dict[str, Callable[[], LinuxTuning]] = {
    "fugaku-production": fugaku_production,
    "ofp-default": ofp_default,
    "untuned": untuned,
}

OS_KINDS = ("linux", "mckernel")

#: Machine fields a spec may override (hypothetical-machine support).
MACHINE_OVERRIDE_FIELDS: dict[str, type] = {
    "name": str,
    "n_nodes": int,
    "interconnect": str,
}


def _type_error(field_name: str, expected: str, value: Any) -> ConfigurationError:
    return ConfigurationError(
        f"{field_name}: expected {expected}, got {value!r}"
    )


def _tuning_field_types() -> dict[str, type]:
    return typing.get_type_hints(LinuxTuning)


def _encode_value(value: Any) -> Any:
    """Lower one override value to a JSON-native type."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot encode override value {value!r} "
        f"({type(value).__qualname__}) as JSON"
    )


def _decode_value(field_name: str, expected: type, value: Any) -> Any:
    """Lift one JSON value back to the dataclass field's type."""
    if isinstance(expected, type) and issubclass(expected, enum.Enum):
        try:
            return expected(value)
        except ValueError:
            raise ConfigurationError(
                f"{field_name}: {value!r} is not a valid "
                f"{expected.__qualname__} "
                f"(one of {sorted(m.value for m in expected)})"
            ) from None
    if expected is bool:
        if not isinstance(value, bool):
            raise _type_error(field_name, "bool", value)
        return value
    if expected is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _type_error(field_name, "number", value)
        return float(value)
    if expected is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise _type_error(field_name, "int", value)
        return value
    if expected is str:
        if not isinstance(value, str):
            raise _type_error(field_name, "str", value)
        return value
    raise _type_error(field_name, expected.__name__, value)


@dataclass(frozen=True)
class NoiseSwitches:
    """Catalogue-level noise switches of one platform.

    ``include_stragglers`` controls the rare node-level service events:
    on for at-scale tail experiments (Fig. 4), off for the 16-node
    testbed characterisation (Table 2 / Fig. 3) where, at ~1 event per
    50 node-hours, they would only distort a seeded short run.
    """

    include_stragglers: bool = True

    def to_dict(self) -> dict:
        return {"include_stragglers": self.include_stragglers}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "NoiseSwitches":
        unknown = sorted(set(payload) - {"include_stragglers"})
        if unknown:
            raise ConfigurationError(
                f"noise: unknown field(s) {unknown}"
            )
        value = payload.get("include_stragglers", True)
        return cls(include_stragglers=_decode_value(
            "noise.include_stragglers", bool, value))


@dataclass(frozen=True)
class McKernelSwitches:
    """IHK/McKernel deployment knobs (§5.1's boot parameters)."""

    #: Fraction of node memory reserved for the LWK partition.
    memory_fraction: float = 0.9
    #: Tofu PicoDriver RDMA fast path (§5.1).
    picodriver: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.memory_fraction < 1.0:
            raise ConfigurationError(
                f"mckernel.memory_fraction: must be in (0, 1), "
                f"got {self.memory_fraction!r}"
            )

    def to_dict(self) -> dict:
        return {
            "memory_fraction": self.memory_fraction,
            "picodriver": self.picodriver,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "McKernelSwitches":
        known = {"memory_fraction", "picodriver"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"mckernel: unknown field(s) {unknown}"
            )
        return cls(
            memory_fraction=_decode_value(
                "mckernel.memory_fraction", float,
                payload.get("memory_fraction", 0.9)),
            picodriver=_decode_value(
                "mckernel.picodriver", bool,
                payload.get("picodriver", True)),
        )


_PLATFORM_FIELDS = (
    "name", "machine", "os_kind", "tuning",
    "tuning_overrides", "machine_overrides", "noise", "mckernel",
    "faults",
)


@dataclass(frozen=True)
class PlatformSpec:
    """One point of the (machine, OS, tuning, fabric, noise) grid.

    Everything is data: the machine and tuning are registry ids, the
    overrides are JSON-native ``{field: value}`` maps (enum fields
    carried by their string values), and the noise/McKernel switches
    are small nested records.  Validation happens at construction; the
    canonical JSON (:meth:`canonical_json`) is byte-stable and feeds
    the run cache's content address.
    """

    name: str
    machine: str
    os_kind: str = "linux"
    #: Tuning preset id; for McKernel platforms this is the *host*
    #: Linux tuning (whose TLB-flush mode still matters, §4.2.2).
    tuning: str = "fugaku-production"
    #: Field-level overrides applied over the tuning preset.
    tuning_overrides: Mapping[str, Any] = field(default_factory=dict)
    #: Overrides applied over the machine factory (hypothetical
    #: machines: scaled node counts, renamed systems, other fabrics).
    machine_overrides: Mapping[str, Any] = field(default_factory=dict)
    noise: NoiseSwitches = field(default_factory=NoiseSwitches)
    mckernel: McKernelSwitches = field(default_factory=McKernelSwitches)
    #: Optional fault scenario (see :mod:`repro.faults`).  The default
    #: null scenario injects nothing and is *omitted* from the
    #: canonical JSON, so fault support changes no pre-existing
    #: fingerprint, cache key or golden output.
    faults: FaultSpec = field(default_factory=FaultSpec)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"name: must be a non-empty string, got {self.name!r}")
        if self.machine not in MACHINES:
            raise ConfigurationError(
                f"machine: unknown machine {self.machine!r} "
                f"(known: {sorted(MACHINES)})")
        if self.os_kind not in OS_KINDS:
            raise ConfigurationError(
                f"os_kind: must be one of {OS_KINDS}, got {self.os_kind!r}")
        if self.tuning not in TUNINGS:
            raise ConfigurationError(
                f"tuning: unknown tuning preset {self.tuning!r} "
                f"(known: {sorted(TUNINGS)})")
        object.__setattr__(self, "tuning_overrides",
                           dict(self.tuning_overrides))
        object.__setattr__(self, "machine_overrides",
                           dict(self.machine_overrides))
        # Decoding validates every override (and names bad fields).
        self._decoded_tuning_overrides()
        self._decoded_machine_overrides()

    # -- resolution ------------------------------------------------------

    def _decoded_tuning_overrides(self) -> dict[str, Any]:
        types = _tuning_field_types()
        out: dict[str, Any] = {}
        for key, value in self.tuning_overrides.items():
            if key not in types:
                raise ConfigurationError(
                    f"tuning_overrides.{key}: LinuxTuning has no such "
                    f"field (known: {sorted(types)})")
            out[key] = _decode_value(
                f"tuning_overrides.{key}", types[key], value)
        return out

    def _decoded_machine_overrides(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for key, value in self.machine_overrides.items():
            if key not in MACHINE_OVERRIDE_FIELDS:
                raise ConfigurationError(
                    f"machine_overrides.{key}: not an overridable "
                    f"Machine field "
                    f"(known: {sorted(MACHINE_OVERRIDE_FIELDS)})")
            out[key] = _decode_value(
                f"machine_overrides.{key}",
                MACHINE_OVERRIDE_FIELDS[key], value)
        return out

    def resolved_machine(self) -> Machine:
        """The concrete :class:`Machine`, overrides applied."""
        machine = MACHINES[self.machine]()
        overrides = self._decoded_machine_overrides()
        return replace(machine, **overrides) if overrides else machine

    def resolved_tuning(self) -> LinuxTuning:
        """The concrete :class:`LinuxTuning`, overrides applied.

        For McKernel platforms this is the host Linux tuning.
        """
        tuning = TUNINGS[self.tuning]()
        overrides = self._decoded_tuning_overrides()
        return replace(tuning, **overrides) if overrides else tuning

    # -- derivation ------------------------------------------------------

    def with_os(self, os_kind: str) -> "PlatformSpec":
        """This platform under the other kernel personality."""
        if os_kind == self.os_kind:
            return self
        return replace(self, os_kind=os_kind,
                       name=f"{self.name}/{os_kind}")

    def with_tuning(self, tuning: LinuxTuning) -> "PlatformSpec":
        """This platform with a concrete tuning, expressed as overrides.

        The tuning is diffed against the spec's preset so the result
        stays fully declarative (the Table 2 / Fig. 3 countermeasure
        sweeps become derived specs).
        """
        base = TUNINGS[self.tuning]()
        overrides = {
            f.name: _encode_value(getattr(tuning, f.name))
            for f in dataclasses.fields(LinuxTuning)
            if getattr(tuning, f.name) != getattr(base, f.name)
        }
        return replace(self, tuning_overrides=overrides,
                       name=f"{self.name}[{tuning.name}]")

    def with_machine(self, **overrides: Any) -> "PlatformSpec":
        """This platform on a modified (possibly hypothetical) machine."""
        merged = {**self.machine_overrides,
                  **{k: _encode_value(v) for k, v in overrides.items()}}
        return replace(self, machine_overrides=merged)

    def with_noise(self, **switches: bool) -> "PlatformSpec":
        return replace(self, noise=replace(self.noise, **switches))

    def with_faults(self, faults: FaultSpec | None = None,
                    **overrides: Any) -> "PlatformSpec":
        """This platform inside a fault scenario.

        Pass a complete :class:`FaultSpec`, or field overrides applied
        on top of the spec's current scenario::

            spec.with_faults(node_mtbf_hours=100_000, max_retries=3)
        """
        if faults is not None and overrides:
            raise ConfigurationError(
                "with_faults takes a FaultSpec or field overrides, "
                "not both")
        if faults is None:
            faults = replace(self.faults, **overrides)
        return replace(self, faults=faults)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """Complete JSON-able form (defaults included, so the canonical
        serialization is independent of how the spec was built).

        The one exception is ``faults``: the default null scenario is
        omitted entirely, keeping every fault-free spec's canonical
        JSON — and therefore its fingerprint and run-cache key —
        byte-identical to the pre-fault-support serialization.
        """
        payload = {
            "name": self.name,
            "machine": self.machine,
            "os_kind": self.os_kind,
            "tuning": self.tuning,
            "tuning_overrides": dict(self.tuning_overrides),
            "machine_overrides": dict(self.machine_overrides),
            "noise": self.noise.to_dict(),
            "mckernel": self.mckernel.to_dict(),
        }
        if self.faults != FaultSpec.none():
            payload["faults"] = self.faults.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PlatformSpec":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"platform spec must be a JSON object, got "
                f"{type(payload).__name__}")
        unknown = sorted(set(payload) - set(_PLATFORM_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown platform spec field(s) {unknown} "
                f"(known: {sorted(_PLATFORM_FIELDS)})")
        for required in ("name", "machine"):
            if required not in payload:
                raise ConfigurationError(
                    f"{required}: required field missing")
        return cls(
            name=payload["name"],
            machine=payload["machine"],
            os_kind=payload.get("os_kind", "linux"),
            tuning=payload.get("tuning", "fugaku-production"),
            tuning_overrides=payload.get("tuning_overrides", {}),
            machine_overrides=payload.get("machine_overrides", {}),
            noise=NoiseSwitches.from_dict(payload.get("noise", {})),
            mckernel=McKernelSwitches.from_dict(
                payload.get("mckernel", {})),
            faults=FaultSpec.from_dict(payload.get("faults", {})),
        )

    def to_json(self, indent: int | None = None) -> str:
        """JSON form; ``indent=None`` gives the canonical byte-stable
        serialization (sorted keys, no whitespace)."""
        if indent is None:
            return self.canonical_json()
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PlatformSpec":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"invalid JSON: {exc}") from None
        return cls.from_dict(payload)

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


_RUN_FIELDS = ("platform", "app", "n_nodes", "n_runs", "seed")


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell: a platform plus workload coordinates.

    The canonical JSON of a RunSpec is the complete, auditable identity
    of one :class:`~repro.runtime.runner.RunResult`; its SHA-256 is the
    run cache key (see :func:`repro.perf.fingerprint.spec_key`).
    """

    platform: PlatformSpec
    app: str
    n_nodes: int
    n_runs: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        from ..apps import ALL_PROFILES

        if self.app not in ALL_PROFILES:
            raise ConfigurationError(
                f"app: unknown application {self.app!r} "
                f"(known: {sorted(ALL_PROFILES)})")
        for field_name in ("n_nodes", "n_runs"):
            value = getattr(self, field_name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise _type_error(field_name, "int", value)
            if value <= 0:
                raise ConfigurationError(
                    f"{field_name}: must be positive, got {value}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise _type_error("seed", "int", self.seed)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "platform": self.platform.to_dict(),
            "app": self.app,
            "n_nodes": self.n_nodes,
            "n_runs": self.n_runs,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunSpec":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"run spec must be a JSON object, got "
                f"{type(payload).__name__}")
        unknown = sorted(set(payload) - set(_RUN_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown run spec field(s) {unknown} "
                f"(known: {sorted(_RUN_FIELDS)})")
        for required in ("platform", "app", "n_nodes"):
            if required not in payload:
                raise ConfigurationError(
                    f"{required}: required field missing")
        return cls(
            platform=PlatformSpec.from_dict(payload["platform"]),
            app=payload["app"],
            n_nodes=payload["n_nodes"],
            n_runs=payload.get("n_runs", 3),
            seed=payload.get("seed", 0),
        )

    def to_json(self, indent: int | None = None) -> str:
        if indent is None:
            return self.canonical_json()
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"invalid JSON: {exc}") from None
        return cls.from_dict(payload)

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        """The run cache key: SHA-256 over the canonical JSON (plus
        schema and package version — see :mod:`repro.perf.fingerprint`)."""
        from ..perf.fingerprint import spec_key

        return spec_key(self)


def load_spec(text: str) -> "PlatformSpec | RunSpec":
    """Parse a JSON document as a RunSpec (if it has a ``platform``
    key) or a PlatformSpec."""
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(f"invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ConfigurationError("spec must be a JSON object")
    if "platform" in payload:
        return RunSpec.from_dict(payload)
    return PlatformSpec.from_dict(payload)
