"""repro.platform — declarative, serializable platform composition.

The paper's evaluation is a grid over five ingredients: machine, OS
personality, Linux tuning, fabric and noise catalogue.  This package
makes every point of that grid *data*:

* :class:`PlatformSpec` / :class:`RunSpec` — frozen, validated,
  JSON-round-trippable descriptions of a platform and of one
  simulation cell (canonical JSON doubles as the run cache key);
* the **registry** — the paper's named environments (``ofp-default``,
  ``fugaku-production``, ``a64fx-testbed``, hypothetical
  ``fugaku-x2/4/8`` scale-outs, and their McKernel twins);
* :func:`build` — the single resolver from spec to the concrete
  ``(Machine, OsInstance, FabricSpec, noise sources)`` composite;
* :func:`compose_os` / :func:`resolve_fabric` / :func:`noise_sources`
  — the one concrete composition point every substrate shares;
* :func:`run_cells` / :func:`compare_platforms` /
  :func:`sweep_platform_apps` — spec-driven sweep entry points.

Quickstart::

    from repro.platform import build, get_platform
    resolved = build(get_platform("fugaku-production"))
    resolved.machine, resolved.os_instance, resolved.fabric

or purely from JSON::

    from repro.platform import PlatformSpec
    spec = PlatformSpec.from_json(open("my_machine.json").read())
"""

from __future__ import annotations

from ..faults.spec import FaultSpec
from .compose import compose_os, noise_sources, resolve_fabric
from .registry import (
    get_platform,
    platform_names,
    register_platform,
)
from .resolve import (
    ResolvedPlatform,
    build,
    clear_build_cache,
    compare_platforms,
    run_cells,
    sweep_platform_apps,
)
from .spec import (
    MACHINES,
    OS_KINDS,
    TUNINGS,
    McKernelSwitches,
    NoiseSwitches,
    PlatformSpec,
    RunSpec,
    load_spec,
)

__all__ = [
    "FaultSpec",
    "MACHINES",
    "McKernelSwitches",
    "NoiseSwitches",
    "OS_KINDS",
    "PlatformSpec",
    "ResolvedPlatform",
    "RunSpec",
    "TUNINGS",
    "build",
    "clear_build_cache",
    "compare_platforms",
    "compose_os",
    "get_platform",
    "load_spec",
    "noise_sources",
    "platform_names",
    "register_platform",
    "resolve_fabric",
    "run_cells",
    "sweep_platform_apps",
]
