"""The named platform registry: the paper's environments as data.

Every entry is a plain :class:`~repro.platform.spec.PlatformSpec` —
``repro platform show <name>`` prints the JSON, and a user-supplied
JSON file is a first-class peer of any registry entry (new machines
and OS variants are data, not code edits).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..hardware.machines import NODES_PER_RACK, fugaku
from .spec import NoiseSwitches, PlatformSpec


def _builtin_specs() -> list[PlatformSpec]:
    fugaku_nodes = fugaku().n_nodes
    specs = [
        # Oakforest-PACS: moderately tuned CentOS vs IHK/McKernel (§6.2).
        PlatformSpec(name="ofp-default", machine="oakforest-pacs",
                     os_kind="linux", tuning="ofp-default"),
        PlatformSpec(name="ofp-mckernel", machine="oakforest-pacs",
                     os_kind="mckernel", tuning="ofp-default"),
        # Fugaku: the highly tuned production stack (§4).
        PlatformSpec(name="fugaku-production", machine="fugaku",
                     os_kind="linux", tuning="fugaku-production"),
        PlatformSpec(name="fugaku-mckernel", machine="fugaku",
                     os_kind="mckernel", tuning="fugaku-production"),
        PlatformSpec(name="fugaku-untuned", machine="fugaku",
                     os_kind="linux", tuning="untuned"),
        # The 16-node A64FX testbed (Table 2 / Fig. 3, §6.3): kernel
        # noise characterisation, so node-level stragglers are off.
        PlatformSpec(name="a64fx-testbed", machine="a64fx-testbed",
                     os_kind="linux", tuning="fugaku-production",
                     noise=NoiseSwitches(include_stragglers=False)),
        PlatformSpec(name="a64fx-testbed-mckernel", machine="a64fx-testbed",
                     os_kind="mckernel", tuning="fugaku-production",
                     noise=NoiseSwitches(include_stragglers=False)),
    ]
    # Hypothetical machines for the §8 outlook: Fugaku's node design
    # replicated at 2x/4x/8x scale, production tuning held fixed.
    for scale in (2, 4, 8):
        specs.append(PlatformSpec(
            name=f"fugaku-x{scale}", machine="fugaku",
            os_kind="linux", tuning="fugaku-production",
            machine_overrides={"n_nodes": fugaku_nodes * scale,
                               "name": f"Fugaku-x{scale}"},
        ))
    return specs


_REGISTRY: dict[str, PlatformSpec] = {
    spec.name: spec for spec in _builtin_specs()
}


def platform_names() -> list[str]:
    """Registered platform names, in registration order."""
    return list(_REGISTRY)


def get_platform(name: str) -> PlatformSpec:
    """Look up a registered platform spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {name!r}; known: {platform_names()}"
        ) from None


def register_platform(spec: PlatformSpec,
                      overwrite: bool = False) -> PlatformSpec:
    """Add a spec to the registry (e.g. one loaded from JSON)."""
    if spec.name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"platform {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec
