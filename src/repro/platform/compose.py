"""The single concrete composition point for OS / fabric / noise.

Before this module existed, ``LinuxKernel(...)`` / ``boot_mckernel(...)``
construction was scattered over ~10 call sites with visible drift (some
passed ``interconnect=``, others silently dropped it).  Every substrate
now composes here: the CLI, the batch system, the experiment modules
and :func:`repro.platform.build` all call the same three functions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..hardware.machines import Machine
from ..kernel.base import OsInstance
from ..kernel.linux import LinuxKernel
from ..kernel.tuning import LinuxTuning
from ..mckernel.lwk import boot_mckernel
from ..net.fabric import FabricSpec, fabric_for
from ..noise.catalog import noise_sources_for

if TYPE_CHECKING:
    from ..noise.source import NoiseSource


def compose_os(
    machine: Machine,
    os_kind: str,
    tuning: LinuxTuning,
    *,
    mck_memory_fraction: float = 0.9,
    mck_picodriver: bool = True,
) -> OsInstance:
    """Boot one kernel personality on one machine's node design.

    ``tuning`` is the Linux tuning for ``os_kind="linux"`` and the
    *host* tuning for ``os_kind="mckernel"``.  The machine's
    interconnect is always threaded through (uniform IRQ tables).
    """
    if os_kind == "linux":
        return LinuxKernel(machine.node, tuning,
                           interconnect=machine.interconnect)
    if os_kind == "mckernel":
        return boot_mckernel(machine.node, host_tuning=tuning,
                             memory_fraction=mck_memory_fraction,
                             picodriver=mck_picodriver)
    raise ConfigurationError(f"unknown OS kind {os_kind!r}")


def resolve_fabric(machine: Machine) -> FabricSpec:
    """The fabric model of a machine's interconnect."""
    return fabric_for(machine.interconnect)


def noise_sources(
    os_instance: OsInstance, include_stragglers: bool = True
) -> "list[NoiseSource]":
    """Lower an OS instance to its per-app-core noise catalogue."""
    return noise_sources_for(os_instance,
                             include_stragglers=include_stragglers)
