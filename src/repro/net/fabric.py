"""Interconnect fabrics: Fujitsu TofuD and Intel Omni-Path.

A :class:`FabricSpec` carries the latency/bandwidth parameters of one
network plus its topology's hop-count scaling, from which the
collective models (:mod:`repro.net.collectives`) derive costs.  Values
are the published injection/link figures for the two fabrics; as with
the rest of the simulator, the experiments depend on scaling shape, not
on absolute silicon numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import us


@dataclass(frozen=True)
class FabricSpec:
    """One interconnection network."""

    name: str
    #: Nearest-neighbour one-way latency, seconds.
    hop_latency: float
    #: Software injection overhead per message (send + recv side).
    injection_overhead: float
    #: Per-link bandwidth, bytes/s.
    link_bandwidth: float
    #: Topology kind: "torus6d" (TofuD) or "fattree" (Omni-Path).
    topology: str
    #: Hardware collective offload (Tofu barrier/reduce engines).
    hw_collectives: bool = False

    def __post_init__(self) -> None:
        if self.hop_latency <= 0 or self.injection_overhead < 0:
            raise ConfigurationError("latencies must be positive")
        if self.link_bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.topology not in ("torus6d", "fattree"):
            raise ConfigurationError(f"unknown topology {self.topology!r}")

    def diameter_hops(self, n_nodes: int) -> int:
        """Worst-case hop count between two of ``n_nodes`` nodes."""
        if n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        if n_nodes == 1:
            return 0
        if self.topology == "torus6d":
            # TofuD: 6D mesh/torus; the diameter grows with the sum of
            # the axis radii ~ 6 * (n ** (1/6)) / 2.
            return max(1, int(3.0 * n_nodes ** (1.0 / 6.0)))
        # Fat tree: up/down through ~log radix-32 levels.
        return max(1, 2 * int(math.ceil(math.log(n_nodes, 32))))

    def point_to_point(self, n_nodes: int, msg_bytes: int) -> float:
        """Average p2p latency for a message between random nodes."""
        if msg_bytes < 0:
            raise ConfigurationError("msg_bytes must be non-negative")
        hops = max(1, self.diameter_hops(n_nodes) // 2)
        return (
            self.injection_overhead
            + hops * self.hop_latency
            + msg_bytes / self.link_bandwidth
        )


#: Fujitsu TofuD: 6D torus, ~0.5 us neighbour latency, 6.8 GB/s links,
#: hardware barrier/reduction offload (Tofu barrier interface).
TOFU_D = FabricSpec(
    name="Fujitsu TofuD",
    hop_latency=us(0.5),
    injection_overhead=us(0.9),
    link_bandwidth=6.8e9,
    topology="torus6d",
    hw_collectives=True,
)

#: Intel Omni-Path: 100 Gb/s fat tree, ~1 us MPI latency.
OMNI_PATH = FabricSpec(
    name="Intel OmniPath",
    hop_latency=us(0.6),
    injection_overhead=us(1.1),
    link_bandwidth=12.5e9,
    topology="fattree",
    hw_collectives=False,
)


def fabric_for(interconnect: str) -> FabricSpec:
    """Look up the fabric model by the machine's interconnect string."""
    name = interconnect.lower()
    if "tofu" in name:
        return TOFU_D
    if "omni" in name:
        return OMNI_PATH
    raise ConfigurationError(f"no fabric model for {interconnect!r}")
