"""RDMA memory registration — the STAG path (§5.1).

Registration cost is where the OS configurations diverge, and the
granularity at which the driver must pin pages is the crux:

* **Linux + THP (OFP)** — anonymous huge pages are *compound* pages;
  get_user_pages pins whole 2 MiB units, so registration is cheap.
* **Linux + hugeTLBfs contiguous-bit (Fugaku)** — the ARM64 contiguous
  bit packs 32 base PTEs per TLB entry but the page-table entries are
  still 64 KiB PTEs; the driver's page walk and IOMMU/steering-table
  setup proceed per 64 KiB page.  Large registrations are therefore
  expensive — the overhead the Tofu PicoDriver work calls out.
* **McKernel + PicoDriver** — LWK process memory is physically
  contiguous by construction, so registration is O(1) STAG-table setup.
* **McKernel without PicoDriver** — the ioctl is *delegated* over IKC;
  pinning itself is trivial (contiguous memory) but every registration
  pays the round trip.

GAMERA's Fig. 7 advantage (up to 29% on Fugaku, attributed by the
authors to "faster RDMA registration in McKernel due to the LWK
integrated Tofu driver") comes from this asymmetry: its solver
re-registers a large communication surface per step, and under strong
scaling that fixed cost becomes a growing fraction of the shrinking
total.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..kernel.base import OsInstance
from ..kernel.linux import LinuxKernel
from ..kernel.tuning import LargePagePolicy
from ..units import us

#: Driver-side pinning cost per pinned unit (page walk + refcount +
#: IOMMU / Tofu steering-table entry).
PIN_COST_PER_PAGE = us(2.2)
#: Fixed LWK fast-path cost per registration (STAG table insert).
PICO_FIXED_COST = us(2.0)
#: Per-MiB residual on the fast path (range/permission checks).
PICO_PER_MIB = us(0.05)


def pin_granularity(os_instance: OsInstance) -> int:
    """Bytes the driver can pin per unit of page-walk work."""
    geo = os_instance.app_page_geometry()
    if isinstance(os_instance, LinuxKernel):
        if os_instance.tuning.large_pages is LargePagePolicy.THP:
            # Compound huge pages pin as one unit.
            from ..kernel.pagetable import PageKind

            return geo.size_of(PageKind.HUGE)
        # hugeTLBfs contiguous-bit (and plain base-page) mappings walk
        # base PTEs.
        return geo.base
    # McKernel without the PicoDriver: the ioctl is delegated and the
    # *Linux* Tofu driver pins the proxy process's view of the memory
    # with get_user_pages — base-page granularity.  (With the PicoDriver
    # the fast path never pins; see registration_time.)
    return geo.base


@dataclass(frozen=True)
class RegistrationStats:
    """Outcome of pricing a registration workload."""

    count: int
    total_bytes: int
    total_time: float

    @property
    def mean_time(self) -> float:
        return self.total_time / self.count if self.count else 0.0


def registration_time(os_instance: OsInstance, nbytes: int) -> float:
    """Seconds to register one region of ``nbytes`` under an OS."""
    if nbytes <= 0:
        raise ConfigurationError("nbytes must be positive")
    costs = os_instance.costs
    if os_instance.rdma_fast_path:
        return PICO_FIXED_COST + (nbytes / (1 << 20)) * PICO_PER_MIB
    delegated = os_instance.syscall_delegated("ioctl")
    trap = costs.syscall_cost(delegated) + costs.ioctl_extra
    unit = pin_granularity(os_instance)
    n_pins = -(-nbytes // unit)
    return trap + n_pins * PIN_COST_PER_PAGE


def register_many(os_instance: OsInstance, count: int,
                  bytes_each: int) -> RegistrationStats:
    """Price a whole registration workload (an app's init phase)."""
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if count == 0:
        return RegistrationStats(count=0, total_bytes=0, total_time=0.0)
    per = registration_time(os_instance, bytes_each)
    return RegistrationStats(
        count=count,
        total_bytes=count * bytes_each,
        total_time=count * per,
    )
