"""MPI collective cost models over a fabric.

LogP-style models for the collectives the paper's applications use per
bulk-synchronous iteration: barrier, allreduce, halo exchange.  Tree
algorithms give the log(P) scaling that makes collective time grow with
node count — one of the two scale-dependent terms in the application
model (the other is noise amplification).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .fabric import FabricSpec


@dataclass(frozen=True)
class CollectiveModel:
    """Collective cost calculator for one fabric and job geometry."""

    fabric: FabricSpec
    n_nodes: int
    ranks_per_node: int

    def __post_init__(self) -> None:
        if self.n_nodes <= 0 or self.ranks_per_node <= 0:
            raise ConfigurationError("geometry must be positive")

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.ranks_per_node

    def _tree_depth(self) -> int:
        return max(1, int(math.ceil(math.log2(max(2, self.n_ranks)))))

    def barrier(self) -> float:
        """Dissemination barrier; Tofu's hardware collectives cut the
        per-level cost roughly in half (offloaded progression)."""
        per_level = (
            self.fabric.injection_overhead
            + self.fabric.hop_latency * max(1, self.fabric.diameter_hops(self.n_nodes) // 4)
        )
        if self.fabric.hw_collectives:
            per_level *= 0.5
        return self._tree_depth() * per_level

    def allreduce(self, msg_bytes: int) -> float:
        """Rabenseifner-style allreduce: latency term like a barrier
        plus 2x the bandwidth term for reduce-scatter + allgather."""
        if msg_bytes < 0:
            raise ConfigurationError("msg_bytes must be non-negative")
        latency = self.barrier()
        bw = 2.0 * msg_bytes / self.fabric.link_bandwidth
        return latency + bw

    def halo_exchange(self, msg_bytes: int, neighbours: int = 6) -> float:
        """Nearest-neighbour exchange (stencil/lattice codes): messages
        to ``neighbours`` peers, overlapping, bounded by the serialised
        injection plus one transfer."""
        if msg_bytes < 0 or neighbours <= 0:
            raise ConfigurationError("invalid halo geometry")
        inject = neighbours * self.fabric.injection_overhead
        wire = (
            self.fabric.hop_latency
            + msg_bytes / self.fabric.link_bandwidth
        )
        return inject + wire

    def cost(self, kind: str, msg_bytes: int) -> float:
        """Dispatch by collective name used in workload profiles."""
        if kind == "barrier":
            return self.barrier()
        if kind == "allreduce":
            return self.allreduce(msg_bytes)
        if kind == "halo":
            return self.halo_exchange(msg_bytes)
        if kind == "halo+allreduce":
            return self.halo_exchange(msg_bytes) + self.allreduce(8 * 64)
        raise ConfigurationError(f"unknown collective kind {kind!r}")
