"""Interconnect models: fabrics, collectives, RDMA registration."""

from .collectives import CollectiveModel
from .fabric import OMNI_PATH, TOFU_D, FabricSpec, fabric_for
from .mpi import Communicator
from .rdma import (
    PICO_FIXED_COST,
    PIN_COST_PER_PAGE,
    RegistrationStats,
    pin_granularity,
    register_many,
    registration_time,
)

__all__ = [
    "CollectiveModel",
    "Communicator",
    "pin_granularity",
    "FabricSpec",
    "fabric_for",
    "TOFU_D",
    "OMNI_PATH",
    "RegistrationStats",
    "register_many",
    "registration_time",
    "PIN_COST_PER_PAGE",
    "PICO_FIXED_COST",
]
