"""An MPI-like communicator on top of the discrete-event engine.

Provides the collective semantics the BSP applications use — barrier,
allreduce, broadcast — as *yieldable* operations for DES processes, so
node-level simulations can express real rank code:

    def rank_body(comm, rank):
        for _ in range(iterations):
            yield engine.timeout(compute_time)
            total = yield from comm.allreduce(rank, value)

Semantics follow MPI: a collective completes for everyone only when the
last participant arrives (which is exactly how OS noise on one rank
delays all of them — the effect the paper measures).  Latency of the
collective itself is priced by a :class:`~repro.net.collectives.
CollectiveModel` when one is supplied.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..errors import ConfigurationError, SimulationError
from ..sim.engine import Engine, Event
from .collectives import CollectiveModel


class Communicator:
    """A fixed-size group of ranks sharing collectives."""

    def __init__(self, engine: Engine, n_ranks: int,
                 cost_model: Optional[CollectiveModel] = None) -> None:
        if n_ranks <= 0:
            raise ConfigurationError("n_ranks must be positive")
        self.engine = engine
        self.n_ranks = n_ranks
        self.cost_model = cost_model
        self._generation = 0
        self._arrived = 0
        self._values: list[Any] = []
        self._release: Event = engine.event(name="mpi.gen0")
        self._in_flight: set[int] = set()

    # -- internals -----------------------------------------------------

    def _arrive(self, rank: int, value: Any) -> Event:
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(f"rank {rank} out of range")
        if rank in self._in_flight:
            raise SimulationError(
                f"rank {rank} entered the collective twice in one "
                f"generation (missing a yield?)"
            )
        self._in_flight.add(rank)
        self._arrived += 1
        self._values.append(value)
        release = self._release
        if self._arrived == self.n_ranks:
            values = self._values
            self._generation += 1
            self._arrived = 0
            self._values = []
            self._in_flight = set()
            self._release = self.engine.event(
                name=f"mpi.gen{self._generation}")
            release.succeed(values)
        return release

    def _wire_latency(self, msg_bytes: int, kind: str) -> float:
        if self.cost_model is None:
            return 0.0
        return self.cost_model.cost(kind, msg_bytes)

    # -- collectives (yield from these inside a process) ----------------------

    def barrier(self, rank: int) -> Generator:
        """Block until every rank has entered the barrier."""
        release = self._arrive(rank, None)
        yield release
        latency = self._wire_latency(0, "barrier")
        if latency:
            yield self.engine.timeout(latency)
        return None

    def allreduce(self, rank: int, value: float,
                  op: Callable[[list], Any] = sum,
                  msg_bytes: int = 8) -> Generator:
        """Combine ``value`` across ranks with ``op``; every rank
        receives the reduced result."""
        release = self._arrive(rank, value)
        values = yield release
        latency = self._wire_latency(msg_bytes, "allreduce")
        if latency:
            yield self.engine.timeout(latency)
        return op(values)

    def bcast(self, rank: int, value: Any = None,
              root: int = 0, msg_bytes: int = 8) -> Generator:
        """Broadcast root's value (modelled as a gather-then-release:
        everyone synchronises, everyone leaves with root's value)."""
        release = self._arrive(rank, (rank, value))
        values = yield release
        latency = self._wire_latency(msg_bytes, "barrier")
        if latency:
            yield self.engine.timeout(latency)
        by_rank = dict(values)
        if root not in by_rank:
            raise SimulationError(f"root {root} did not participate")
        return by_rank[root]

    @property
    def generation(self) -> int:
        """Completed collective count (for tests/progress)."""
        return self._generation
