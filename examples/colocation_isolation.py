#!/usr/bin/env python3
"""Performance isolation under co-location — the paper's future work.

§8: "multi-kernel systems provide excellent performance isolation which
could play an important role in multi-tenant deployments on accelerator
equipped fat compute nodes, a direction we also consider for future
investigation."

This example runs that investigation in the model: a bulk-synchronous
primary workload shares Fugaku-like nodes with an increasingly noisy
analytics tenant, under three isolation regimes — none, Linux cgroups,
and IHK/McKernel partitioning.

Run:  python examples/colocation_isolation.py
"""

import numpy as np

from repro.hardware import fugaku
from repro.kernel import fugaku_production
from repro.runtime.colocation import (
    IsolationMode,
    TenantLoad,
    run_colocation,
)


def main() -> None:
    node = fugaku().node
    tuning = fugaku_production()
    rng = np.random.default_rng(11)
    n_threads = 48 * 64  # a 64-node primary job
    sync = 5e-3

    print("Primary: BSP job, S = 5 ms, 64 nodes (3,072 threads)")
    print("Tenant : bursty analytics co-located on the same nodes\n")
    header = (f"{'tenant intensity':<20}"
              + "".join(f"{m.value:>16}" for m in IsolationMode))
    print(header)
    print("-" * len(header))
    for label, load in (
        ("light (5% cpu)", TenantLoad(cpu_duty=0.05, io_rate_hz=100,
                                      churn_bytes_per_s=64 << 20)),
        ("moderate (10% cpu)", TenantLoad()),
        ("heavy (25% cpu)", TenantLoad(cpu_duty=0.25, io_rate_hz=1500,
                                       churn_bytes_per_s=1 << 30,
                                       llc_share=0.5)),
    ):
        results = run_colocation(node, tuning, load, sync, n_threads, rng)
        row = f"{label:<20}"
        for mode in IsolationMode:
            row += f"{results[mode].total_slowdown * 100:>14.1f}%"
        print(row)

    print("\nReading: with no isolation the primary is unusable; cgroups")
    print("confine the tenant's CPUs but kernel-mediated channels (I/O")
    print("completion spill, TLBI broadcasts, shared LLC) still cost")
    print("percent-level slowdowns that grow with tenant intensity; the")
    print("multi-kernel partition eliminates every software channel —")
    print("the §8 claim, quantified.")


if __name__ == "__main__":
    main()
