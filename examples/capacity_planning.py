#!/usr/bin/env python3
"""Capacity planning with the noise model (Eq. 1).

Answers the operator questions the paper's §2 apparatus was built for:

* How much does a given noise source slow a BSP application at scale?
* How rare must noise be for a full-Fugaku run to lose < 1%?
* Where is the crossover node count at which tuning starts to matter?

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.noise.analytic import NoiseGroup, eq1_delay
from repro.noise.catalog import noise_sources_for
from repro.noise.sampler import BarrierDelaySampler
from repro.hardware import fugaku, oakforest_pacs
from repro.kernel import LinuxKernel, fugaku_production, ofp_default
from repro.units import ms, us


def paper_example() -> None:
    print("=" * 72)
    print("Eq. 1 worked example (§2)")
    print("=" * 72)
    d = eq1_delay([NoiseGroup(length=ms(1), interval=500.0)],
                  us(250), 100_000)
    print(f"  N=100,000, S=250 us, L=1 ms, I=500 s  ->  "
          f"{d * 100:.1f}% slowdown (paper: 20%)\n")


def tolerable_noise_at_full_scale() -> None:
    print("=" * 72)
    print("How rare must a 1 ms noise be to cost < 1% at full Fugaku?")
    print("=" * 72)
    n = fugaku().total_app_hw_threads
    for sync in (us(250), ms(1), ms(10)):
        # Search the interval where Eq. 1 crosses 1%.
        lo, hi = 1.0, 1e9
        for _ in range(60):
            mid = (lo * hi) ** 0.5
            d = eq1_delay([NoiseGroup(length=ms(1), interval=mid)], sync, n)
            if d > 0.01:
                lo = mid
            else:
                hi = mid
        print(f"  S = {sync * 1e3:6.2f} ms: 1 ms bursts must be rarer than "
              f"one per {lo:12,.0f} s per core")
    print()


def crossover_scan() -> None:
    print("=" * 72)
    print("Noise-driven slowdown vs node count (S = 10 ms per iteration)")
    print("=" * 72)
    rng = np.random.default_rng(0)
    configs = {
        "OFP Linux (moderate tuning)": (
            oakforest_pacs(),
            LinuxKernel(oakforest_pacs().node, ofp_default(),
                        interconnect="Intel OmniPath"), 256),
        "Fugaku Linux (production)": (
            fugaku(), LinuxKernel(fugaku().node, fugaku_production()), 48),
    }
    header = f"  {'nodes':>8}" + "".join(
        f"{name:>32}" for name in configs)
    print(header)
    for nodes in (16, 128, 1024, 8192, 65536):
        row = f"  {nodes:>8}"
        for name, (machine, kernel, threads_per_node) in configs.items():
            if nodes > machine.n_nodes:
                row += f"{'—':>32}"
                continue
            sources = noise_sources_for(kernel)
            sampler = BarrierDelaySampler(sources, sync_interval=ms(10),
                                          n_threads=nodes * threads_per_node)
            slow = sampler.expected_slowdown(400, rng)
            row += f"{slow * 100:>30.2f}%"
        print(row)
    print("\nThe OFP column is why the paper saw up-to-2x LWK gains there,")
    print("while the Fugaku column stays in the low single digits (§6.4).")


if __name__ == "__main__":
    paper_example()
    tolerable_noise_at_full_scale()
    crossover_scan()
