#!/usr/bin/env python3
"""Bring your own application: profiling a new workload.

The six paper applications are declarative
:class:`~repro.apps.base.WorkloadProfile` objects — nothing in the
engine knows their names.  This example adds a *new* code the way a
downstream user would: a graph-analytics-flavoured workload (irregular
access, frequent tiny collectives, allocation churn from frontier
queues — the §1 "more diverse workloads" the POSIX gap matters for) and
answers the questions the paper teaches you to ask about it:

1. Which kernel wins, at which scale, on which machine?
2. Where does the Linux time go (breakdown)?
3. How noise-sensitive is it (Eq. 1 against its sync interval)?

Run:  python examples/custom_app.py
"""

import numpy as np

from repro.apps import RankGeometry, WorkloadProfile
from repro.apps.base import InitPhase
from repro.hardware import fugaku, oakforest_pacs
from repro.kernel import LinuxKernel, fugaku_production, ofp_default
from repro.mckernel import boot_mckernel
from repro.noise import NoiseGroup, eq1_delay
from repro.runtime import compare
from repro.units import mib, us


def graph_analytics_profile() -> WorkloadProfile:
    """A BFS-flavoured bulk-synchronous graph workload."""
    return WorkloadProfile(
        name="GraphBFS",
        description="level-synchronous BFS: tiny sync intervals, "
                    "frontier churn, poor locality",
        scaling="weak",
        reference_nodes=16,
        sync_interval=2e-3,        # one BFS level ~2 ms
        iterations=2000,
        collective="allreduce",    # frontier-size vote per level
        msg_bytes=4 * 1024,
        churn_bytes=mib(3),        # frontier queues realloc per level
        working_set=mib(400),
        refs_per_second=4.0e7,     # irregular: many off-chip refs
        locality=0.9,              # poor reuse
        init=InitPhase(compute=2.0, io_syscalls=500,
                       reg_count=32, reg_bytes_each=mib(8)),
        geometry={
            "oakforest": RankGeometry(16, 16),
            "fugaku": RankGeometry(4, 12),
        },
        variability=0.015,
    )


def main() -> None:
    profile = graph_analytics_profile()

    print("1. Which kernel wins, where?")
    for machine, tuning, counts in (
        (oakforest_pacs(), ofp_default(), [64, 1024, 8192]),
        (fugaku(), fugaku_production(), [64, 1024, 8192]),
    ):
        linux = LinuxKernel(machine.node, tuning,
                            interconnect=machine.interconnect)
        mck = boot_mckernel(machine.node, host_tuning=tuning)
        comps = compare(machine, profile, linux, mck, counts, seed=0)
        row = "   ".join(
            f"{c.n_nodes}: {c.speedup_percent:+5.1f}%" for c in comps)
        print(f"   {machine.name:<15} {row}")

    print("\n2. Where does the Linux time go? (OFP, 8,192 nodes)")
    machine, tuning = oakforest_pacs(), ofp_default()
    linux = LinuxKernel(machine.node, tuning,
                        interconnect=machine.interconnect)
    mck = boot_mckernel(machine.node, host_tuning=tuning)
    comp = compare(machine, profile, linux, mck, [8192], seed=0)[0]
    b = comp.linux.breakdown
    total = b.total
    for name in ("compute", "tlb", "churn", "collective", "noise", "init"):
        v = getattr(b, name)
        bar = "#" * int(40 * v / total)
        print(f"   {name:<11} {v:7.2f}s  {bar}")

    print("\n3. How noise-sensitive is a 2 ms sync interval?")
    n = 8192 * 256
    for L, I in ((us(50), 10.0), (us(266), 38.0), (17.4e-3, 150.0)):
        d = eq1_delay([NoiseGroup(length=L, interval=I)],
                      profile.sync_interval, n)
        print(f"   noise L={L * 1e6:8.1f} us every {I:5.0f}s "
              f"-> Eq.1 delay {d * 100:6.2f}%")
    print("\nShort sync intervals are exactly where the paper's noise")
    print("story bites hardest — a BFS level can lose more to one daemon")
    print("wakeup than to its own computation.")


if __name__ == "__main__":
    main()
