#!/usr/bin/env python3
"""Model validation: three independent paths, one answer.

The repository computes noise-driven slowdowns three ways:

1. **Eq. 1** — the paper's closed-form upper-bound estimate;
2. **order statistics** — the BarrierDelaySampler draws the exact
   per-interval max over N threads (what the experiments use);
3. **discrete-event simulation** — rank processes on the DES engine,
   noise preempting compute on each core, MPI barriers; the max
   *emerges* instead of being assumed.

This example shows their agreement across injected noise signatures,
plus the FTQ spectral detector localising a periodic interferer — the
two cross-checks that justify trusting the at-scale results.

Run:  python examples/model_validation.py
"""

import numpy as np

from repro.apps.fwq import run_ftq
from repro.noise.injection import InjectionSpec, sensitivity_sweep
from repro.noise.source import NoiseSource, Occurrence
from repro.noise.spectral import find_periodic_noise
from repro.runtime.nodesim import validate_against_sampler
from repro.sim.distributions import Fixed
from repro.units import ms, us


def des_vs_sampler() -> None:
    print("=" * 72)
    print("DES simulation vs order-statistic sampler (48 threads)")
    print("=" * 72)
    signatures = [
        ("short, frequent", InjectionSpec(length=us(100), interval=0.05)),
        ("medium", InjectionSpec(length=ms(1), interval=0.5)),
        ("long, rare", InjectionSpec(length=ms(5), interval=5.0)),
    ]
    print(f"  {'signature':<18}{'DES delay':>14}{'sampler delay':>16}")
    for label, spec in signatures:
        out = validate_against_sampler(
            [spec.as_source()], sync_interval=5e-3, n_threads=48,
            n_iterations=600, seed=5,
        )
        print(f"  {label:<18}{out['des_mean_delay'] * 1e6:>11.1f} us"
              f"{out['sampler_mean_delay'] * 1e6:>13.1f} us")
    print()


def sweep_vs_eq1() -> None:
    print("=" * 72)
    print("Injection sweep vs Eq. 1 (N = 98,304 threads, S = 1 ms, I = 10 s)")
    print("=" * 72)
    rng = np.random.default_rng(3)
    points = sensitivity_sweep(
        lengths=[us(10), us(100), ms(1), ms(5)],
        interval=10.0, sync_interval=ms(1), n_threads=2048 * 48, rng=rng,
    )
    print(f"  {'L':>10}{'measured':>12}{'Eq. 1':>10}   note")
    for p in points:
        note = "absorbed" if p.absorbed else "serialises the interval"
        print(f"  {p.spec.length * 1e6:>7.0f} us"
              f"{p.measured_slowdown * 100:>10.2f}%"
              f"{p.eq1_estimate * 100:>9.2f}%   {note}")
    print("\nEq. 1 is an upper-bound estimate (it assumes every hit costs")
    print("the full length); the sampler tracks it within the bound.\n")


def spectral_detection() -> None:
    print("=" * 72)
    print("FTQ spectral detection of periodic interferers")
    print("=" * 72)
    rng = np.random.default_rng(0)
    hidden = [
        NoiseSource("sar-ish", interval=0.25, duration=Fixed(us(80)),
                    occurrence=Occurrence.PERIODIC),       # 4 Hz
        NoiseSource("tick-ish", interval=0.1, duration=Fixed(us(120)),
                    occurrence=Occurrence.PERIODIC),       # 10 Hz
        NoiseSource("background", interval=0.05, duration=Fixed(us(30))),
    ]
    ftq = run_ftq(hidden, rng, window=1e-3, duration=60.0)
    print(f"  lost work fraction: {ftq.lost_work_fraction * 100:.2f}%")
    for peak in find_periodic_noise(ftq, threshold=50.0):
        print(f"  periodic interferer at {peak.frequency_hz:7.2f} Hz "
              f"(period {peak.period_s * 1e3:6.1f} ms), "
              f"line power {peak.power_ratio:.0f}x the floor")
    print("\nBoth planted periodic sources are recovered at their exact")
    print("rates; the Poisson background stays below the detection floor.")


if __name__ == "__main__":
    des_vs_sampler()
    sweep_vs_eq1()
    spectral_detection()
