#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Drives the experiment registry and prints each artefact in the same
rows/series shape the paper reports.  Pass ``--full`` for the longer,
closer-to-paper sampling volumes (minutes instead of seconds).

Run:  python examples/reproduce_paper.py [--full] [--seed N]
"""

import argparse
import time

from repro.experiments import EXPERIMENTS, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale sampling volumes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", nargs="*", choices=sorted(EXPERIMENTS),
                        help="subset of experiment ids")
    args = parser.parse_args()

    ids = args.only or list(EXPERIMENTS)
    t0 = time.time()
    for eid in ids:
        t1 = time.time()
        result = run_experiment(eid, fast=not args.full, seed=args.seed)
        print(result.render())
        if result.paper_reference:
            print(f"[paper reference: {result.paper_reference}]")
        print(f"[{eid} took {time.time() - t1:.1f}s]")
        print()
    print(f"total: {time.time() - t0:.1f}s for {len(ids)} experiments")


if __name__ == "__main__":
    main()
