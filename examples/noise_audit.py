#!/usr/bin/env python3
"""Noise audit: the §4.2 methodology, end to end.

Reproduces the workflow the Fugaku team used to tune Linux:

1. run FWQ on an *untuned* kernel and measure the damage;
2. use ftrace-style interference reports to identify the actors;
3. apply countermeasures one at a time (cgroup binding, kworker masks,
   the blk-mq cpumask patch, per-job PMU stop, the RHEL TLB patch) and
   watch the noise rate fall;
4. end with the production configuration and its residual (sar).

Run:  python examples/noise_audit.py
"""

from dataclasses import replace

import numpy as np

from repro.apps.fwq import FwqConfig, run_fwq_on
from repro.hardware import a64fx_testbed
from repro.kernel import (
    Ftrace,
    LinuxKernel,
    TraceEvent,
    fugaku_production,
    untuned,
)
from repro.kernel.tuning import LargePagePolicy
from repro.units import to_us


def trace_interference(kernel: LinuxKernel, seconds: float = 60.0) -> Ftrace:
    """Synthesize an ftrace capture from the kernel's visible noise
    tasks (what `trace-cmd record` would show on a real node)."""
    ft = Ftrace()
    ft.start()
    rng = np.random.default_rng(42)
    app_cpu = kernel.app_cpu_ids()[0]
    for task in kernel.noise_tasks_on_app_cores():
        n_events = rng.poisson(seconds / task.interval)
        for ts in np.sort(rng.uniform(0, seconds, n_events)):
            ft.record(TraceEvent(
                timestamp=float(ts), cpu_id=app_cpu, actor=task.name,
                event="sched_switch",
                duration=task.duration.sample_one(rng),
            ))
    ft.stop()
    return ft


def main() -> None:
    machine = a64fx_testbed()
    config = FwqConfig(duration=120.0)
    rng = np.random.default_rng(7)

    # Step 1: the untuned starting point.
    bare = LinuxKernel(machine.node, untuned())
    result = run_fwq_on(bare, config, rng)
    print("Step 1 — untuned Linux, FWQ(6.5 ms):")
    print(f"  max noise {to_us(result.max_noise_length):9.1f} us, "
          f"rate {result.noise_rate:.2e}\n")

    # Step 2: who is doing this?  (§4.2.1: "we utilize execution time
    # profiling and ftrace")
    ft = trace_interference(bare, seconds=600.0)
    print("Step 2 — ftrace interference report on an application core:")
    for s in ft.interference_report(bare.app_cpu_ids())[:6]:
        print(f"  {s.actor:<16} events {s.count:>6}  total "
              f"{s.total_time * 1e3:8.2f} ms  worst "
              f"{to_us(s.max_duration):8.1f} us")
    print()

    # Step 3: apply countermeasures cumulatively.
    steps = [
        ("bind daemons via cgroups", dict(cgroup_cpu_isolation=True)),
        ("nohz_full on app cores", dict(nohz_full=True)),
        ("route IRQs to assistant cores", dict(irq_to_assistant=True)),
        ("bind unbound kworkers", dict(bind_kworkers=True)),
        ("patch blk_mq_hw_ctx.cpumask", dict(bind_blkmq=True)),
        ("stop TCS PMU reads per job", dict(stop_pmu_reads=True)),
        ("RHEL TLB flush patch", dict(
            tlb_flush_mode=fugaku_production().tlb_flush_mode)),
        ("hugeTLBfs + overcommit", dict(
            large_pages=LargePagePolicy.HUGETLBFS,
            hugetlb_overcommit=True, charge_surplus_hugetlb=True)),
    ]
    tuning = untuned()
    print("Step 3 — applying countermeasures cumulatively:")
    for label, change in steps:
        tuning = replace(tuning, name=f"+{label}", **change)
        kernel = LinuxKernel(machine.node, tuning)
        r = run_fwq_on(kernel, config, rng)
        print(f"  + {label:<34} max {to_us(r.max_noise_length):9.1f} us  "
              f"rate {r.noise_rate:.2e}")

    # Step 4: the production stack and its floor.
    prod = LinuxKernel(machine.node, fugaku_production())
    r = run_fwq_on(prod, config, rng)
    print("\nStep 4 — Fugaku production configuration:")
    print(f"  max noise {to_us(r.max_noise_length):9.1f} us, "
          f"rate {r.noise_rate:.2e}")
    print(f"  residual actors: "
          f"{[t.name for t in prod.noise_tasks_on_app_cores()]}"
          f"  (sar is operationally required, §6.3)")

    # Step 5: cross-check with FTQ spectral analysis — periodic actors
    # appear as spectral lines at their wake-up rates, no tracing needed.
    from repro.apps.fwq import run_ftq
    from repro.noise.catalog import noise_sources_for
    from repro.noise.spectral import find_periodic_noise

    print("\nStep 5 — FTQ spectral cross-check (production config):")
    sources = noise_sources_for(prod, include_stragglers=False)
    ftq = run_ftq(sources, rng, window=1e-3, duration=120.0)
    peaks = find_periodic_noise(ftq, threshold=30.0)
    if peaks:
        for p in peaks:
            print(f"  periodic line at {p.frequency_hz:7.2f} Hz "
                  f"(period {p.period_s:6.2f} s)")
    else:
        print("  no periodic lines above the floor — the surviving noise"
              " (sar's Poisson-ish wakeups) has no clean spectral"
              " signature, consistent with the ftrace attribution.")

    # Step 6: how an operator would verify the config on a node.
    from repro.kernel.procfs import read as proc_read

    print("\nStep 6 — procfs spot checks on the tuned node:")
    for path in ("/proc/cmdline",
                 "/sys/fs/cgroup/app/cpuset.cpus",
                 "/sys/fs/cgroup/system/cpuset.cpus",
                 "/proc/interference"):
        value = proc_read(prod, path).replace("\n", " | ")
        print(f"  {path:<38} {value}")


if __name__ == "__main__":
    main()
