#!/usr/bin/env python3
"""A tour of the IHK/McKernel machinery (§5), bottom to top.

Walks through the real deployment flow on a Fugaku node:

1. IHK reserves CPUs and memory from Linux (no reboot);
2. an LWK instance is created, assigned resources, and booted;
3. a process starts on McKernel with its Linux proxy twin;
4. performance-sensitive syscalls are served locally, the rest are
   delegated over IKC — with the fd table living on the Linux side;
5. the Tofu PicoDriver registers memory on the fast path;
6. process exit tears everything down (and shows the TLB invalidation
   volume that §4.2.2 worries about).

Run:  python examples/multikernel_tour.py
"""

from repro.hardware import fugaku
from repro.kernel import fugaku_production
from repro.mckernel import (
    Ihk,
    McKernelInstance,
    MemoryReservation,
    reserve_fugaku_style,
)
from repro.net.rdma import registration_time
from repro.units import fmt_bytes, fmt_time, mib


def main() -> None:
    node = fugaku().node
    print(f"node: {node.name}, "
          f"{node.topology.physical_cores} cores, "
          f"{fmt_bytes(node.numa.total_bytes())} HBM2\n")

    # --- 1-2: partition and boot -------------------------------------
    ihk = Ihk(node)
    partition = reserve_fugaku_style(ihk, memory_fraction=0.9)
    print("IHK partitioning (ihkconfig reserve / ihkosctl create+boot):")
    print(f"  LWK CPUs   : {len(partition.cpus)} "
          f"(Linux keeps {sorted(ihk.linux_cpus())})")
    print(f"  LWK memory : {fmt_bytes(partition.total_memory())} over "
          f"{len(partition.memory)} NUMA nodes")
    print(f"  state      : {partition.state.value}\n")

    mck = McKernelInstance(node, ihk, partition,
                           host_tuning=fugaku_production())

    # --- 3: spawn a process with its proxy ------------------------------
    proc = mck.spawn(memory_scale=0.01)
    print(f"spawned LWK pid {proc.pid} with Linux proxy pid "
          f"{proc.proxy.pid}\n")

    # --- 4: syscalls -----------------------------------------------------
    print("syscalls (local = LWK, delegated = proxy over IKC):")
    vma = proc.syscall("mmap", mib(64))
    print(f"  mmap(64 MiB)      -> local;  page kind "
          f"{mck.app_page_kind().value} "
          f"({fmt_bytes(mck.app_page_geometry().size_of(mck.app_page_kind()))}"
          f" pages)")
    fd = proc.syscall("open", "/data/lattice.conf")
    print(f"  open(...)         -> delegated; Linux-side fd {fd}")
    written = proc.syscall("write", fd, 1 << 20)
    print(f"  write(fd, 1 MiB)  -> delegated; wrote {written} bytes "
          f"(file position lives in the proxy: "
          f"{proc.proxy.fd_table[fd].position})")
    proc.syscall("close", fd)
    proc.address_space.touch(vma, vma.length)
    print(f"  touched the heap: "
          f"{proc.address_space.stats.faults_by_kind} faults")
    print(f"  time in local syscalls    : {fmt_time(proc.local_time)} "
          f"({proc.local_calls} calls)")
    print(f"  time in delegated syscalls: {fmt_time(proc.delegated_time)} "
          f"({proc.delegated_calls} calls, IKC round trip "
          f"{fmt_time(partition.ikc.round_trip)})\n")

    # --- 5: PicoDriver ---------------------------------------------------------
    assert mck.picodriver is not None
    stag, cost = mck.picodriver.register(vma.start, vma.length)
    print("Tofu PicoDriver registration (fast path, §5.1):")
    print(f"  STAG {stag.stag_id} covering {fmt_bytes(stag.length)} in "
          f"{fmt_time(cost)}")
    print(f"  the same registration via the OS paths would cost:")
    from repro.kernel import LinuxKernel

    linux = LinuxKernel(node, fugaku_production())
    print(f"    Linux ioctl         : "
          f"{fmt_time(registration_time(linux, vma.length))}")
    no_pico = McKernelInstance(node, ihk, partition, picodriver=False)
    print(f"    McKernel delegated  : "
          f"{fmt_time(registration_time(no_pico, vma.length))}\n")

    # --- 6: teardown ----------------------------------------------------------
    invalidated = proc.exit()
    print(f"process exit: {invalidated} base-page translations "
          f"invalidated (the §4.2.2 TLB-storm volume); proxy alive: "
          f"{proc.proxy.alive}")
    ihk.shutdown(partition)
    ihk.destroy(partition)
    print(f"LWK shut down and destroyed; resources back in the IHK pool")


if __name__ == "__main__":
    main()
