#!/usr/bin/env python3
"""Quickstart: compare Linux and IHK/McKernel on both supercomputers.

Boots the two OS personalities on Fugaku and Oakforest-PACS node
designs, runs the LQCD workload at a few job sizes, and prints the
McKernel-relative-to-Linux numbers the paper plots in Figs. 6a/7a.

Run:  python examples/quickstart.py
"""

from repro import quick_compare
from repro.hardware import fugaku, oakforest_pacs
from repro.kernel import LinuxKernel, fugaku_production, ofp_default
from repro.mckernel import boot_mckernel


def describe_stacks() -> None:
    print("=" * 70)
    print("OS personalities")
    print("=" * 70)
    fug = fugaku()
    linux = LinuxKernel(fug.node, fugaku_production())
    mck = boot_mckernel(fug.node, host_tuning=fugaku_production())
    print(f"  {linux.describe()}")
    print(f"    noise sources on app cores: "
          f"{[t.name for t in linux.noise_tasks_on_app_cores()] or 'none'}")
    print(f"  {mck.describe()}")
    print(f"    noise sources on app cores: "
          f"{[t.name for t in mck.noise_tasks_on_app_cores()] or 'none'}")
    ofp = oakforest_pacs()
    ofp_linux = LinuxKernel(ofp.node, ofp_default(),
                            interconnect=ofp.interconnect)
    print(f"  {ofp_linux.describe()}")
    print(f"    noise sources on app cores: "
          f"{[t.name for t in ofp_linux.noise_tasks_on_app_cores()]}")
    print()


def compare_lqcd() -> None:
    print("=" * 70)
    print("LQCD: McKernel performance relative to Linux = 1.0")
    print("=" * 70)
    for platform, nodes_list in (("ofp", [256, 1024, 2048]),
                                 ("fugaku", [512, 2048, 8192])):
        print(f"\n  --- {platform} ---")
        for nodes in nodes_list:
            comp = quick_compare("LQCD", platform=platform, nodes=nodes)
            print(
                f"  {nodes:>6} nodes: relative perf "
                f"{comp.relative_performance:5.3f} "
                f"({comp.speedup_percent:+5.1f}%)   "
                f"[Linux {comp.linux.mean_time:6.2f}s, "
                f"McKernel {comp.mckernel.mean_time:6.2f}s]"
            )
    print()
    print("Paper shapes: OFP gains grow toward ~+25% at 2k nodes; on the")
    print("highly tuned Fugaku Linux, LQCD is almost identical (Fig. 7a).")


if __name__ == "__main__":
    describe_stacks()
    compare_lqcd()
