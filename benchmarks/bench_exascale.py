"""EXA — extension: projecting the comparison beyond Fugaku (§8)."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_exascale(benchmark, out_dir):
    result = benchmark(run_experiment, "exascale", fast=True, seed=0)
    save_and_print(out_dir, result)
    for app, d in result.data.items():
        gains = d["mckernel_gain_percent"]
        # The production tuning holds: Linux stays within a few percent
        # of the LWK even at 4x Fugaku — the paper's central finding
        # does not collapse at the next machine generation.
        assert all(g > -3.0 for g in gains), app
        assert all(g < 10.0 for g in gains), app
